//! Cross-crate property tests on the paper's core invariants.

use network_reliability::bdd::brute_force_reliability;
use network_reliability::prelude::*;
use network_reliability::preprocessing::preprocess;
use network_reliability::s2bdd::reduced_samples;
use proptest::prelude::*;

/// Strategy: a random simple graph on up to 8 vertices with probabilities.
fn small_graph() -> impl Strategy<Value = UncertainGraph> {
    proptest::collection::vec((0usize..8, 0usize..8, 0.05f64..1.0), 1..14).prop_filter_map(
        "needs at least one simple edge",
        |edges| {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v {
                        return None;
                    }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            if list.is_empty() {
                None
            } else {
                Some(UncertainGraph::new(8, list).unwrap())
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `p_c ≤ R ≤ 1 − p_d` for any width, any sample count, any seed.
    #[test]
    fn s2bdd_bounds_bracket_truth(g in small_graph(), w in 1usize..8, seed in 0u64..1000) {
        let t = vec![0usize, 7];
        let exact = brute_force_reliability(&g, &t);
        let r = S2Bdd::solve(
            &g,
            &t,
            S2BddConfig { max_width: w, samples: 100, seed, ..Default::default() },
        )
        .unwrap();
        prop_assert!(r.lower_bound <= exact + 1e-9, "lb {} > R {}", r.lower_bound, exact);
        prop_assert!(r.upper_bound >= exact - 1e-9, "ub {} < R {}", r.upper_bound, exact);
        prop_assert!(r.estimate >= r.lower_bound - 1e-12 && r.estimate <= r.upper_bound + 1e-12);
    }

    /// Pro with the extension equals Pro without it (in expectation both
    /// estimate R; with unbounded width both are *exact* and must be equal).
    #[test]
    fn extension_does_not_change_exact_answer(g in small_graph(), t0 in 0usize..8, t1 in 0usize..8) {
        let mut t = vec![t0, t1];
        t.sort_unstable();
        t.dedup();
        prop_assume!(t.len() == 2);
        let with = pro_reliability(
            &g,
            &t,
            ProConfig { s2bdd: S2BddConfig::exact(), ..Default::default() },
        )
        .unwrap();
        let without = pro_reliability(
            &g,
            &t,
            ProConfig {
                s2bdd: S2BddConfig::exact(),
                preprocess: PreprocessConfig::disabled(),
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert!((with.estimate - without.estimate).abs() < 1e-9,
            "with {} vs without {}", with.estimate, without.estimate);
    }

    /// The preprocessing stats are internally consistent.
    #[test]
    fn preprocess_stats_consistent(g in small_graph(), t0 in 0usize..8, t1 in 0usize..8) {
        let mut t = vec![t0, t1];
        t.sort_unstable();
        t.dedup();
        prop_assume!(t.len() == 2);
        let pre = preprocess(&g, &t, PreprocessConfig::default()).unwrap();
        prop_assert!(pre.stats.pruned_edges <= pre.stats.original_edges);
        prop_assert!(pre.stats.max_part_edges <= pre.stats.pruned_edges);
        prop_assert!(pre.stats.reduced_ratio <= 1.0);
        prop_assert_eq!(pre.stats.num_parts, pre.parts.len());
        for part in &pre.parts {
            prop_assert!(part.terminals.len() >= 2);
            prop_assert!(part.graph.num_edges() > 0);
        }
    }

    /// Theorem 1 sanity across the whole (pc, pd) simplex: the reduced
    /// budget never exceeds the requested one. (Note the theorem's budget is
    /// *not* monotone in pd for pc < pd — the `1 − 4·pc·(1−pd)` case is a
    /// coarser bound as pd grows — so only one-sided monotonicity in each
    /// single bound is asserted, on the slice where the other bound is 0.)
    #[test]
    fn sample_reduction_respects_simplex(s in 1usize..100_000, pc in 0.0f64..=1.0, frac in 0.0f64..=1.0) {
        let pd = (1.0 - pc) * frac;
        let sp = reduced_samples(s, pc, pd);
        prop_assert!(sp <= s);
        prop_assert!(reduced_samples(s, pc.min(1.0), 0.0) <= reduced_samples(s, pc / 2.0, 0.0) + 1);
        prop_assert!(reduced_samples(s, 0.0, pd) <= reduced_samples(s, 0.0, pd / 2.0) + 1);
    }

    /// `parallel_parts` only changes the schedule, never the draws: the
    /// parallel and sequential paths must agree bit for bit, including on
    /// width-bounded (sampling) configurations with many decomposed parts.
    #[test]
    fn parallel_parts_bit_identical_to_sequential(
        g in small_graph(),
        t0 in 0usize..8,
        t1 in 0usize..8,
        w in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut t = vec![t0, t1];
        t.sort_unstable();
        t.dedup();
        prop_assume!(t.len() == 2);
        let seq_cfg = ProConfig {
            s2bdd: S2BddConfig { max_width: w, samples: 300, seed, ..Default::default() },
            ..Default::default()
        };
        let par_cfg = ProConfig { parallel_parts: true, ..seq_cfg };
        let a = pro_reliability(&g, &t, seq_cfg).unwrap();
        let b = pro_reliability(&g, &t, par_cfg).unwrap();
        prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        prop_assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
        prop_assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
        prop_assert_eq!(a.variance_estimate.to_bits(), b.variance_estimate.to_bits());
        prop_assert_eq!(a.samples_used, b.samples_used);
        prop_assert_eq!(a.exact, b.exact);
    }

    /// The batched engine is an optimization, not a different algorithm:
    /// batch answers match one-shot `pro_reliability` bit for bit on every
    /// query, whatever the batch composition and cache state.
    #[test]
    fn engine_batch_matches_oneshot(
        g in small_graph(),
        t0 in 0usize..8,
        t1 in 0usize..8,
        w in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut t = vec![t0, t1];
        t.sort_unstable();
        t.dedup();
        prop_assume!(t.len() == 2);
        let cfg = ProConfig {
            s2bdd: S2BddConfig { max_width: w, samples: 300, seed, ..Default::default() },
            ..Default::default()
        };
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("g", g.clone());
        // Issue the query twice plus a decoy so the second run crosses a
        // warm cache; every answer must still equal the one-shot result.
        let queries = vec![
            ReliabilityQuery::with_config(t.clone(), cfg),
            ReliabilityQuery::with_config(vec![t[0]], cfg),
            ReliabilityQuery::with_config(t.clone(), cfg),
        ];
        let answers = engine.run_batch(id, &queries).unwrap();
        let solo = pro_reliability(&g, &t, cfg).unwrap();
        for i in [0usize, 2] {
            let a = answers[i].as_ref().unwrap();
            prop_assert_eq!(a.estimate.to_bits(), solo.estimate.to_bits());
            prop_assert_eq!(a.lower_bound.to_bits(), solo.lower_bound.to_bits());
            prop_assert_eq!(a.upper_bound.to_bits(), solo.upper_bound.to_bits());
            prop_assert_eq!(a.samples_used, solo.samples_used);
            prop_assert_eq!(a.exact, solo.exact);
        }
    }

    /// Monte Carlo estimates are unbiased enough: with a generous budget the
    /// estimate lands within 6 binomial sigmas of the truth.
    #[test]
    fn flat_sampling_statistically_sound(g in small_graph(), seed in 0u64..50) {
        let t = vec![0usize, 7];
        let exact = brute_force_reliability(&g, &t);
        let s = 20_000usize;
        let r = sample_reliability(
            &g,
            &t,
            SamplingConfig { samples: s, seed, ..Default::default() },
        )
        .unwrap();
        let sigma = (exact * (1.0 - exact) / s as f64).sqrt();
        prop_assert!((r.estimate - exact).abs() <= 6.0 * sigma + 1e-9,
            "estimate {} vs exact {} (sigma {})", r.estimate, exact, sigma);
    }
}
