//! End-to-end integration tests: datasets → preprocessing → solvers,
//! cross-validating the independent implementations against each other.

use network_reliability::bdd::{brute_force_reliability, FullBdd, FullBddConfig};
use network_reliability::datasets::karate::{karate, karate_fixed};
use network_reliability::graph::UncertainGraph as UG;
use network_reliability::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The dense core of the karate club (vertices 0..22 induced): small enough
/// for sub-second exact solves in test builds, structurally still a social
/// graph.
fn karate_core(seed: u64) -> UG {
    let g = karate(seed);
    let keep: Vec<bool> = (0..g.num_vertices()).map(|v| v < 22).collect();
    g.induced_subgraph(&keep).0
}

/// Pick `k` distinct random terminals, like the paper's experiment driver.
fn random_terminals(g: &UncertainGraph, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = std::collections::BTreeSet::new();
    while t.len() < k {
        t.insert(rng.gen_range(0..g.num_vertices()));
    }
    t.into_iter().collect()
}

#[test]
fn four_solvers_agree_on_small_graphs() {
    // brute force, materialized BDD, unbounded S2BDD, and Pro-exact are four
    // distinct code paths; they must agree to 1e-10 on anything tiny.
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..20 {
        let n: usize = rng.gen_range(4..8);
        let m = rng.gen_range(n - 1..(n * (n - 1) / 2).min(12));
        let mut edges = std::collections::BTreeMap::new();
        while edges.len() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.insert((u.min(v), u.max(v)), rng.gen_range(0.05..1.0f64));
            }
        }
        let g = UncertainGraph::new(n, edges.iter().map(|(&(u, v), &p)| (u, v, p))).unwrap();
        let t = random_terminals(&g, 2 + trial % 3, trial as u64);

        let brute = brute_force_reliability(&g, &t);
        let full = FullBdd::build(&g, &t, FullBddConfig::default())
            .unwrap()
            .reliability;
        let s2 = S2Bdd::solve(&g, &t, S2BddConfig::exact()).unwrap().estimate;
        let pro = exact_reliability(&g, &t).unwrap();

        assert!(
            (brute - full).abs() < 1e-10,
            "trial {trial}: brute {brute} vs full {full}"
        );
        assert!(
            (brute - s2).abs() < 1e-10,
            "trial {trial}: brute {brute} vs s2bdd {s2}"
        );
        assert!(
            (brute - pro).abs() < 1e-10,
            "trial {trial}: brute {brute} vs pro {pro}"
        );
    }
}

#[test]
fn karate_exact_vs_paper_figure_anchor() {
    // With all edges at 0.7 (the paper's running example probability), the
    // exact solver must agree across both exact implementations (on the
    // karate core; the full graph's diagram is too large for a unit test).
    let g = {
        let full = karate_fixed(0.7);
        let keep: Vec<bool> = (0..full.num_vertices()).map(|v| v < 22).collect();
        full.induced_subgraph(&keep).0
    };
    let t = vec![0, 21, 16];
    let full = FullBdd::build(&g, &t, FullBddConfig::default())
        .unwrap()
        .reliability;
    let s2 = exact_reliability(&g, &t).unwrap();
    assert!((full - s2).abs() < 1e-10, "{full} vs {s2}");
    assert!(full > 0.0 && full < 1.0);
}

#[test]
fn pro_approximation_close_to_exact_on_karate() {
    let g = karate_core(1);
    for k in [2usize, 5, 10] {
        let t = random_terminals(&g, k, 100 + k as u64);
        let exact = exact_reliability(&g, &t).unwrap();
        let r = pro_reliability(
            &g,
            &t,
            ProConfig {
                s2bdd: S2BddConfig {
                    max_width: 64,
                    samples: 50_000,
                    seed: 9,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.lower_bound <= exact + 1e-9 && exact <= r.upper_bound + 1e-9,
            "k={k}"
        );
        assert!(
            (r.estimate - exact).abs() < 0.05,
            "k={k}: {} vs {exact}",
            r.estimate
        );
    }
}

#[test]
fn amrv_like_graph_computed_exactly_by_pro() {
    // Table 4's phenomenon: the affiliation graph is so bridge-heavy that
    // preprocessing + S2BDD resolves it exactly at the default width.
    let g = Dataset::AmRv.generate(1.0, 3);
    for k in [5usize, 10, 20] {
        let t = random_terminals(&g, k, k as u64);
        let r = pro_reliability(&g, &t, ProConfig::paper_default(1)).unwrap();
        assert!(r.exact, "k={k}: Pro should be exact on Am-Rv-like graphs");
        assert!(r.upper_bound - r.lower_bound < 1e-9);
    }
}

#[test]
fn sampling_baseline_brackets_pro_on_dblp_like_graph() {
    // A scaled DBLP stand-in: Pro and the MC baseline must agree within
    // combined sampling error.
    let g = Dataset::Dblp1.generate(0.02, 5);
    let t = random_terminals(&g, 5, 77);
    let pro = pro_reliability(
        &g,
        &t,
        ProConfig {
            s2bdd: S2BddConfig {
                samples: 3_000,
                max_width: 3_000,
                seed: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let mc = sample_reliability(
        &g,
        &t,
        SamplingConfig {
            samples: 30_000,
            seed: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let sigma = (pro.variance_estimate + mc.variance_estimate).sqrt();
    assert!(
        (pro.estimate - mc.estimate).abs() < 6.0 * sigma + 0.02,
        "pro {} vs mc {} (sigma {sigma})",
        pro.estimate,
        mc.estimate
    );
    assert!(pro.lower_bound <= mc.estimate + 6.0 * sigma + 0.02);
    assert!(pro.upper_bound >= mc.estimate - 6.0 * sigma - 0.02);
}

#[test]
fn road_network_pipeline_smoke() {
    let g = Dataset::Tokyo.generate(0.02, 6);
    let t = random_terminals(&g, 10, 8);
    let r = pro_reliability(
        &g,
        &t,
        ProConfig {
            s2bdd: S2BddConfig {
                samples: 1_000,
                max_width: 2_000,
                seed: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert!((0.0..=1.0).contains(&r.estimate));
    assert!(r.lower_bound <= r.estimate && r.estimate <= r.upper_bound);
    // Road networks shrink substantially under the extension technique.
    assert!(
        r.preprocess_stats.reduced_ratio < 0.9,
        "ratio {}",
        r.preprocess_stats.reduced_ratio
    );
}

#[test]
fn hitd_like_graph_runs_within_budget() {
    let g = Dataset::HitD.generate(0.01, 9);
    let t = random_terminals(&g, 5, 21);
    let r = pro_reliability(
        &g,
        &t,
        ProConfig {
            s2bdd: S2BddConfig {
                samples: 500,
                max_width: 500,
                seed: 6,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert!((0.0..=1.0).contains(&r.estimate));
    assert!(r.samples_used <= 500 * r.parts.len().max(1) + r.parts.len());
}

#[test]
fn estimators_agree_within_error_on_karate() {
    let g = karate_core(4);
    let t = random_terminals(&g, 5, 13);
    let exact = exact_reliability(&g, &t).unwrap();
    for est in [EstimatorKind::MonteCarlo, EstimatorKind::HorvitzThompson] {
        let r = S2Bdd::solve(
            &g,
            &t,
            S2BddConfig {
                max_width: 32,
                samples: 50_000,
                estimator: est,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (r.estimate - exact).abs() < 0.05,
            "{est:?}: {} vs {exact}",
            r.estimate
        );
    }
}

#[test]
fn dataset_edge_list_io_roundtrip() {
    use network_reliability::datasets::io::{read_edge_list, write_edge_list};
    let g = Dataset::AmRv.generate(1.0, 2);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let g2 = read_edge_list(&buf[..]).unwrap();
    assert_eq!(g.num_vertices(), g2.num_vertices());
    assert_eq!(g.edges(), g2.edges());
    // Reliability is identical on the roundtripped graph.
    let t = random_terminals(&g, 4, 99);
    let a = exact_reliability(&g, &t).unwrap();
    let b = exact_reliability(&g2, &t).unwrap();
    assert_eq!(a, b);
}
