//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Supports the subset the workspace's tests use: range strategies over
//! integers and floats, tuple strategies, [`collection::vec`],
//! [`Strategy::prop_filter_map`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros. Cases are generated from a
//! fixed-seed deterministic RNG so CI runs are reproducible. **No shrinking**:
//! a failing case reports its `Debug` rendering and panics immediately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
    /// Give up after this many consecutive rejections (filter/assume misses).
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Default configuration with `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// The RNG handed to strategies; deterministic per test.
pub type TestRng = StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value; `None` means this draw was rejected
    /// (e.g. by a filter) and the runner should retry.
    fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Map generated values through `f`, rejecting draws where it returns
    /// `None`. `whence` labels the filter in exhaustion errors.
    fn prop_filter_map<O: Debug, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            f,
            whence,
        }
    }

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    source: S,
    f: F,
    whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> Option<O> {
        let _ = self.whence;
        self.source.new_value(rng).and_then(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> Option<O> {
        self.source.new_value(rng).map(&self.f)
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.new_value(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A strategy producing one fixed value (`Just` in upstream proptest).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Outcome of one test-case closure, used by the [`proptest!`] runner.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case does not count.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

#[doc(hidden)]
pub struct Runner {
    rng: TestRng,
    config: ProptestConfig,
    accepted: u32,
    rejected: u32,
}

impl Runner {
    #[doc(hidden)]
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // Deterministic per test: CI failures reproduce locally.
        let mut seed = 0xC0FF_EE00_5EED_1234u64;
        for b in test_name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        Runner {
            rng: TestRng::seed_from_u64(seed),
            config,
            accepted: 0,
            rejected: 0,
        }
    }

    #[doc(hidden)]
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    #[doc(hidden)]
    pub fn keep_going(&self) -> bool {
        self.accepted < self.config.cases
    }

    #[doc(hidden)]
    pub fn accept(&mut self) {
        self.accepted += 1;
        self.rejected = 0;
    }

    #[doc(hidden)]
    pub fn reject(&mut self, test_name: &str) {
        self.rejected += 1;
        assert!(
            self.rejected < self.config.max_global_rejects,
            "proptest shim: {test_name} rejected {} consecutive draws; \
             filters/assumptions are too strict",
            self.rejected,
        );
    }
}

/// Run a block of property tests. Mirrors upstream's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, y in 0.0f64..1.0) {
///         prop_assert!(x as f64 * y < 10.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::Runner::new($config, stringify!($name));
            while runner.keep_going() {
                $(
                    let $arg = match $crate::Strategy::new_value(&($strategy), runner.rng()) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            runner.reject(stringify!($name));
                            continue;
                        }
                    };
                )+
                let case_desc = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => runner.accept(),
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        runner.reject(stringify!($name));
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "property `{}` failed: {}\n  case: {}",
                            stringify!($name),
                            msg,
                            case_desc,
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a [`proptest!`] body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.25f64..=0.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..=0.5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..4, 0.0f64..1.0), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((0.0..1.0).contains(b), "b = {}", b);
            }
        }

        #[test]
        fn filter_map_applies(x in (0usize..100).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x))) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x > 2);
            prop_assert!(x > 2 && x < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::Runner::new(ProptestConfig::default(), "det");
        let mut r2 = crate::Runner::new(ProptestConfig::default(), "det");
        let s = 0usize..1000;
        for _ in 0..32 {
            assert_eq!(s.new_value(r1.rng()), s.new_value(r2.rng()));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
