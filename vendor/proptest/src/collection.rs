//! Collection strategies.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
