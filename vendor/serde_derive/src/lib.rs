//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (the `Value`-tree model) for **plain, non-generic structs with
//! named fields** — the only shape the workspace derives on. Parsing is done
//! directly on the token stream because `syn`/`quote` are unavailable in this
//! offline build environment; unsupported shapes fail loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let entries: Vec<String> = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = s.name,
        entries = entries.join(", "),
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derive the shim `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let fields: Vec<String> = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     v.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing(\"{f}\"))?\
                 )?"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = s.name,
        fields = fields.join(", "),
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}

struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Parse `#[attrs…] [pub] struct Name { [pub] field: Ty, … }`.
///
/// Panics (a compile error at the derive site) on enums, tuple structs, and
/// generic structs — none of which the workspace derives serde traits on.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => panic!("serde_derive shim supports only structs, found {other:?}"),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim does not support generic structs (struct {name})")
        }
        other => panic!(
            "serde_derive shim supports only named-field structs (struct {name}), found {other:?}"
        ),
    };

    StructDef {
        name,
        fields: parse_field_names(body.stream()),
    }
}

/// Extract field names from the brace-group body: for each comma-separated
/// item, the identifier immediately before the first top-level `:`.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut expect_name = true; // at the start of a field declaration
    let mut pending: Option<String> = None;
    let mut depth = 0usize; // < > nesting inside types

    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                expect_name = true;
                pending = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 0 => {
                if let Some(name) = pending.take() {
                    fields.push(name);
                }
                expect_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == '#' && expect_name => {
                // Field attribute marker; the following [...] group is
                // skipped by the `expect_name` state machine below.
            }
            TokenTree::Group(g) if expect_name && g.delimiter() == Delimiter::Bracket => {
                // A field attribute body (e.g. a doc comment) — ignore.
            }
            TokenTree::Ident(id) if expect_name => {
                let text = id.to_string();
                if text != "pub" {
                    pending = Some(text);
                }
            }
            TokenTree::Group(g) if expect_name && g.delimiter() == Delimiter::Parenthesis => {
                // `pub(crate)` — ignore.
                let _ = g;
            }
            _ => {}
        }
    }
    fields
}
