//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the surface the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs, and serialization of those structs to
//! JSON via the sibling `serde_json` shim.
//!
//! Instead of upstream serde's visitor-based data model, [`Serialize`]
//! converts values into an owned [`Value`] tree and [`Deserialize`] reads
//! them back out of one. That is a tiny fraction of serde's design space but
//! exactly what benchmark-row dumping and mirror-type roundtrips need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of data, the shim's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the requested shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A shape mismatch: expected `what`, found something else.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }

    /// A missing struct field.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the shim's [`Value`] data model.
pub trait Serialize {
    /// Capture `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("smaller integer")),
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("unsigned integer")),
                    _ => Err(DeError::expected("integer")),
                }
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! sint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("smaller integer")),
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("signed integer")),
                    _ => Err(DeError::expected("integer")),
                }
            }
        }
    )*};
}

sint_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let _ = $idx;
                                $name::from_value(it.next().ok_or_else(|| DeError::expected("longer tuple"))?)?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::expected("shorter tuple"));
                        }
                        Ok(out)
                    }
                    _ => Err(DeError::expected("tuple sequence")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(usize, usize, f64)> = vec![(0, 1, 0.5), (1, 2, 0.25)];
        assert_eq!(Vec::<(usize, usize, f64)>::from_value(&v.to_value()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()), Ok(None));
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.get("a"), Some(&Value::U64(1)));
        assert_eq!(m.get("b"), None);
    }
}
