//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON text. Only the serialization direction is provided — that is
//! all the workspace uses (dumping benchmark rows with `--json=`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
pub use serde::Value;
use std::fmt::Write as _;

/// Error type kept for API compatibility; rendering a [`Value`] tree cannot
/// actually fail.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => render_f64(*x, out),
        Value::Str(s) => render_str(s, out),
        Value::Seq(items) => {
            render_items(items.iter().map(Item::Seq), indent, level, out, '[', ']')
        }
        Value::Map(entries) => render_items(
            entries.iter().map(|(k, v)| Item::Map(k, v)),
            indent,
            level,
            out,
            '{',
            '}',
        ),
    }
}

enum Item<'a> {
    Seq(&'a Value),
    Map(&'a str, &'a Value),
}

fn render_items<'a>(
    items: impl ExactSizeIterator<Item = Item<'a>>,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    open: char,
    close: char,
) {
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let inner = level + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, inner, out);
        match item {
            Item::Seq(v) => render(v, indent, inner, out),
            Item::Map(k, v) => {
                render_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, inner, out);
            }
        }
    }
    newline_indent(indent, level, out);
    out.push(close);
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn render_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Match serde_json's "integral floats keep a .0" convention.
            let _ = write!(out, "{x:.1}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("n".into(), Value::U64(3)),
            (
                "xs".into(),
                Value::Seq(vec![Value::F64(0.5), Value::F64(2.0)]),
            ),
            ("name".into(), Value::Str("a\"b".into())),
        ]);
        assert_eq!(
            to_string(&Wrapper(v)).unwrap(),
            r#"{"n":3,"xs":[0.5,2.0],"name":"a\"b"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Map(vec![(
            "a".into(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let text = to_string_pretty(&Wrapper(v)).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_tight() {
        assert_eq!(
            to_string_pretty(&Wrapper(Value::Seq(vec![]))).unwrap(),
            "[]"
        );
        assert_eq!(
            to_string_pretty(&Wrapper(Value::Map(vec![]))).unwrap(),
            "{}"
        );
    }

    /// `Value` itself does not implement `Serialize`; wrap it for tests.
    struct Wrapper(Value);

    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
