//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON text and parses JSON text back into a [`Value`] tree (and,
//! through the shim's `Deserialize`, into typed values). The workspace uses
//! the render direction for benchmark-row dumping (`--json=`) and both
//! directions for the `netrel-serve` newline-delimited JSON query service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn parse(msg: impl Into<String>, pos: usize) -> Self {
        Error(format!("{} at byte {pos}", msg.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a typed value via the shim's `Deserialize`.
/// (`T = Value` yields the raw tree, matching upstream `serde_json`.)
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

/// Nesting depth bound for the recursive-descent parser (matches upstream
/// serde_json's default recursion limit).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{kw}`"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse("recursion limit exceeded", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(depth),
            Some(b'{') => self.map(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::parse(
                format!("unexpected character `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn seq(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn map(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                c.ok_or_else(|| Error::parse("invalid unicode escape", self.pos))?,
                            );
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid; control characters are tolerated on input).
                    // Decode from a <= 4-byte window — validating the whole
                    // remaining input per character would make long string
                    // literals quadratic. The window may clip the *next*
                    // scalar, so fall back to the valid prefix.
                    let window = &self.bytes[self.pos..self.bytes.len().min(self.pos + 4)];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).expect("valid prefix")
                        }
                        Err(_) => return Err(Error::parse("invalid utf-8", self.pos)),
                    };
                    let c = valid.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => render_f64(*x, out),
        Value::Str(s) => render_str(s, out),
        Value::Seq(items) => {
            render_items(items.iter().map(Item::Seq), indent, level, out, '[', ']')
        }
        Value::Map(entries) => render_items(
            entries.iter().map(|(k, v)| Item::Map(k, v)),
            indent,
            level,
            out,
            '{',
            '}',
        ),
    }
}

enum Item<'a> {
    Seq(&'a Value),
    Map(&'a str, &'a Value),
}

fn render_items<'a>(
    items: impl ExactSizeIterator<Item = Item<'a>>,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    open: char,
    close: char,
) {
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let inner = level + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, inner, out);
        match item {
            Item::Seq(v) => render(v, indent, inner, out),
            Item::Map(k, v) => {
                render_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, inner, out);
            }
        }
    }
    newline_indent(indent, level, out);
    out.push(close);
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn render_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Match serde_json's "integral floats keep a .0" convention.
            let _ = write!(out, "{x:.1}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("n".into(), Value::U64(3)),
            (
                "xs".into(),
                Value::Seq(vec![Value::F64(0.5), Value::F64(2.0)]),
            ),
            ("name".into(), Value::Str("a\"b".into())),
        ]);
        assert_eq!(
            to_string(&Wrapper(v)).unwrap(),
            r#"{"n":3,"xs":[0.5,2.0],"name":"a\"b"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Map(vec![(
            "a".into(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let text = to_string_pretty(&Wrapper(v)).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_tight() {
        assert_eq!(
            to_string_pretty(&Wrapper(Value::Seq(vec![]))).unwrap(),
            "[]"
        );
        assert_eq!(
            to_string_pretty(&Wrapper(Value::Map(vec![]))).unwrap(),
            "{}"
        );
    }

    /// Historic wrapper from before `Value: Serialize`; kept so the tests
    /// also cover serialization through a user impl.
    struct Wrapper(Value);

    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("42").unwrap(), Value::U64(42));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str::<Value>("2.5e1").unwrap(), Value::F64(25.0));
        assert_eq!(
            from_str::<Value>(r#""a\nbé""#).unwrap(),
            Value::Str("a\nbé".into())
        );
    }

    #[test]
    fn parses_containers() {
        let v = from_str::<Value>(r#"{"op":"query","t":[0,3],"p":0.5}"#).unwrap();
        assert_eq!(v.get("op"), Some(&Value::Str("query".into())));
        assert_eq!(
            v.get("t"),
            Some(&Value::Seq(vec![Value::U64(0), Value::U64(3)]))
        );
        assert_eq!(v.get("p"), Some(&Value::F64(0.5)));
        assert_eq!(from_str::<Value>("[]").unwrap(), Value::Seq(vec![]));
        assert_eq!(from_str::<Value>("{}").unwrap(), Value::Map(vec![]));
    }

    #[test]
    fn parses_typed_values() {
        let xs: Vec<(usize, usize, f64)> = from_str("[[0,1,0.5],[1,2,0.25]]").unwrap();
        assert_eq!(xs, vec![(0, 1, 0.5), (1, 2, 0.25)]);
        let n: f64 = from_str("3").unwrap();
        assert_eq!(n, 3.0);
    }

    #[test]
    fn roundtrips_through_render() {
        let v = Value::Map(vec![
            ("n".into(), Value::U64(3)),
            ("neg".into(), Value::I64(-1)),
            (
                "xs".into(),
                Value::Seq(vec![Value::F64(0.5), Value::Null, Value::Bool(false)]),
            ),
            ("s".into(), Value::Str("a\"\\\n\tb".into())),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "[1]]",
            "{\"a\":1,}x",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            from_str::<Value>(r#""🦀""#).unwrap(),
            Value::Str("🦀".into())
        );
        assert!(from_str::<Value>(r#""\ud83e""#).is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Value>(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(from_str::<Value>(&ok).is_ok());
    }
}
