//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! measurement loop: warm up once, then time batches until a wall-clock
//! budget or the configured sample count is reached, and print the mean
//! per-iteration time. No statistics, plots, or comparison to saved
//! baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, 100, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, move |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (reporting is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark (a function name plus a parameter rendering).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name` parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter (used inside groups upstream).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Hands the routine-under-test to the measurement loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
    max_iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup (also primes caches/allocators), untimed.
        black_box(routine());
        let start = Instant::now();
        while self.iters_done < self.max_iters && start.elapsed() < self.budget {
            black_box(routine());
            self.iters_done += 1;
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: Duration::from_millis(500),
        max_iters: sample_size as u64,
    };
    f(&mut b);
    if b.iters_done == 0 {
        eprintln!("  {label}: (routine slower than budget; 1 warmup run only)");
    } else {
        let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
        eprintln!(
            "  {label}: {} ({} iterations)",
            fmt_time(per_iter),
            b.iters_done
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with('s'));
    }
}
