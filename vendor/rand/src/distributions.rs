//! Distributions: the `Standard` uniform distribution and uniform ranges.

use crate::{Rng, RngCore};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution: `[0, 1)` for floats, all values for
/// integers, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 top bits → uniform dyadic rationals in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from ranges.

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draw one value uniform over the range. Panics if it is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method,
    /// without the rejection step: the bias at 64-bit width is far below
    /// anything the workspace's statistical tests can resolve).
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    macro_rules! int_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let unit: f64 = Standard.sample(rng);
                    let v = self.start + unit as $t * (self.end - self.start);
                    // Rounding can land exactly on `end`; fold it back inside.
                    if v < self.end {
                        v.max(self.start)
                    } else {
                        self.end.next_down().max(self.start)
                    }
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample from empty range");
                    let unit: f64 = Standard.sample(rng);
                    let v = lo + unit as $t * (hi - lo);
                    v.clamp(lo, hi)
                }
            }
        )*};
    }

    float_range_impls!(f32, f64);
}
