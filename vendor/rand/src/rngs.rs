//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64: used to expand `u64` seeds into full generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New stream starting from `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// Deterministic for a fixed seed; the stream differs from upstream rand's
/// ChaCha12-based `StdRng`, which nothing here depends on.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // All-zero state is the one fixed point of xoshiro; nudge away.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}
