//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the handful of `rand 0.8` APIs the workspace uses are
//! reimplemented here behind the same paths: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`distributions::{Distribution, Standard}`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — statistically solid and fully deterministic for a given seed,
//! which is all the workspace requires (reproducible datasets and samplers).
//! It intentionally does **not** match upstream `StdRng`'s ChaCha12 stream;
//! nothing in the workspace depends on the upstream byte stream.
//!
//! [`distributions::Distribution`]: distributions::Distribution
//! [`distributions::Standard`]: distributions::Standard

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand 0.8`'s `Rng`.
pub trait Rng: RngCore {
    /// A value from the [`distributions::Standard`] distribution
    /// (uniform over `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// A value uniform over `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A value drawn from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 like upstream rand.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&w));
            let x = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
