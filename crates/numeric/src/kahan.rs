//! Compensated summation.
//!
//! The estimators accumulate many small probabilities; Neumaier's variant of
//! Kahan summation keeps the error independent of the number of addends.

/// Neumaier (improved Kahan) compensated accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    /// Fresh accumulator at zero.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.comp
    }
}

impl std::iter::FromIterator<f64> for NeumaierSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = NeumaierSum::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

/// Compensated sum of a slice.
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<NeumaierSum>().total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(NeumaierSum::new().total(), 0.0);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn matches_naive_on_easy_input() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(sum(&xs), 5050.0);
    }

    #[test]
    fn classic_cancellation_case() {
        // Naive summation of [1, 1e100, 1, -1e100] yields 0; Neumaier yields 2.
        assert_eq!(sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn many_small_addends() {
        let n = 10_000_000usize;
        let x = 0.1f64;
        let mut acc = NeumaierSum::new();
        for _ in 0..n {
            acc.add(x);
        }
        let err = (acc.total() - n as f64 * x).abs();
        assert!(err < 1e-4, "compensated error too large: {err}");
    }
}
