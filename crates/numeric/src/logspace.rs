//! Log-domain arithmetic helpers.
//!
//! Existence probabilities of possible worlds are products of up to `|E|`
//! per-edge factors; working with their logarithms avoids underflow without
//! paying for [`crate::WideFloat`] in hot loops that only need relative
//! comparisons.

/// `ln(exp(a) + exp(b))` computed stably.
#[inline]
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `ln(Σ exp(xs))` computed stably; `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - hi).exp()).sum();
    hi + s.ln()
}

/// `ln(1 - exp(x))` for `x <= 0`, stable near both ends.
#[inline]
pub fn log1m_exp(x: f64) -> f64 {
    debug_assert!(x <= 0.0);
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x > -std::f64::consts::LN_2 {
        (-x.exp_m1()).ln()
    } else {
        (-x.exp()).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn log_add_exp_basics() {
        assert!(close(log_add_exp(0.0, 0.0), 2f64.ln()));
        assert!(close(log_add_exp(1.0f64.ln(), 3.0f64.ln()), 4.0f64.ln()));
        assert_eq!(log_add_exp(f64::NEG_INFINITY, -3.0), -3.0);
        assert_eq!(log_add_exp(-3.0, f64::NEG_INFINITY), -3.0);
    }

    #[test]
    fn log_add_exp_extreme_magnitudes() {
        // exp(-100000) + exp(-100001) stays finite in log space.
        let r = log_add_exp(-100_000.0, -100_001.0);
        assert!(close(r, -100_000.0 + (1.0 + (-1.0f64).exp()).ln()));
    }

    #[test]
    fn log_sum_exp_basics() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let xs = [0.2f64.ln(), 0.3f64.ln(), 0.5f64.ln()];
        assert!(close(log_sum_exp(&xs), 0.0)); // sums to 1
    }

    #[test]
    fn log1m_exp_both_branches() {
        // Large-negative branch: 1 - exp(-10) via ln_1p.
        assert!(close(log1m_exp(-10.0), (1.0 - (-10.0f64).exp()).ln()));
        // Near-zero branch: 1 - exp(-1e-9) ~ 1e-9.
        let r = log1m_exp(-1e-9);
        assert!((r - (1e-9f64).ln()).abs() < 1e-6);
        assert_eq!(log1m_exp(0.0), f64::NEG_INFINITY);
    }
}
