//! Online statistics, confidence intervals, and the paper's accuracy
//! metrics.

use crate::kahan::NeumaierSum;

/// Nominal coverage of a confidence interval.
///
/// An enum (rather than a raw `f64`) so the level can participate in
/// `Eq`/`Hash` keys — e.g. a query-plan cache key — and so only levels with
/// a vetted normal quantile are representable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ConfidenceLevel {
    /// 90% two-sided coverage (`z ≈ 1.6449`).
    P90,
    /// 95% two-sided coverage (`z ≈ 1.9600`). The conventional default.
    #[default]
    P95,
    /// 99% two-sided coverage (`z ≈ 2.5758`).
    P99,
}

impl ConfidenceLevel {
    /// The two-sided standard-normal quantile `z_{(1+level)/2}`.
    pub fn z(self) -> f64 {
        match self {
            ConfidenceLevel::P90 => 1.6448536269514722,
            ConfidenceLevel::P95 => 1.959963984540054,
            ConfidenceLevel::P99 => 2.5758293035489004,
        }
    }

    /// The nominal coverage probability as a fraction (e.g. `0.95`).
    pub fn coverage(self) -> f64 {
        match self {
            ConfidenceLevel::P90 => 0.90,
            ConfidenceLevel::P95 => 0.95,
            ConfidenceLevel::P99 => 0.99,
        }
    }
}

// Manual impl: the vendored serde_derive shim handles only structs.
#[cfg(feature = "serde")]
impl serde::Serialize for ConfidenceLevel {
    fn to_value(&self) -> serde::Value {
        serde::Value::F64(self.coverage())
    }
}

/// A two-sided confidence interval around a reliability estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ConfidenceInterval {
    /// Lower endpoint (clamped into `[0, 1]`).
    pub lower: f64,
    /// Upper endpoint (clamped into `[0, 1]`).
    pub upper: f64,
    /// Nominal coverage level the interval was built for.
    pub level: ConfidenceLevel,
}

impl ConfidenceInterval {
    /// The degenerate interval `[x, x]` — used for exact answers, where the
    /// "estimator" has zero variance.
    pub fn exact(x: f64, level: ConfidenceLevel) -> Self {
        let x = x.clamp(0.0, 1.0);
        ConfidenceInterval {
            lower: x,
            upper: x,
            level,
        }
    }

    /// Interval width `upper − lower`.
    pub fn width(&self) -> f64 {
        (self.upper - self.lower).max(0.0)
    }

    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }

    /// Intersect with proven bounds `[lo, hi]` (e.g. the S2BDD's
    /// `p_c ≤ R ≤ 1 − p_d`): the CI can never be looser than a proof.
    pub fn clamp_to(&self, lo: f64, hi: f64) -> Self {
        let lower = self.lower.max(lo).min(hi);
        ConfidenceInterval {
            lower,
            upper: self.upper.min(hi).max(lower),
            level: self.level,
        }
    }
}

/// Normal-approximation confidence interval `estimate ± z·√variance`,
/// clamped into `[0, 1]`.
///
/// Appropriate for the product estimator the solvers report: each per-part
/// estimator is a (stratified) sample mean, so for non-trivial sample
/// counts the CLT interval is the standard choice; a negative or NaN
/// variance input is treated as zero.
///
/// ```
/// use netrel_numeric::stats::{normal_ci, ConfidenceLevel};
/// let ci = normal_ci(0.5, 0.0001, ConfidenceLevel::P95);
/// assert!(ci.lower < 0.5 && 0.5 < ci.upper);
/// assert!((ci.width() - 2.0 * 1.96 * 0.01).abs() < 1e-3);
/// ```
pub fn normal_ci(estimate: f64, variance: f64, level: ConfidenceLevel) -> ConfidenceInterval {
    let sd = if variance.is_finite() && variance > 0.0 {
        variance.sqrt()
    } else {
        0.0
    };
    let half = level.z() * sd;
    ConfidenceInterval {
        lower: (estimate - half).clamp(0.0, 1.0),
        upper: (estimate + half).clamp(0.0, 1.0),
        level,
    }
}

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`Σ(x-μ)²/n`; `0` when empty).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (`Σ(x-μ)²/(n-1)`; `0` when `n < 2`).
    pub fn variance_sample(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::iter::FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Accuracy metrics over repeated searches, as defined in the paper's §7.6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccuracyReport {
    /// `Σ_i Σ_j (R_i − R̂_{i,j})² / (q1·q2)`
    pub variance: f64,
    /// `Σ_i Σ_j |R_i − R̂_{i,j}| / (q1·q2·R_i)`
    pub error_rate: f64,
    /// Number of `(i, j)` pairs included.
    pub pairs: usize,
}

/// Compute the paper's variance and error-rate metrics.
///
/// `per_search` holds, for each of the `q1` searches, the exact reliability
/// `R_i` and the `q2` approximations `R̂_{i,j}`. Searches with `R_i == 0`
/// contribute to the variance but are skipped in the error-rate denominator
/// (the paper's metric is undefined there); the skipped count is reflected in
/// a reduced pair count for the error rate.
pub fn accuracy(per_search: &[(f64, Vec<f64>)]) -> AccuracyReport {
    let mut var = NeumaierSum::new();
    let mut err = NeumaierSum::new();
    let mut pairs = 0usize;
    let mut err_pairs = 0usize;
    for (exact, approxes) in per_search {
        for &a in approxes {
            let d = exact - a;
            var.add(d * d);
            pairs += 1;
            if *exact > 0.0 {
                err.add(d.abs() / exact);
                err_pairs += 1;
            }
        }
    }
    AccuracyReport {
        variance: if pairs == 0 {
            0.0
        } else {
            var.total() / pairs as f64
        },
        error_rate: if err_pairs == 0 {
            0.0
        } else {
            err.total() / err_pairs as f64
        },
        pairs,
    }
}

/// Approximate `q`-quantile of a fixed-bucket histogram, Prometheus style.
///
/// `edges` are ascending bucket upper bounds; `counts` are per-bucket
/// (non-cumulative) observation counts with one extra trailing entry for the
/// implicit `+Inf` bucket (`counts.len() == edges.len() + 1`). The quantile
/// is located by cumulative rank and linearly interpolated within the
/// containing bucket, assuming a uniform spread between the bucket's bounds
/// (the first bucket interpolates from 0; a rank landing in the `+Inf`
/// bucket returns the last finite edge, the histogram's best lower bound).
/// Returns `NaN` for an empty histogram or malformed inputs.
pub fn histogram_quantile(edges: &[f64], counts: &[u64], q: f64) -> f64 {
    if counts.len() != edges.len() + 1 || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return f64::NAN;
    }
    let rank = q * total as f64;
    let mut cumulative = 0.0f64;
    for (i, &c) in counts.iter().enumerate() {
        let next = cumulative + c as f64;
        if rank <= next && c > 0 {
            if i >= edges.len() {
                // +Inf bucket: the last finite edge is all we know.
                return edges.last().copied().unwrap_or(f64::NAN);
            }
            let lo = if i == 0 { 0.0 } else { edges[i - 1] };
            let hi = edges[i];
            let frac = ((rank - cumulative) / c as f64).clamp(0.0, 1.0);
            return lo + (hi - lo) * frac;
        }
        cumulative = next;
    }
    edges.last().copied().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn histogram_quantile_interpolates_within_buckets() {
        let edges = [1.0, 2.0, 4.0];
        // 10 obs in (0,1], 10 in (1,2], 0 in (2,4], 0 beyond.
        let counts = [10, 10, 0, 0];
        assert!(close(histogram_quantile(&edges, &counts, 0.5), 1.0));
        assert!(close(histogram_quantile(&edges, &counts, 0.25), 0.5));
        assert!(close(histogram_quantile(&edges, &counts, 0.75), 1.5));
        assert!(close(histogram_quantile(&edges, &counts, 1.0), 2.0));
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        let edges = [1.0, 2.0];
        assert!(histogram_quantile(&edges, &[0, 0, 0], 0.5).is_nan());
        assert!(
            histogram_quantile(&edges, &[1, 1], 0.5).is_nan(),
            "length mismatch"
        );
        assert!(
            histogram_quantile(&edges, &[1, 0, 0], 2.0).is_nan(),
            "q out of range"
        );
        // Everything in +Inf: best lower bound is the last finite edge.
        assert!(close(histogram_quantile(&edges, &[0, 0, 5], 0.5), 2.0));
    }

    #[test]
    fn online_stats_basic() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0));
        assert!(close(s.variance_population(), 4.0));
        assert!(close(s.stddev(), 2.0));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance_population(), 0.0);
        assert_eq!(s.variance_sample(), 0.0);
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert!(close(s.mean(), 3.0));
        assert_eq!(s.variance_sample(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let seq: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..37].iter().copied().collect();
        let b: OnlineStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!(close(a.mean(), seq.mean()));
        assert!(close(a.variance_population(), seq.variance_population()));
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        let b: OnlineStats = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: OnlineStats = [1.0, 2.0].into_iter().collect();
        c.merge(&OnlineStats::new());
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn accuracy_paper_formulas() {
        // Two searches, two runs each.
        let data = vec![(0.5, vec![0.4, 0.6]), (0.25, vec![0.25, 0.20])];
        let rep = accuracy(&data);
        let var = ((0.1f64).powi(2) + (0.1f64).powi(2) + 0.0 + (0.05f64).powi(2)) / 4.0;
        assert!(close(rep.variance, var));
        let err = (0.1 / 0.5 + 0.1 / 0.5 + 0.0 + 0.05 / 0.25) / 4.0;
        assert!(close(rep.error_rate, err));
        assert_eq!(rep.pairs, 4);
    }

    #[test]
    fn accuracy_zero_exact_skipped_in_error_rate() {
        let data = vec![(0.0, vec![0.1]), (0.5, vec![0.5])];
        let rep = accuracy(&data);
        assert!(close(rep.variance, 0.01 / 2.0));
        assert!(close(rep.error_rate, 0.0));
    }

    #[test]
    fn accuracy_empty() {
        let rep = accuracy(&[]);
        assert_eq!(rep.variance, 0.0);
        assert_eq!(rep.error_rate, 0.0);
        assert_eq!(rep.pairs, 0);
    }

    #[test]
    fn normal_ci_symmetric_and_clamped() {
        let ci = normal_ci(0.5, 0.01, ConfidenceLevel::P95);
        assert!(close(0.5 - ci.lower, ci.upper - 0.5));
        assert!(ci.contains(0.5));
        // Near the boundary the interval clamps into [0, 1].
        let edge = normal_ci(0.999, 0.01, ConfidenceLevel::P99);
        assert_eq!(edge.upper, 1.0);
        assert!(edge.lower >= 0.0);
    }

    #[test]
    fn normal_ci_zero_or_bad_variance_is_degenerate() {
        for bad in [0.0, -1.0, f64::NAN] {
            let ci = normal_ci(0.3, bad, ConfidenceLevel::P95);
            assert_eq!((ci.lower, ci.upper), (0.3, 0.3));
        }
        let ex = ConfidenceInterval::exact(0.7, ConfidenceLevel::P90);
        assert_eq!(ex.width(), 0.0);
        assert!(ex.contains(0.7));
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let v = 0.004;
        let w90 = normal_ci(0.5, v, ConfidenceLevel::P90).width();
        let w95 = normal_ci(0.5, v, ConfidenceLevel::P95).width();
        let w99 = normal_ci(0.5, v, ConfidenceLevel::P99).width();
        assert!(w90 < w95 && w95 < w99);
    }

    #[test]
    fn clamp_to_respects_proven_bounds() {
        let ci = normal_ci(0.5, 0.04, ConfidenceLevel::P95); // roughly [0.11, 0.89]
        let clamped = ci.clamp_to(0.4, 0.6);
        assert_eq!((clamped.lower, clamped.upper), (0.4, 0.6));
        // Clamping to a point collapses the interval without inverting it.
        let point = ci.clamp_to(0.5, 0.5);
        assert!(point.lower <= point.upper);
        assert_eq!(point.width(), 0.0);
    }

    #[test]
    fn levels_expose_consistent_quantiles() {
        assert!(ConfidenceLevel::P90.z() < ConfidenceLevel::P95.z());
        assert!(ConfidenceLevel::P95.z() < ConfidenceLevel::P99.z());
        assert!(close(ConfidenceLevel::P95.coverage(), 0.95));
        assert_eq!(ConfidenceLevel::default(), ConfidenceLevel::P95);
    }
}
