//! Extended-exponent floating point.
//!
//! A [`WideFloat`] is `m * 2^e` with `m` an `f64` kept in `[0.5, 1)` (by
//! absolute value) and `e: i64`. It trades nothing in relative precision
//! against `f64` (same 53-bit mantissa) while extending the exponent range
//! from `2^±1024` to `2^±(2^63)`, enough to hold the existence probability of
//! any possible world of any graph this library can fit in memory.

use std::cmp::Ordering;
use std::fmt;

/// Decompose a finite non-zero `f64` into `(m, e)` with `x = m * 2^e` and
/// `|m| ∈ [0.5, 1)`. Zero returns `(0.0, 0)`.
#[inline]
pub fn frexp(x: f64) -> (f64, i32) {
    if x == 0.0 {
        return (0.0, 0);
    }
    debug_assert!(x.is_finite(), "frexp of non-finite value");
    let bits = x.to_bits();
    let exp_bits = ((bits >> 52) & 0x7ff) as i32;
    if exp_bits == 0 {
        // Subnormal: scale into the normal range first.
        let scaled = x * f64::from_bits(((1023 + 64) as u64) << 52); // x * 2^64
        let (m, e) = frexp(scaled);
        (m, e - 64)
    } else {
        let e = exp_bits - 1022;
        let m = f64::from_bits((bits & !(0x7ffu64 << 52)) | (1022u64 << 52));
        (m, e)
    }
}

/// `m * 2^e` for possibly out-of-range `e`, saturating to `0` / `±inf`.
#[inline]
fn ldexp(m: f64, e: i64) -> f64 {
    if m == 0.0 {
        return 0.0;
    }
    if e > 1100 {
        return if m > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
    }
    if e < -1150 {
        return if m.is_sign_negative() { -0.0 } else { 0.0 };
    }
    // Split the scaling so each factor stays within f64's exponent range.
    let half = (e / 2) as i32;
    let rest = (e - half as i64) as i32;
    m * pow2(half) * pow2(rest)
}

#[inline]
fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((1023 + e) as u64) << 52)
}

/// A sign-magnitude float with an `i64` binary exponent.
///
/// Invariant: either the value is exactly zero (`m == 0.0, e == 0`) or
/// `|m| ∈ [0.5, 1)`.
#[derive(Clone, Copy, Debug)]
pub struct WideFloat {
    m: f64,
    e: i64,
}

impl WideFloat {
    /// The value `0`.
    pub const ZERO: WideFloat = WideFloat { m: 0.0, e: 0 };
    /// The value `1`.
    pub const ONE: WideFloat = WideFloat { m: 0.5, e: 1 };

    /// Build from a finite `f64`.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        debug_assert!(x.is_finite(), "WideFloat::from_f64({x})");
        let (m, e) = frexp(x);
        WideFloat { m, e: e as i64 }
    }

    /// Raw constructor from mantissa and exponent; normalizes.
    #[inline]
    pub fn new(m: f64, e: i64) -> Self {
        if m == 0.0 {
            return Self::ZERO;
        }
        let (nm, ne) = frexp(m);
        WideFloat {
            m: nm,
            e: e.saturating_add(ne as i64),
        }
    }

    /// Convert back to `f64`, saturating to `0` or `±inf` when out of range.
    #[inline]
    pub fn to_f64(self) -> f64 {
        ldexp(self.m, self.e)
    }

    /// Mantissa in `[0.5, 1)` (absolute value), or `0`.
    #[inline]
    pub fn mantissa(self) -> f64 {
        self.m
    }

    /// Binary exponent.
    #[inline]
    pub fn exponent(self) -> i64 {
        self.e
    }

    /// `true` iff the value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.m == 0.0
    }

    /// `true` iff the value is `> 0`.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.m > 0.0
    }

    /// Natural logarithm; `-inf` for zero. Panics in debug mode on negatives.
    #[inline]
    pub fn ln(self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        debug_assert!(self.m > 0.0, "ln of negative WideFloat");
        self.m.ln() + self.e as f64 * std::f64::consts::LN_2
    }

    /// Base-10 logarithm; `-inf` for zero.
    #[inline]
    pub fn log10(self) -> f64 {
        self.ln() / std::f64::consts::LN_10
    }

    /// Build `exp(x)` from a (possibly very negative) natural-log value.
    pub fn exp(x: f64) -> Self {
        if x == f64::NEG_INFINITY {
            return Self::ZERO;
        }
        debug_assert!(x.is_finite());
        let e2 = x / std::f64::consts::LN_2;
        let ei = e2.floor();
        let frac = (e2 - ei) * std::f64::consts::LN_2;
        WideFloat::new(frac.exp(), ei as i64)
    }

    /// Multiply by a finite `f64`.
    #[inline]
    pub fn mul_f64(self, x: f64) -> Self {
        self * WideFloat::from_f64(x)
    }

    /// The ratio `self / (self + other)` as `f64`, defined as `0` when both
    /// are zero. Both operands must be non-negative. Useful for proportional
    /// allocation without leaving the wide domain.
    pub fn fraction_of_sum(self, other: WideFloat) -> f64 {
        debug_assert!(self.m >= 0.0 && other.m >= 0.0);
        let total = self + other;
        if total.is_zero() {
            return 0.0;
        }
        (self / total).to_f64()
    }
}

impl std::ops::Mul for WideFloat {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: WideFloat) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::ZERO;
        }
        // |m1*m2| in [0.25, 1): renormalization shifts by at most one bit.
        let m = self.m * rhs.m;
        let e = self.e.saturating_add(rhs.e);
        if m.abs() >= 0.5 {
            WideFloat { m, e }
        } else {
            WideFloat {
                m: m * 2.0,
                e: e - 1,
            }
        }
    }
}

impl std::ops::MulAssign for WideFloat {
    #[inline]
    fn mul_assign(&mut self, rhs: WideFloat) {
        *self = *self * rhs;
    }
}

/// Division. Panics in debug mode on division by zero.
impl std::ops::Div for WideFloat {
    type Output = Self;

    #[inline]
    fn div(self, rhs: WideFloat) -> Self {
        debug_assert!(!rhs.is_zero(), "WideFloat division by zero");
        if self.is_zero() {
            return Self::ZERO;
        }
        WideFloat::new(self.m / rhs.m, self.e - rhs.e)
    }
}

impl std::ops::Add for WideFloat {
    type Output = Self;

    #[inline]
    fn add(self, rhs: WideFloat) -> Self {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.e >= rhs.e {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let d = hi.e - lo.e;
        if d > 64 {
            // lo is below hi's precision; adding it cannot change the result.
            return hi;
        }
        WideFloat::new(hi.m + ldexp(lo.m, -d), hi.e)
    }
}

impl std::ops::AddAssign for WideFloat {
    #[inline]
    fn add_assign(&mut self, rhs: WideFloat) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for WideFloat {
    type Output = Self;

    #[inline]
    fn sub(self, rhs: WideFloat) -> Self {
        self + (-rhs)
    }
}

impl std::ops::Neg for WideFloat {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        WideFloat {
            m: -self.m,
            e: self.e,
        }
    }
}

impl Default for WideFloat {
    fn default() -> Self {
        Self::ZERO
    }
}

impl PartialEq for WideFloat {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && (self.is_zero() || self.e == other.e)
    }
}

impl PartialOrd for WideFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        let (a, b) = (self, other);
        let sa = if a.m > 0.0 {
            1
        } else if a.m < 0.0 {
            -1
        } else {
            0
        };
        let sb = if b.m > 0.0 {
            1
        } else if b.m < 0.0 {
            -1
        } else {
            0
        };
        if sa != sb {
            return sa.partial_cmp(&sb);
        }
        if sa == 0 {
            return Some(Ordering::Equal);
        }
        // Same non-zero sign: compare exponents first (flipped for negatives).
        let ord = match a.e.cmp(&b.e) {
            Ordering::Equal => a.m.partial_cmp(&b.m)?,
            o => {
                if sa > 0 {
                    o
                } else {
                    o.reverse()
                }
            }
        };
        Some(ord)
    }
}

impl From<f64> for WideFloat {
    fn from(x: f64) -> Self {
        WideFloat::from_f64(x)
    }
}

impl fmt::Display for WideFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let sign = if self.m < 0.0 { "-" } else { "" };
        let log10 =
            (self.m.abs().ln() + self.e as f64 * std::f64::consts::LN_2) / std::f64::consts::LN_10;
        let d = log10.floor();
        let mant = 10f64.powf(log10 - d);
        write!(f, "{sign}{mant:.6}e{}", d as i64)
    }
}

/// Sum an iterator of `WideFloat`s.
impl std::iter::Sum for WideFloat {
    fn sum<I: Iterator<Item = WideFloat>>(iter: I) -> Self {
        iter.fold(WideFloat::ZERO, |acc, x| acc + x)
    }
}

/// Product of an iterator of `WideFloat`s.
impl std::iter::Product for WideFloat {
    fn product<I: Iterator<Item = WideFloat>>(iter: I) -> Self {
        iter.fold(WideFloat::ONE, |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn frexp_roundtrip() {
        for &x in &[0.0, 1.0, -1.0, 0.5, 0.7, 1e300, -1e-300, 3.5e-310, 123.456] {
            let (m, e) = frexp(x);
            if x != 0.0 {
                assert!((0.5..1.0).contains(&m.abs()), "m={m} for x={x}");
            }
            // Recombine via the library's ldexp (two-step scaling) so the
            // subnormal case rounds once, not twice.
            assert_eq!(
                WideFloat::new(m, e as i64).to_f64(),
                x,
                "roundtrip failed for {x}"
            );
        }
    }

    #[test]
    fn from_to_f64_roundtrip() {
        for &x in &[0.0, 1.0, -2.5, 1e-200, 7e105, -3.25] {
            assert_eq!(WideFloat::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn constants() {
        assert_eq!(WideFloat::ZERO.to_f64(), 0.0);
        assert_eq!(WideFloat::ONE.to_f64(), 1.0);
        assert!(WideFloat::ZERO.is_zero());
        assert!(!WideFloat::ONE.is_zero());
    }

    #[test]
    fn mul_matches_f64() {
        let a = WideFloat::from_f64(0.3);
        let b = WideFloat::from_f64(0.7);
        assert!(close((a * b).to_f64(), 0.21, 1e-15));
    }

    #[test]
    fn mul_underflow_range() {
        // 0.2^250_000 underflows f64 but must survive in WideFloat.
        let p = WideFloat::from_f64(0.2);
        let mut acc = WideFloat::ONE;
        for _ in 0..250_000 {
            acc *= p;
        }
        assert!(!acc.is_zero());
        let expect_ln = 250_000.0 * 0.2f64.ln();
        assert!(
            close(acc.ln(), expect_ln, 1e-10),
            "{} vs {}",
            acc.ln(),
            expect_ln
        );
        // And dividing back up recovers ~1.
        let mut back = acc;
        for _ in 0..250_000 {
            back = back / p;
        }
        assert!(close(back.to_f64(), 1.0, 1e-9));
    }

    #[test]
    fn add_alignment() {
        let a = WideFloat::from_f64(1.0);
        let b = WideFloat::from_f64(3.0);
        assert!(close((a + b).to_f64(), 4.0, 1e-15));
        // Adding something 2^-100 smaller leaves the value unchanged.
        let tiny = WideFloat::new(0.5, -100);
        assert_eq!((a + tiny).to_f64(), 1.0);
    }

    #[test]
    fn add_cancellation() {
        let a = WideFloat::from_f64(1.0);
        assert!((a - a).is_zero());
        let b = WideFloat::from_f64(0.75);
        assert!(close((a - b).to_f64(), 0.25, 1e-15));
    }

    #[test]
    fn ordering() {
        let a = WideFloat::from_f64(0.2);
        let b = WideFloat::from_f64(0.3);
        assert!(a < b);
        assert!(b > a);
        assert!(WideFloat::ZERO < a);
        assert!((-a) < WideFloat::ZERO);
        assert!((-a) > (-b));
        // Exponent-dominant comparison.
        let big = WideFloat::new(0.5, 100);
        let small = WideFloat::new(0.9, 50);
        assert!(big > small);
        assert!((-big) < (-small));
    }

    #[test]
    fn exp_ln_roundtrip() {
        for &lnx in &[-1e5, -700.0, -1.0, 0.0, 3.0, 800.0] {
            let w = WideFloat::exp(lnx);
            assert!(close(w.ln(), lnx, 1e-12), "{} vs {}", w.ln(), lnx);
        }
        assert!(WideFloat::exp(f64::NEG_INFINITY).is_zero());
    }

    #[test]
    fn fraction_of_sum_basics() {
        let a = WideFloat::from_f64(1.0);
        let b = WideFloat::from_f64(3.0);
        assert!(close(a.fraction_of_sum(b), 0.25, 1e-15));
        assert_eq!(WideFloat::ZERO.fraction_of_sum(WideFloat::ZERO), 0.0);
        // Works far below f64 range.
        let t1 = WideFloat::new(0.5, -5000);
        let t2 = WideFloat::new(0.5, -5000);
        assert!(close(t1.fraction_of_sum(t2), 0.5, 1e-15));
    }

    #[test]
    fn sum_product_iters() {
        let xs = [0.1, 0.2, 0.3].map(WideFloat::from_f64);
        let s: WideFloat = xs.iter().copied().sum();
        assert!(close(s.to_f64(), 0.6, 1e-14));
        let p: WideFloat = xs.iter().copied().product();
        assert!(close(p.to_f64(), 0.006, 1e-14));
    }

    #[test]
    fn display_scientific() {
        let w = WideFloat::new(0.5, -5000);
        let s = format!("{w}");
        assert!(s.contains('e'), "{s}");
    }

    proptest::proptest! {
        /// Inside f64's comfortable range, WideFloat arithmetic matches f64
        /// to relative 1e-14.
        #[test]
        fn mul_matches_f64_in_range(a in -1e60f64..1e60, b in -1e60f64..1e60) {
            let w = (WideFloat::from_f64(a) * WideFloat::from_f64(b)).to_f64();
            let f = a * b;
            proptest::prop_assert!(close(w, f, 1e-14), "{} vs {}", w, f);
        }

        #[test]
        fn add_matches_f64_in_range(a in -1e60f64..1e60, b in -1e60f64..1e60) {
            let w = (WideFloat::from_f64(a) + WideFloat::from_f64(b)).to_f64();
            let f = a + b;
            proptest::prop_assert!(close(w, f, 1e-14), "{} vs {}", w, f);
        }

        #[test]
        fn ordering_matches_f64(a in -1e60f64..1e60, b in -1e60f64..1e60) {
            let wa = WideFloat::from_f64(a);
            let wb = WideFloat::from_f64(b);
            proptest::prop_assert_eq!(wa.partial_cmp(&wb), a.partial_cmp(&b));
        }

        /// Multiplying k probabilities never underflows to zero and keeps
        /// the exact log-sum.
        #[test]
        fn long_products_track_log_domain(ps in proptest::collection::vec(0.01f64..1.0, 1..200)) {
            let mut acc = WideFloat::ONE;
            let mut ln = 0.0f64;
            for &p in &ps {
                acc = acc.mul_f64(p);
                ln += p.ln();
            }
            proptest::prop_assert!(!acc.is_zero());
            proptest::prop_assert!((acc.ln() - ln).abs() < 1e-9 * (1.0 + ln.abs()));
        }
    }
}
