//! Numeric substrate for the network-reliability workspace.
//!
//! The paper multiplies per-edge probabilities over hundreds of thousands of
//! edges, which underflows `f64` (e.g. `0.2^248770`); the authors used
//! Boost.Multiprecision with 10 000 decimal digits. All *reported* quantities
//! are ratios and sums in `[0, 1]`, so full precision is unnecessary — what is
//! needed is dynamic range. [`WideFloat`] provides an `f64` mantissa with an
//! `i64` binary exponent: ~16 significant digits over a range of `2^±(2^63)`,
//! which dominates sampling error by many orders of magnitude.
//!
//! The crate also provides compensated summation ([`NeumaierSum`]), online
//! moment tracking ([`OnlineStats`]), log-space helpers, and the accuracy
//! metrics used by the paper's evaluation ([`stats::accuracy`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fxhash;
pub mod kahan;
pub mod logspace;
pub mod stats;
pub mod widefloat;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use kahan::NeumaierSum;
pub use stats::{
    accuracy, histogram_quantile, normal_ci, AccuracyReport, ConfidenceInterval, ConfidenceLevel,
    OnlineStats,
};
pub use widefloat::WideFloat;
