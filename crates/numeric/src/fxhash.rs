//! A fast, non-cryptographic hasher for internal node-dedup maps.
//!
//! The frontier-state hash maps are the hottest structures in exact BDD
//! construction (millions of lookups per layer); SipHash costs more than the
//! state transition itself. This is the Fx (Firefox/rustc) multiply-rotate
//! scheme over 8-byte chunks — weak against adversaries, ideal for internal
//! keys we generate ourselves.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the rustc-hash algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(x: &T) -> u64 {
        FxBuildHasher::default().hash_one(x)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3][..]));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn tail_length_matters() {
        // Same bytes padded with zeros must differ from the shorter key.
        assert_ne!(hash_of(&[7u8][..]), hash_of(&[7u8, 0][..]));
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert(i.to_le_bytes().to_vec(), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000usize {
            assert_eq!(m[&i.to_le_bytes().to_vec()], i);
        }
    }
}
