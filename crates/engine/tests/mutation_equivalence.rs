//! Rebuild-equivalence property suite (ISSUE 10, DESIGN.md §13).
//!
//! The headline guarantee of the mutation layer: after **any** sequence of
//! committed mutations, the mutated engine answers every query
//! bit-identically to a fresh engine registered with the mutated edge list
//! — across all five semantics, both solver routes (exact and sampling),
//! and any worker count. The incremental index patching, the scoped cache
//! invalidation, and the shared world bank are all behind this contract,
//! so a single surviving stale entry or a mis-patched bridge flag shows up
//! as a bit mismatch here.

use netrel_core::{ProConfig, SemanticsSpec};
use netrel_engine::{
    Engine, EngineConfig, Mutation, PlanBudget, PlannedQuery, ReliabilityAnswer, Route,
};
use netrel_ugraph::UncertainGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The bit pattern of everything answer-affecting in a planned answer.
/// Cache telemetry (`cache_hits`/`cache_misses`) is deliberately excluded:
/// a mutated engine's warm cache and a fresh engine's cold one legitimately
/// differ there while the answer itself must not.
fn fingerprint(a: &ReliabilityAnswer) -> (u64, u64, u64, u64, u64, bool, u64) {
    (
        a.estimate.to_bits(),
        a.lower_bound.to_bits(),
        a.upper_bound.to_bits(),
        a.ci.lower.to_bits(),
        a.ci.upper.to_bits(),
        a.exact,
        a.samples_used as u64,
    )
}

/// Rebuild the engine-side graph from its mutated edge list, exactly as a
/// new client would register it.
fn fresh_copy(g: &UncertainGraph) -> UncertainGraph {
    UncertainGraph::new(g.num_vertices(), g.edges().iter().map(|e| (e.u, e.v, e.p))).unwrap()
}

/// One query per semantics, sized for an `n`-vertex graph.
fn all_semantics_queries(n: usize) -> Vec<PlannedQuery> {
    let far = n - 1;
    [
        (SemanticsSpec::TwoTerminal, vec![0, far]),
        (SemanticsSpec::KTerminal, vec![0, 1, far]),
        (SemanticsSpec::AllTerminal, vec![]),
        (SemanticsSpec::DHop { d: 3 }, vec![0, far]),
        (SemanticsSpec::ReachSet, vec![0]),
    ]
    .into_iter()
    .map(|(spec, terminals)| {
        PlannedQuery::with_semantics(spec, terminals, ProConfig::default(), PlanBudget::default())
    })
    .collect()
}

/// Answer `queries` on `engine` and on a fresh engine registered with the
/// same (mutated) edge list; every slot must match bit for bit.
fn assert_matches_fresh(
    engine: &mut Engine,
    id: netrel_engine::GraphId,
    g: &UncertainGraph,
    queries: &[PlannedQuery],
    what: &str,
) {
    let mut fresh = Engine::new(EngineConfig::default());
    let fid = fresh.register("fresh", fresh_copy(g));
    let mutated = engine.run_planned_batch(id, queries).unwrap();
    let rebuilt = fresh.run_planned_batch(fid, queries).unwrap();
    for (i, (m, f)) in mutated.into_iter().zip(rebuilt).enumerate() {
        match (m, f) {
            (Ok(m), Ok(f)) => assert_eq!(
                fingerprint(&m),
                fingerprint(&f),
                "{what}, query {i}: mutated {} vs fresh {}",
                m.estimate,
                f.estimate
            ),
            // Both engines must agree even on failure (e.g. a terminal
            // isolated by removals).
            (m, f) => assert_eq!(m.is_err(), f.is_err(), "{what}, query {i}"),
        }
    }
}

/// Pick a random applicable mutation for the current shadow graph, or
/// `None` when the draw is inapplicable (caller just skips the step).
fn random_mutation(rng: &mut StdRng, g: &UncertainGraph) -> Option<Mutation> {
    let n = g.num_vertices();
    match rng.gen_range(0..4u8) {
        0 | 1 if g.num_edges() > 0 => Some(Mutation::UpdateProb {
            edge: rng.gen_range(0..g.num_edges()),
            p: rng.gen_range(0.05..=1.0f64),
        }),
        2 => {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || g.neighbors(u).iter().any(|&(w, _)| w == v) {
                return None;
            }
            Some(Mutation::AddEdge {
                u,
                v,
                p: rng.gen_range(0.05..=1.0f64),
            })
        }
        // Keep at least a spanning-tree's worth of edges so queries stay
        // mostly answerable; disconnection is still reachable (and must
        // then fail identically on both engines).
        3 if g.num_edges() > n => Some(Mutation::RemoveEdge {
            edge: rng.gen_range(0..g.num_edges()),
        }),
        _ => None,
    }
}

/// A connected random graph: a random spanning path plus density-`p`
/// chords, so every fixture starts answerable for every semantics.
fn random_graph(rng: &mut StdRng, n: usize, density: f64) -> UncertainGraph {
    let mut edges: Vec<(usize, usize, f64)> = (0..n - 1)
        .map(|i| (i, i + 1, rng.gen_range(0.05..=1.0f64)))
        .collect();
    for u in 0..n {
        for v in (u + 2)..n {
            if rng.gen_bool(density) {
                edges.push((u, v, rng.gen_range(0.05..=1.0f64)));
            }
        }
    }
    UncertainGraph::new(n, edges).unwrap()
}

/// Small sparse fixtures, exact route, all five semantics: every step of a
/// random mutation sequence answers bit-identically to a fresh rebuild.
#[test]
fn random_mutation_sequences_match_fresh_engines_exactly() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF + seed);
        let n = rng.gen_range(4..10usize);
        let g = random_graph(&mut rng, n, 0.25);
        let queries = all_semantics_queries(n);

        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("live", g.clone());
        let mut shadow = g;
        for step in 0..10 {
            let Some(mutation) = random_mutation(&mut rng, &shadow) else {
                continue;
            };
            // The shadow tracks what the engine's graph must now equal.
            match mutation {
                Mutation::UpdateProb { edge, p } => {
                    shadow.update_edge_prob(edge, p).unwrap();
                }
                Mutation::AddEdge { u, v, p } => {
                    shadow.add_edge(u, v, p).unwrap();
                }
                Mutation::RemoveEdge { edge } => {
                    shadow.remove_edge(edge).unwrap();
                }
            }
            engine.apply_mutation(id, mutation).unwrap();
            assert_matches_fresh(
                &mut engine,
                id,
                &shadow,
                &queries,
                &format!("seed {seed} step {step} {mutation:?}"),
            );
        }
    }
}

/// Dense ~200-edge fixture: the planner routes to the bit-parallel
/// sampler, and the guarantee must hold there too — including across
/// worker counts (1 vs 8), since sampled answers are seeded per part, not
/// per thread.
#[test]
fn dense_mutated_graphs_match_fresh_engines_on_the_sampling_route() {
    let mut rng = StdRng::seed_from_u64(0xD0_5E);
    let n = 26;
    let g = random_graph(&mut rng, n, 0.55);
    assert!(
        (150..=220).contains(&g.num_edges()),
        "fixture drifted: {} edges",
        g.num_edges()
    );
    let queries: Vec<PlannedQuery> = [vec![0, n - 1], vec![1, n / 2, n - 2]]
        .into_iter()
        .map(|t| {
            PlannedQuery::with_semantics(
                SemanticsSpec::KTerminal,
                t,
                ProConfig::default(),
                PlanBudget::default(),
            )
        })
        .collect();

    let mut seq = Engine::new(EngineConfig::sequential());
    let mut par = Engine::new(EngineConfig {
        workers: 8,
        ..EngineConfig::default()
    });
    let sid = seq.register("seq", g.clone());
    let pid = par.register("par", g.clone());
    let mut shadow = g;

    let mut sampled = false;
    for step in 0..6 {
        let Some(mutation) = random_mutation(&mut rng, &shadow) else {
            continue;
        };
        match mutation {
            Mutation::UpdateProb { edge, p } => {
                shadow.update_edge_prob(edge, p).unwrap();
            }
            Mutation::AddEdge { u, v, p } => {
                shadow.add_edge(u, v, p).unwrap();
            }
            Mutation::RemoveEdge { edge } => {
                shadow.remove_edge(edge).unwrap();
            }
        }
        seq.apply_mutation(sid, mutation).unwrap();
        par.apply_mutation(pid, mutation).unwrap();

        let mut fresh = Engine::new(EngineConfig {
            workers: 8,
            ..EngineConfig::default()
        });
        let fid = fresh.register("fresh", fresh_copy(&shadow));
        let a = seq.run_planned_batch(sid, &queries).unwrap();
        let b = par.run_planned_batch(pid, &queries).unwrap();
        let c = fresh.run_planned_batch(fid, &queries).unwrap();
        for (i, ((a, b), c)) in a.into_iter().zip(b).zip(c).enumerate() {
            let (a, b, c) = (a.unwrap(), b.unwrap(), c.unwrap());
            sampled |= a.routes.contains(&Route::BitSampling) || a.samples_used > 0;
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "step {step} query {i}: workers 1 vs 8"
            );
            assert_eq!(
                fingerprint(&a),
                fingerprint(&c),
                "step {step} query {i}: mutated vs fresh"
            );
        }
    }
    assert!(sampled, "fixture never exercised the sampling route");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary mutation scripts on arbitrary small graphs. The script is
    /// a list of draws decoded against the evolving graph state, so every
    /// shrunken counterexample is still a valid mutation sequence.
    #[test]
    fn any_mutation_script_preserves_rebuild_equivalence(
        seed in 0u64..1u64 << 48,
        script in proptest::collection::vec((0u8..4, 0usize..64, 0usize..64, 5u32..=100u32), 1..8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4 + (seed % 5) as usize;
        let g = random_graph(&mut rng, n, 0.3);
        let queries = all_semantics_queries(n);
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("live", g.clone());
        let mut shadow = g;
        for (kind, a, b, pq) in script {
            let p = f64::from(pq) / 100.0;
            let mutation = match kind {
                0 | 1 if shadow.num_edges() > 0 =>
                    Mutation::UpdateProb { edge: a % shadow.num_edges(), p },
                2 => {
                    let (u, v) = (a % n, b % n);
                    if u == v || shadow.neighbors(u).iter().any(|&(w, _)| w == v) {
                        continue;
                    }
                    Mutation::AddEdge { u, v, p }
                }
                3 if shadow.num_edges() > n =>
                    Mutation::RemoveEdge { edge: a % shadow.num_edges() },
                _ => continue,
            };
            match mutation {
                Mutation::UpdateProb { edge, p } => { shadow.update_edge_prob(edge, p).unwrap(); }
                Mutation::AddEdge { u, v, p } => { shadow.add_edge(u, v, p).unwrap(); }
                Mutation::RemoveEdge { edge } => { shadow.remove_edge(edge).unwrap(); }
            }
            engine.apply_mutation(id, mutation).unwrap();
            assert_matches_fresh(&mut engine, id, &shadow, &queries, &format!("{mutation:?}"));
        }
    }
}
