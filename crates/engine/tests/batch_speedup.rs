//! Acceptance test for the engine's whole point: a batch of overlapping
//! queries must run measurably faster than the same queries as independent
//! `pro_reliability` calls (shared preprocessing + warm plan cache), while
//! agreeing with them on every answer.

use netrel_core::{pro_reliability, ProConfig};
use netrel_datasets::Dataset;
use netrel_engine::{Engine, EngineConfig, ReliabilityQuery};
use netrel_s2bdd::S2BddConfig;
use netrel_ugraph::traversal::connected_components;
use netrel_ugraph::{UncertainGraph, VertexId};
use std::time::Instant;

/// Terminal pairs drawn from the graph's largest connected component, spread
/// deterministically, so every query does real solver work.
fn overlapping_pairs(g: &UncertainGraph, distinct: usize) -> Vec<Vec<VertexId>> {
    let (comp, num) = connected_components(g);
    let mut sizes = vec![0usize; num];
    for &c in &comp {
        sizes[c] += 1;
    }
    let biggest = (0..num).max_by_key(|&c| sizes[c]).unwrap();
    let members: Vec<VertexId> = (0..g.num_vertices())
        .filter(|&v| comp[v] == biggest)
        .collect();
    assert!(members.len() >= 2 * distinct, "component too small");
    (0..distinct)
        .map(|i| {
            let a = members[(i * 7919) % members.len()];
            let mut b = members[(i * 104_729 + members.len() / 2) % members.len()];
            if b == a {
                b = members[(i * 104_729 + members.len() / 2 + 1) % members.len()];
            }
            vec![a.min(b), a.max(b)]
        })
        .collect()
}

#[test]
fn hundred_query_batch_beats_oneshot_and_agrees() {
    // DBLP-like: heavy-tailed coauthor graph whose dense cores leave
    // nontrivial parts after preprocessing, so the per-part S2BDD solve
    // dominates and both cache hits and the shared index pay off.
    let g = Dataset::Dblp1.generate(0.02, 7);
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            max_width: 32,
            samples: 2_000,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    };

    // 100 queries over 10 distinct terminal pairs — the hot-pair workload of
    // the s-t benchmark literature.
    let pairs = overlapping_pairs(&g, 10);
    let queries: Vec<ReliabilityQuery> = (0..100)
        .map(|i| ReliabilityQuery::with_config(pairs[i % pairs.len()].clone(), cfg))
        .collect();

    // Independent one-shot calls (the status quo ante).
    let t0 = Instant::now();
    let solo: Vec<_> = queries
        .iter()
        .map(|q| pro_reliability(&g, &q.terminals, q.config).unwrap())
        .collect();
    let oneshot_secs = t0.elapsed().as_secs_f64();

    // The engine, single-threaded so the measured advantage is purely
    // algorithmic (shared preprocessing + plan cache), not parallelism.
    // Queries arrive as ten consecutive batches of ten, like a service
    // draining its queue: the first batch dedups in-batch repeats, later
    // batches hit the warm plan cache.
    let t1 = Instant::now();
    let mut engine = Engine::new(EngineConfig::sequential());
    let id = engine.register("dblp1", g.clone());
    let mut answers = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(10) {
        answers.extend(engine.run_batch(id, chunk).unwrap());
    }
    let engine_secs = t1.elapsed().as_secs_f64();

    // Agreement on every query (the engine is bit-identical by design; the
    // acceptance bar is 1e-10).
    for (a, s) in answers.iter().zip(&solo) {
        let a = a.as_ref().unwrap();
        assert!(
            (a.estimate - s.estimate).abs() <= 1e-10,
            "engine {} vs one-shot {}",
            a.estimate,
            s.estimate
        );
        assert_eq!(a.estimate.to_bits(), s.estimate.to_bits());
        assert_eq!(a.samples_used, s.samples_used);
    }

    // The 90 repeated queries must have been served from the plan cache.
    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "expected cache hits on repeated terminal pairs: {stats:?}"
    );

    // Loose wall-clock bar (the criterion bench measures the real margin;
    // observed locally: well above 5x).
    let speedup = oneshot_secs / engine_secs.max(1e-9);
    assert!(
        speedup >= 1.5,
        "batch speedup {speedup:.2}x below 1.5x (one-shot {oneshot_secs:.3}s, engine {engine_secs:.3}s)"
    );
}
