//! Oracle tests for the greedy maximizer and the what-if path (ISSUE 10).
//!
//! On ≤20-edge fixtures the exponential possible-world oracle
//! (`netrel_core::oracle_value`) gives the ground-truth two-terminal
//! reliability of every mutated graph, so the greedy loop can be replayed
//! independently: each round's argmax over "chosen set + one candidate"
//! (ties toward the lowest candidate index) must match the engine's
//! choice *and* its reported reliability. A second test pins the
//! what-if == commit-then-query equivalence directly, and a third
//! brute-forces every k-subset to bound how far greedy can sit from the
//! optimum on a fixture where greedy is known to be optimal.

use netrel_core::{oracle_value, ProConfig, SemanticsSpec};
use netrel_engine::{Engine, EngineConfig, Mutation, PlanBudget, PlannedQuery};
use netrel_ugraph::UncertainGraph;

/// Apply a mutation set to a copy of `g` (panics on inapplicable sets —
/// callers pre-check like the maximizer does).
fn mutated(g: &UncertainGraph, set: &[Mutation]) -> Option<UncertainGraph> {
    let mut g = g.clone();
    for m in set {
        match *m {
            Mutation::UpdateProb { edge, p } => {
                g.update_edge_prob(edge, p).ok()?;
            }
            Mutation::AddEdge { u, v, p } => {
                g.add_edge(u, v, p).ok()?;
            }
            Mutation::RemoveEdge { edge } => {
                g.remove_edge(edge).ok()?;
            }
        }
    }
    Some(g)
}

/// Ground-truth `s`–`t` reliability of `g` with `set` applied, or `None`
/// when the set is inapplicable.
fn truth(g: &UncertainGraph, set: &[Mutation], s: usize, t: usize) -> Option<f64> {
    let g = mutated(g, set)?;
    oracle_value(&g, SemanticsSpec::TwoTerminal, &[s, t]).ok()
}

/// Two triangles joined by a bridge — 7 edges, far under the oracle cap.
fn fixture() -> UncertainGraph {
    UncertainGraph::new(
        6,
        [
            (0, 1, 0.6),
            (1, 2, 0.5),
            (0, 2, 0.4),
            (2, 3, 0.7),
            (3, 4, 0.6),
            (4, 5, 0.5),
            (3, 5, 0.4),
        ],
    )
    .unwrap()
}

fn candidates() -> Vec<Mutation> {
    vec![
        Mutation::UpdateProb { edge: 3, p: 0.99 }, // strengthen the bridge
        Mutation::AddEdge {
            u: 0,
            v: 5,
            p: 0.55,
        }, // bypass it entirely
        Mutation::AddEdge {
            u: 1,
            v: 4,
            p: 0.35,
        },
        Mutation::UpdateProb { edge: 0, p: 0.95 },
        Mutation::RemoveEdge { edge: 2 }, // can only hurt
        Mutation::AddEdge {
            u: 0,
            v: 5,
            p: 0.55,
        }, // duplicate of 1: dead after it
    ]
}

/// Replay the greedy loop against the oracle: at every round the engine
/// must have chosen the candidate the ground truth ranks highest (ties
/// toward the lowest index), and its reported reliability must match the
/// oracle to exact-solver precision.
#[test]
fn greedy_choices_match_an_oracle_replay_round_for_round() {
    let g = fixture();
    let candidates = candidates();
    let (s, t, k) = (0, 5, 3);
    let mut engine = Engine::new(EngineConfig::default());
    let id = engine.register("g", g.clone());
    let result = engine
        .maximize_reliability(id, s, t, k, &candidates, PlanBudget::default())
        .unwrap();

    let baseline = truth(&g, &[], s, t).unwrap();
    assert!((result.baseline - baseline).abs() < 1e-9);

    let mut chosen: Vec<usize> = Vec::new();
    for (round, step) in result.steps.iter().enumerate() {
        let mut best: Option<(f64, usize)> = None;
        for ci in 0..candidates.len() {
            if chosen.contains(&ci) {
                continue;
            }
            let set: Vec<Mutation> = chosen
                .iter()
                .chain(std::iter::once(&ci))
                .map(|&i| candidates[i])
                .collect();
            let Some(r) = truth(&g, &set, s, t) else {
                continue;
            };
            // Strict > replicates the engine's lowest-index tie-break.
            // Compare through the same tolerance used to check the engine
            // so solver/oracle rounding cannot flip near-ties.
            let better = match best {
                None => true,
                Some((b, _)) => r > b + 1e-9,
            };
            if better {
                best = Some((r, ci));
            }
        }
        let (expected_r, expected_ci) = best.expect("oracle found no applicable candidate");
        assert_eq!(
            step.candidate, expected_ci,
            "round {round}: engine chose {} over oracle argmax {expected_ci}",
            step.candidate
        );
        assert!(
            (step.reliability - expected_r).abs() < 1e-9,
            "round {round}: {} vs oracle {expected_r}",
            step.reliability
        );
        chosen.push(step.candidate);
    }
    assert_eq!(result.steps.len(), k, "pool is large enough for k rounds");
    // Greedy gains are monotone here: each accepted upgrade helps.
    let mut last = result.baseline;
    for step in &result.steps {
        assert!(step.reliability >= last - 1e-12);
        last = step.reliability;
    }
}

/// `evaluate_with` equals commit-then-query, pinned against both the
/// engine's own committed path and the oracle's ground truth.
#[test]
fn whatif_equals_commit_then_query_and_the_oracle() {
    let g = fixture();
    let query = PlannedQuery::with_semantics(
        SemanticsSpec::TwoTerminal,
        vec![0, 5],
        ProConfig::default(),
        PlanBudget::default(),
    );
    let sets: Vec<Vec<Mutation>> = vec![
        vec![Mutation::UpdateProb { edge: 3, p: 0.99 }],
        vec![
            Mutation::AddEdge {
                u: 0,
                v: 5,
                p: 0.55,
            },
            Mutation::RemoveEdge { edge: 3 },
        ],
        vec![
            Mutation::RemoveEdge { edge: 2 },
            Mutation::UpdateProb { edge: 0, p: 0.95 },
            Mutation::AddEdge {
                u: 1,
                v: 4,
                p: 0.35,
            },
        ],
    ];
    for set in sets {
        let engine = {
            let mut e = Engine::new(EngineConfig::default());
            e.register("g", g.clone());
            e
        };
        let id = engine.graph_id("g").unwrap();
        let hypothetical = engine.evaluate_with(id, &set, &query).unwrap();

        let mut committed = Engine::new(EngineConfig::default());
        let cid = committed.register("g", g.clone());
        for m in &set {
            committed.apply_mutation(cid, *m).unwrap();
        }
        let after = committed.run_planned(cid, &query).unwrap();
        assert_eq!(
            hypothetical.estimate.to_bits(),
            after.estimate.to_bits(),
            "{set:?}"
        );
        assert_eq!(hypothetical.exact, after.exact);

        let expected = truth(&g, &set, 0, 5).unwrap();
        assert!(
            (hypothetical.estimate - expected).abs() < 1e-9,
            "{set:?}: {} vs oracle {expected}",
            hypothetical.estimate
        );
    }
}

/// Brute-force every k-subset (in every order, since removals/additions
/// do not commute with edge-id shifts) and verify greedy lands on the
/// true optimum for this fixture — chosen so the single dominant
/// candidate makes greedy provably optimal — while never overreporting.
#[test]
fn greedy_matches_the_brute_forced_optimum_on_a_dominant_fixture() {
    let g = fixture();
    let (s, t, k) = (0, 5, 2);
    // A dominant direct edge plus weak alternatives: greedy's first pick
    // is the global best single mutation, and the second pick commutes.
    let candidates = vec![
        Mutation::UpdateProb { edge: 1, p: 0.55 },
        Mutation::AddEdge {
            u: 0,
            v: 5,
            p: 0.95,
        },
        Mutation::UpdateProb { edge: 4, p: 0.65 },
    ];
    let mut engine = Engine::new(EngineConfig::default());
    let id = engine.register("g", g.clone());
    let result = engine
        .maximize_reliability(id, s, t, k, &candidates, PlanBudget::default())
        .unwrap();

    // Enumerate every ordered k-permutation of candidate indices.
    let n = candidates.len();
    let mut best = truth(&g, &[], s, t).unwrap();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let set = [candidates[i], candidates[j]];
            if let Some(r) = truth(&g, &set, s, t) {
                best = best.max(r);
            }
        }
    }
    assert!(
        (result.final_reliability() - best).abs() < 1e-9,
        "greedy {} vs optimum {best}",
        result.final_reliability()
    );
    assert!(result.final_reliability() <= best + 1e-9, "overreported");
}
