//! Integration contract of the adaptive planner (DESIGN.md §9):
//!
//! 1. On small/sparse instances the planner picks the exact route and its
//!    answers are **bit-identical** to one-shot exact `pro_reliability`.
//! 2. A dense-graph batch the exact-only path cannot finish under the node
//!    cap completes through the planner with CI-carrying answers.
//! 3. Planned answers are deterministic across engines, worker counts, and
//!    cache states.

use netrel_core::{pro_reliability, ProConfig};
use netrel_engine::{Engine, EngineConfig, PlanBudget, PlannedQuery, ReliabilityQuery, Route};
use netrel_s2bdd::S2BddConfig;
use netrel_ugraph::UncertainGraph;

fn exact_cfg() -> ProConfig {
    ProConfig {
        s2bdd: S2BddConfig::exact(),
        ..Default::default()
    }
}

/// The small/sparse fixture set used across the repo's tests.
fn sparse_fixtures() -> Vec<(&'static str, UncertainGraph, Vec<Vec<usize>>)> {
    let lollipop = UncertainGraph::new(
        8,
        [
            (0, 1, 0.5),
            (1, 2, 0.6),
            (0, 2, 0.7),
            (2, 3, 0.8),
            (3, 4, 0.5),
            (4, 5, 0.6),
            (3, 5, 0.7),
            (5, 6, 0.9),
            (6, 7, 0.9),
        ],
    )
    .unwrap();
    let path = UncertainGraph::new(10, (0..9).map(|i| (i, i + 1, 0.9))).unwrap();
    let cycle = UncertainGraph::new(8, (0..8).map(|i| (i, (i + 1) % 8, 0.8))).unwrap();
    let mut grid_edges = Vec::new();
    let id = |x: usize, y: usize| y * 4 + x;
    for y in 0..4 {
        for x in 0..4 {
            if x + 1 < 4 {
                grid_edges.push((id(x, y), id(x + 1, y), 0.7));
            }
            if y + 1 < 4 {
                grid_edges.push((id(x, y), id(x, y + 1), 0.6));
            }
        }
    }
    let grid = UncertainGraph::new(16, grid_edges).unwrap();
    vec![
        (
            "lollipop",
            lollipop,
            vec![vec![0, 4], vec![0, 7], vec![1, 4, 6]],
        ),
        ("path", path, vec![vec![0, 9], vec![2, 7]]),
        ("cycle", cycle, vec![vec![0, 4], vec![1, 5, 7]]),
        ("grid4x4", grid, vec![vec![0, 15], vec![3, 12]]),
    ]
}

use netrel_datasets::clique;

#[test]
fn sparse_fixtures_route_exact_and_match_pro_bitwise() {
    for (name, g, terminal_sets) in sparse_fixtures() {
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register(name, g.clone());
        let queries: Vec<PlannedQuery> = terminal_sets
            .iter()
            .map(|t| PlannedQuery::new(t.clone(), PlanBudget::default()))
            .collect();
        let answers = engine.run_planned_batch(id, &queries).unwrap();
        for (t, a) in terminal_sets.iter().zip(answers) {
            let a = a.unwrap();
            assert!(
                a.routes.iter().all(|&r| r == Route::Exact),
                "{name} {t:?}: {:?}",
                a.routes
            );
            assert!(a.exact, "{name} {t:?}");
            assert_eq!(a.samples_used, 0);
            assert_eq!((a.ci.lower, a.ci.upper), (a.estimate, a.estimate));
            let solo = pro_reliability(&g, t, exact_cfg()).unwrap();
            assert_eq!(
                a.estimate.to_bits(),
                solo.estimate.to_bits(),
                "{name} {t:?}: {} vs {}",
                a.estimate,
                solo.estimate
            );
            assert_eq!(a.lower_bound.to_bits(), solo.lower_bound.to_bits());
            assert_eq!(a.upper_bound.to_bits(), solo.upper_bound.to_bits());
        }
    }
}

#[test]
fn dense_batch_unfinishable_exactly_completes_through_the_planner() {
    let budget = PlanBudget::default();
    let g = clique(55);
    let mut engine = Engine::new(EngineConfig::default());
    let id = engine.register("clique55", g.clone());

    // Exact-only under the same node cap: the solver trips the cap and,
    // with no sampling budget, degrades to a useless [~0, ~1] envelope —
    // this is the failure mode the planner exists to avoid.
    let capped_exact = ReliabilityQuery::with_config(
        vec![0, 54],
        ProConfig {
            s2bdd: S2BddConfig {
                node_cap: budget.node_budget,
                ..S2BddConfig::exact()
            },
            ..Default::default()
        },
    );
    let crashed = engine.run(id, &capped_exact).unwrap();
    assert!(
        !crashed.exact,
        "a 55-clique cannot finish under the node cap"
    );
    assert!(crashed.parts.iter().any(|p| p.node_cap_hit));
    assert!(
        crashed.upper_bound - crashed.lower_bound > 0.9,
        "exact-only leaves an uninformative envelope: [{}, {}]",
        crashed.lower_bound,
        crashed.upper_bound
    );

    // The planner routes the same batch to the bit-parallel sampler and
    // completes with CI-carrying answers.
    let queries: Vec<PlannedQuery> = [vec![0, 54], vec![1, 30], vec![7, 20, 40]]
        .into_iter()
        .map(|t| PlannedQuery::new(t, budget))
        .collect();
    let answers = engine.run_planned_batch(id, &queries).unwrap();
    for a in answers {
        let a = a.unwrap();
        assert!(a.routes.contains(&Route::BitSampling), "{:?}", a.routes);
        assert!(!a.exact);
        assert!(a.samples_used > 0);
        assert!(a.ci.contains(a.estimate));
        assert!(
            a.ci.width() > 0.0,
            "an estimated answer must never claim certainty: {:?}",
            a.ci
        );
        assert!(a.lower_bound <= a.estimate && a.estimate <= a.upper_bound);
        // A 55-clique with p ≈ 0.5 edges is connected almost surely.
        assert!(a.estimate > 0.99, "estimate {}", a.estimate);
    }
}

#[test]
fn planned_answers_identical_across_engines_and_worker_counts() {
    let g = clique(45);
    let queries: Vec<PlannedQuery> = [vec![0, 44], vec![3, 17]]
        .into_iter()
        .map(|t| PlannedQuery::new(t, PlanBudget::default()))
        .collect();
    let mut reference: Option<Vec<(u64, u64, u64)>> = None;
    for cfg in [
        EngineConfig::sequential(),
        EngineConfig {
            workers: 8,
            plan_cache_capacity: 0,
        },
        EngineConfig::default(),
    ] {
        let mut engine = Engine::new(cfg);
        let id = engine.register("clique45", g.clone());
        let bits: Vec<(u64, u64, u64)> = engine
            .run_planned_batch(id, &queries)
            .unwrap()
            .into_iter()
            .map(|a| {
                let a = a.unwrap();
                (
                    a.estimate.to_bits(),
                    a.ci.lower.to_bits(),
                    a.ci.upper.to_bits(),
                )
            })
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "{cfg:?}"),
        }
    }
}

#[test]
fn mixed_batch_routes_per_part() {
    // One engine, one batch: a sparse query stays exact while a dense one
    // is sampled — routing is per part, not per batch.
    let mut engine = Engine::new(EngineConfig::default());
    let sparse = UncertainGraph::new(6, (0..5).map(|i| (i, i + 1, 0.9))).unwrap();
    let dense = clique(50);
    let sid = engine.register("sparse", sparse);
    let did = engine.register("dense", dense);
    let a = engine
        .run_planned(sid, &PlannedQuery::new(vec![0, 5], PlanBudget::default()))
        .unwrap();
    assert!(a.exact);
    let b = engine
        .run_planned(did, &PlannedQuery::new(vec![0, 49], PlanBudget::default()))
        .unwrap();
    assert!(!b.exact);
    assert!(b.routes.contains(&Route::BitSampling));
}
