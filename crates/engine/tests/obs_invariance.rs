//! Bit-identity regression suite for the observability layer: an engine
//! with a live [`Recorder`] (and per-query tracing) must return answers
//! byte-identical to an uninstrumented engine, across all five semantics
//! and both the classic and planned paths. Instrumentation reads clocks
//! and bumps atomics — it must never touch an RNG or reorder work.

use netrel_core::{ProConfig, SemanticsSpec};
use netrel_engine::{Engine, EngineConfig, PlanBudget, PlannedQuery, Recorder, ReliabilityQuery};
use netrel_s2bdd::S2BddConfig;
use netrel_ugraph::UncertainGraph;

/// The lollipop fixture: bridges, a 2ECC, and a pendant path, so every
/// preprocessing rule fires.
fn lollipop() -> UncertainGraph {
    UncertainGraph::new(
        8,
        [
            (0, 1, 0.5),
            (1, 2, 0.6),
            (0, 2, 0.7),
            (2, 3, 0.8),
            (3, 4, 0.5),
            (4, 5, 0.6),
            (3, 5, 0.7),
            (5, 6, 0.9),
            (6, 7, 0.9),
        ],
    )
    .unwrap()
}

/// Width-bounded sampling config, so approximate per-part RNG paths are
/// exercised (the regime where a perturbed seed would be visible).
fn sampling_cfg(seed: u64) -> ProConfig {
    ProConfig {
        s2bdd: S2BddConfig {
            max_width: 2,
            samples: 400,
            seed,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn five_semantics() -> Vec<(SemanticsSpec, Vec<usize>)> {
    vec![
        (SemanticsSpec::TwoTerminal, vec![0, 7]),
        (SemanticsSpec::KTerminal, vec![1, 4, 6]),
        (SemanticsSpec::AllTerminal, vec![]),
        (SemanticsSpec::DHop { d: 6 }, vec![0, 7]),
        (SemanticsSpec::ReachSet, vec![3]),
    ]
}

#[test]
fn classic_answers_are_bit_identical_under_instrumentation() {
    let queries: Vec<ReliabilityQuery> = five_semantics()
        .into_iter()
        .map(|(s, t)| ReliabilityQuery::with_semantics(s, t, sampling_cfg(11)))
        .collect();

    let mut plain = Engine::new(EngineConfig::default());
    let pid = plain.register("g", lollipop());
    let mut inst = Engine::with_recorder(EngineConfig::default(), Recorder::enabled());
    let iid = inst.register("g", lollipop());

    let a = plain.run_batch(pid, &queries).unwrap();
    let b = inst.run_batch(iid, &queries).unwrap();
    for (q, (x, y)) in queries.iter().zip(a.iter().zip(&b)) {
        let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
        assert_eq!(
            x.estimate.to_bits(),
            y.estimate.to_bits(),
            "{:?}",
            q.semantics
        );
        assert_eq!(x.lower_bound.to_bits(), y.lower_bound.to_bits());
        assert_eq!(x.upper_bound.to_bits(), y.upper_bound.to_bits());
        assert_eq!(x.variance_estimate.to_bits(), y.variance_estimate.to_bits());
        assert_eq!(x.samples_used, y.samples_used);
        assert_eq!(x.exact, y.exact);
    }
    // The recorder actually recorded: this was not a no-op comparison.
    let m = inst.metrics_snapshot().unwrap();
    assert_eq!(m.queries_classic, queries.len() as u64);
    assert!(m.jobs > 0);
}

#[test]
fn planned_answers_are_bit_identical_under_instrumentation_and_tracing() {
    let cases = five_semantics();
    let mut plain = Engine::new(EngineConfig::default());
    let pid = plain.register("g", lollipop());
    let mut inst = Engine::with_recorder(EngineConfig::default(), Recorder::enabled());
    let iid = inst.register("g", lollipop());

    for (spec, terminals) in cases {
        let q =
            PlannedQuery::with_semantics(spec, terminals, sampling_cfg(11), PlanBudget::default());
        let x = plain.run_planned(pid, &q).unwrap();
        // Tracing on top of metrics: the maximally-instrumented path.
        let y = inst.run_planned(iid, &q.clone().with_trace()).unwrap();
        assert_eq!(x.estimate.to_bits(), y.estimate.to_bits(), "{spec:?}");
        assert_eq!(x.lower_bound.to_bits(), y.lower_bound.to_bits());
        assert_eq!(x.upper_bound.to_bits(), y.upper_bound.to_bits());
        assert_eq!(x.ci.lower.to_bits(), y.ci.lower.to_bits());
        assert_eq!(x.ci.upper.to_bits(), y.ci.upper.to_bits());
        assert_eq!(x.samples_used, y.samples_used);
        assert_eq!(x.routes, y.routes);
        assert!(x.trace.is_none(), "untraced query must not carry a trace");
        let trace = y.trace.expect("traced query carries a span tree");
        assert!(trace.find("query").is_some());
        assert!(trace.find("combine").is_some(), "{spec:?}");
    }
}

#[test]
fn bit_sampling_path_is_bit_identical_under_instrumentation_and_tracing() {
    // A 45-clique routes to the bit-parallel sampler (frontier width > 40)
    // for both plain and hop-bounded semantics; the maximally-instrumented
    // engine must return byte-identical answers while actually recording
    // the packed route and its lane-utilization histogram.
    let g = netrel_datasets::clique(45);
    let mut plain = Engine::new(EngineConfig::default());
    let pid = plain.register("clique45", g.clone());
    let mut inst = Engine::with_recorder(EngineConfig::default(), Recorder::enabled());
    let iid = inst.register("clique45", g);

    for (spec, terminals) in [
        (SemanticsSpec::KTerminal, vec![0, 44]),
        (SemanticsSpec::DHop { d: 2 }, vec![0, 44]),
    ] {
        let q =
            PlannedQuery::with_semantics(spec, terminals, sampling_cfg(11), PlanBudget::default());
        let x = plain.run_planned(pid, &q).unwrap();
        let y = inst.run_planned(iid, &q.clone().with_trace()).unwrap();
        assert!(
            x.routes.contains(&netrel_engine::Route::BitSampling),
            "{spec:?} must route to the packed sampler: {:?}",
            x.routes
        );
        assert_eq!(x.estimate.to_bits(), y.estimate.to_bits(), "{spec:?}");
        assert_eq!(x.ci.lower.to_bits(), y.ci.lower.to_bits());
        assert_eq!(x.ci.upper.to_bits(), y.ci.upper.to_bits());
        assert_eq!(x.variance_estimate.to_bits(), y.variance_estimate.to_bits());
        assert_eq!(x.samples_used, y.samples_used);
        assert_eq!(x.routes, y.routes);
        let trace = y.trace.expect("traced query carries a span tree");
        let route_span = trace.find("route").expect("route span");
        let routes_attr = route_span
            .attrs
            .iter()
            .find(|(k, _)| k == "routes")
            .expect("routes attribute");
        assert!(
            routes_attr.1.contains("bit_sampling"),
            "trace must name the packed route: {routes_attr:?}"
        );
    }
    let m = inst.metrics_snapshot().unwrap();
    assert!(m.routes.bit_sampling >= 2, "{:?}", m.routes);
    assert!(
        m.bit_lane_utilization_percent.count >= 2,
        "lane-utilization histogram must observe packed parts"
    );
}

#[test]
fn trace_spans_are_well_formed_and_round_trip_through_serde() {
    use serde::Serialize as _;

    let mut engine = Engine::new(EngineConfig::sequential());
    let id = engine.register("g", lollipop());
    let q = PlannedQuery::new(vec![0, 7], PlanBudget::default()).with_trace();
    let a = engine.run_planned(id, &q).unwrap();
    let trace = a.trace.expect("trace requested");

    // Root first; every other span's parent is an earlier span; monotone
    // local timestamps.
    assert_eq!(trace.spans[0].name, "query");
    assert!(trace.spans[0].parent.is_none());
    for (i, s) in trace.spans.iter().enumerate().skip(1) {
        let p = s.parent.expect("non-root spans have parents") as usize;
        assert!(p < i, "parent {p} of span {i} must come earlier");
        assert!(s.end_ns >= s.start_ns, "span {i} runs backwards");
    }
    for expected in [
        "plan.k-terminal",
        "route",
        "cache.lookup",
        "part.solve",
        "combine",
    ] {
        assert!(trace.find(expected).is_some(), "missing span `{expected}`");
    }

    let json = serde_json::to_string(&trace.to_value()).unwrap();
    let back: netrel_engine::QueryTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back.spans.len(), trace.spans.len());
    assert_eq!(back.dropped, trace.dropped);
    for (a, b) in trace.spans.iter().zip(&back.spans) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.start_ns, b.start_ns);
        assert_eq!(a.end_ns, b.end_ns);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.attrs, b.attrs);
    }
}

#[test]
fn mutation_path_is_bit_identical_under_instrumentation() {
    use netrel_engine::Mutation;

    // The same mutation sequence on an instrumented and an uninstrumented
    // engine: every outcome and every post-step answer must match bit for
    // bit, and the mutation counters must actually move.
    let mutations = [
        Mutation::UpdateProb { edge: 2, p: 0.45 },
        Mutation::AddEdge {
            u: 1,
            v: 3,
            p: 0.35,
        },
        Mutation::RemoveEdge { edge: 5 },
    ];
    let queries: Vec<PlannedQuery> = five_semantics()
        .into_iter()
        .map(|(s, t)| PlannedQuery::with_semantics(s, t, sampling_cfg(11), PlanBudget::default()))
        .collect();

    let mut plain = Engine::new(EngineConfig::default());
    let pid = plain.register("g", lollipop());
    let mut inst = Engine::with_recorder(EngineConfig::default(), Recorder::enabled());
    let iid = inst.register("g", lollipop());

    for (step, m) in mutations.iter().enumerate() {
        let x = plain.apply_mutation(pid, *m).unwrap();
        let y = inst.apply_mutation(iid, *m).unwrap();
        assert_eq!(x.edge, y.edge, "step {step}");
        assert_eq!(x.patch, y.patch, "step {step}");
        assert_eq!(x.invalidated_plans, y.invalidated_plans, "step {step}");
        assert_eq!(x.invalidated_worlds, y.invalidated_worlds, "step {step}");
        let a = plain.run_planned_batch(pid, &queries).unwrap();
        let b = inst.run_planned_batch(iid, &queries).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.estimate.to_bits(), y.estimate.to_bits(), "step {step}");
            assert_eq!(x.ci.lower.to_bits(), y.ci.lower.to_bits());
            assert_eq!(x.ci.upper.to_bits(), y.ci.upper.to_bits());
            assert_eq!(x.samples_used, y.samples_used);
            assert_eq!(x.routes, y.routes);
        }
    }
    // The what-if path under instrumentation, against the plain engine.
    let q = &queries[0];
    let hyp = [Mutation::UpdateProb { edge: 0, p: 0.2 }];
    let x = plain.evaluate_with(pid, &hyp, q).unwrap();
    let y = inst.evaluate_with(iid, &hyp, q).unwrap();
    assert_eq!(x.estimate.to_bits(), y.estimate.to_bits());

    let m = inst.metrics_snapshot().unwrap();
    assert_eq!(m.mutations_update_prob, 1);
    assert_eq!(m.mutations_add_edge, 1);
    assert_eq!(m.mutations_remove_edge, 1);
    assert_eq!(m.index_patched + m.index_rebuilt, 3);
    assert_eq!(m.whatif_queries, 1);
    // Journals agree too: instrumentation must not change bookkeeping.
    let a = plain.mutation_journal(pid).unwrap();
    let b = inst.mutation_journal(iid).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.mutation, y.mutation);
        assert_eq!(x.outcome.patch, y.outcome.patch);
    }
}

#[test]
fn worker_count_does_not_change_instrumented_answers() {
    let q = PlannedQuery::with_config(vec![0, 7], sampling_cfg(5), PlanBudget::default());
    let mut seq = Engine::with_recorder(
        EngineConfig {
            workers: 1,
            plan_cache_capacity: 0,
        },
        Recorder::enabled(),
    );
    let sid = seq.register("g", lollipop());
    let mut par = Engine::with_recorder(
        EngineConfig {
            workers: 8,
            plan_cache_capacity: 0,
        },
        Recorder::enabled(),
    );
    let pid = par.register("g", lollipop());
    let a = seq.run_planned(sid, &q.clone().with_trace()).unwrap();
    let b = par.run_planned(pid, &q.with_trace()).unwrap();
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    assert_eq!(a.samples_used, b.samples_used);
    assert_eq!(a.routes, b.routes);
}
