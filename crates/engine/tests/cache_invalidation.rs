//! Cache-invalidation aliasing regressions (ISSUE 10, DESIGN.md §13).
//!
//! The structural keys (`PlanKey`, `WorldKey`) are the engine's actual
//! correctness mechanism — a post-mutation lookup re-keys on the mutated
//! edge list, so a stale entry *cannot* be served even if invalidation
//! never ran. These tests pin both halves of that story:
//!
//! * **aliasing**: a pre-mutation plan or packed-world mask is never
//!   served after the edge it covers changes — including entries the
//!   scoped predicate cannot see because preprocessing folded the touched
//!   edge's probability into a derived one (the under-scope fixture);
//! * **scoping**: the hygiene pass drops the owner's entries keyed on the
//!   touched probability bits and nothing else — entries of other graphs
//!   and entries not covering the edge survive (the over-scope fixtures);
//! * **telemetry**: `graph_stats` occupancy stays consistent with what
//!   the mutation outcome reported.

use netrel_core::{ProConfig, SemanticsSpec};
use netrel_engine::{Engine, EngineConfig, IndexPatch, Mutation, PlanBudget, PlannedQuery, Route};
use netrel_ugraph::UncertainGraph;

/// 4-cycle 0-1-2-3 with per-fixture probabilities.
fn cycle4(p: [f64; 4]) -> UncertainGraph {
    UncertainGraph::new(4, [(0, 1, p[0]), (1, 2, p[1]), (2, 3, p[2]), (3, 0, p[3])]).unwrap()
}

fn planned(terminals: Vec<usize>) -> PlannedQuery {
    PlannedQuery::with_semantics(
        SemanticsSpec::KTerminal,
        terminals,
        ProConfig::default(),
        PlanBudget::default(),
    )
}

/// Two-terminal reliability of a 4-cycle between opposite corners:
/// `1 − (1 − p01·p12)(1 − p03·p32)`.
fn cycle4_opposite(p: [f64; 4]) -> f64 {
    1.0 - (1.0 - p[0] * p[1]) * (1.0 - p[3] * p[2])
}

/// The under-scope fixture: a two-terminal cycle query is series/parallel
/// reduced, so its cache key holds a *derived* probability — the scoped
/// predicate cannot match the touched edge's bits and reports 0 dropped.
/// The stale entry is unreachable garbage (it ages out under LRU), and
/// the post-mutation answer must track the new probability regardless.
#[test]
fn mutated_probabilities_are_never_answered_from_stale_plans() {
    let mut engine = Engine::new(EngineConfig::default());
    let id = engine.register("g", cycle4([0.5, 0.8, 0.9, 0.7]));
    let q = planned(vec![0, 2]);

    let before = engine.run_planned(id, &q).unwrap();
    assert!(
        (before.estimate - cycle4_opposite([0.5, 0.8, 0.9, 0.7])).abs() < 1e-12,
        "{}",
        before.estimate
    );

    let outcome = engine.update_edge_prob(id, 0, 0.25).unwrap();
    assert_eq!(outcome.patch, IndexPatch::Patched);
    let after = engine.run_planned(id, &q).unwrap();
    assert!(
        (after.estimate - cycle4_opposite([0.25, 0.8, 0.9, 0.7])).abs() < 1e-12,
        "stale plan served: got {}",
        after.estimate
    );

    // Same aliasing check through the what-if path: a hypothesis must not
    // see entries for other probabilities, and must not disturb the
    // committed graph's answers.
    let whatif = engine
        .evaluate_with(id, &[Mutation::UpdateProb { edge: 0, p: 0.75 }], &q)
        .unwrap();
    assert!((whatif.estimate - cycle4_opposite([0.75, 0.8, 0.9, 0.7])).abs() < 1e-12);
    let again = engine.run_planned(id, &q).unwrap();
    assert_eq!(again.estimate.to_bits(), after.estimate.to_bits());
}

/// Invalidation is owner-scoped: graph `b` shares the touched raw
/// probability with graph `a`, but mutating `a` must not drop `b`'s
/// entries. Three terminals keep the terminal-incident edges unreduced,
/// so the raw bits really are in both keys.
#[test]
fn invalidation_does_not_cross_graph_owners() {
    let mut engine = Engine::new(EngineConfig::default());
    let a = engine.register("a", cycle4([0.5, 0.8, 0.9, 0.7]));
    let b = engine.register("b", cycle4([0.5, 0.8, 0.6, 0.7]));
    engine.run_planned(a, &planned(vec![0, 1, 2])).unwrap();
    engine.run_planned(b, &planned(vec![0, 1, 2])).unwrap();

    let occupancy = |engine: &Engine, name: &str| {
        engine
            .graph_stats()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap()
            .cache_entries
    };
    let b_before = occupancy(&engine, "b");
    assert!(b_before >= 1, "warmup left no entries for b");

    let outcome = engine.update_edge_prob(a, 0, 0.25).unwrap();
    assert!(
        outcome.invalidated_plans >= 1,
        "a's entries keyed on the old bits must drop"
    );
    assert_eq!(
        occupancy(&engine, "a"),
        0,
        "a's only entries covered the touched edge"
    );
    assert_eq!(
        occupancy(&engine, "b"),
        b_before,
        "owner scoping violated: b lost entries to a's mutation"
    );
    // b still answers with its own, untouched probabilities.
    let b_answer = engine.run_planned(b, &planned(vec![0, 2])).unwrap();
    assert!((b_answer.estimate - cycle4_opposite([0.5, 0.8, 0.6, 0.7])).abs() < 1e-12);
}

/// Invalidation is probability-scoped within one owner: entries whose key
/// does not cover the old bits survive, occupancy drops by exactly the
/// reported count, and additions invalidate nothing.
#[test]
fn invalidation_is_probability_scoped_and_occupancy_consistent() {
    let mut engine = Engine::new(EngineConfig::default());
    // Two disjoint 4-cycles in one graph with disjoint probabilities.
    let g = UncertainGraph::new(
        8,
        [
            (0, 1, 0.5),
            (1, 2, 0.8),
            (2, 3, 0.9),
            (3, 0, 0.7),
            (4, 5, 0.3),
            (5, 6, 0.6),
            (6, 7, 0.85),
            (7, 4, 0.95),
        ],
    )
    .unwrap();
    let id = engine.register("g", g);
    engine.run_planned(id, &planned(vec![0, 1, 2])).unwrap();
    engine.run_planned(id, &planned(vec![4, 5, 6])).unwrap();
    let before = engine.graph_stats()[0].cache_entries;
    assert!(
        before >= 2,
        "expected one cached part per cycle, got {before}"
    );

    // Touch edge 4 (p = 0.3, terminal-incident in the second query): only
    // keys covering those bits may drop.
    let outcome = engine.update_edge_prob(id, 4, 0.35).unwrap();
    assert!(outcome.invalidated_plans >= 1);
    let after = engine.graph_stats()[0].cache_entries;
    assert_eq!(
        before - after,
        outcome.invalidated_plans,
        "occupancy must drop by exactly the reported invalidation"
    );
    assert!(after >= 1, "the first cycle's entry must survive");
    // The untouched component still answers its unchanged exact value.
    let a = engine.run_planned(id, &planned(vec![0, 2])).unwrap();
    assert!((a.estimate - cycle4_opposite([0.5, 0.8, 0.9, 0.7])).abs() < 1e-12);

    // Adding an edge invalidates nothing: no pre-existing key can cover
    // an edge that did not exist when the key was written.
    let warm = engine.graph_stats()[0].cache_entries;
    let added = engine.add_edge(id, 0, 2, 0.77).unwrap();
    assert_eq!(added.invalidated_plans, 0);
    assert_eq!(added.invalidated_worlds, 0);
    assert_eq!(engine.graph_stats()[0].cache_entries, warm);
}

/// The world bank shares invalidation: on a bit-sampling-routed graph a
/// mutation drops the packed-world masks keyed on the old bits, and the
/// resampled answer matches a fresh engine bit for bit.
#[test]
fn world_bank_masks_are_invalidated_with_the_plans() {
    let g = netrel_datasets::clique(50);
    let mut engine = Engine::new(EngineConfig::default());
    let id = engine.register("g", g.clone());
    let q = planned(vec![0, 49]);
    let before = engine.run_planned(id, &q).unwrap();
    assert!(
        before.routes.contains(&Route::BitSampling),
        "fixture must route to the bit-parallel sampler: {:?}",
        before.routes
    );

    let p_old = g.prob(0);
    let outcome = engine.update_edge_prob(id, 0, p_old * 0.5).unwrap();
    assert!(
        outcome.invalidated_worlds >= 1,
        "sampled masks covering edge 0 must drop: {outcome:?}"
    );
    let after = engine.run_planned(id, &q).unwrap();

    let mut fresh = Engine::new(EngineConfig::default());
    let mut fg = g;
    fg.update_edge_prob(0, p_old * 0.5).unwrap();
    let fid = fresh.register("fresh", fg);
    let expected = fresh.run_planned(fid, &q).unwrap();
    assert_eq!(after.estimate.to_bits(), expected.estimate.to_bits());
    assert_eq!(after.ci.lower.to_bits(), expected.ci.lower.to_bits());
    assert_eq!(after.ci.upper.to_bits(), expected.ci.upper.to_bits());
}
