//! A scoped worker pool for per-part solver jobs.
//!
//! Jobs across the whole batch are pulled from one shared counter, so a
//! query with many parts and a query with one part interleave instead of
//! serializing per query. Results are reassembled by job index, and every
//! job's RNG seed is derived from its position in its query's decomposition
//! (`part_s2bdd_config`), so the output is bit-identical no matter how many
//! workers run or how the schedule lands.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(0..n)` and return the results in index order. With `workers <= 1`
/// (or fewer than two jobs) this is a plain sequential loop; otherwise
/// `min(workers, n)` scoped threads pull job indices from a shared atomic
/// counter. `f` must be deterministic per index for the parallel and
/// sequential paths to agree (solver jobs are: their seeds come from the
/// job, not the thread).
pub(crate) fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    collected.sort_unstable_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_in_order() {
        let f = |i: usize| i * i;
        let seq = run_indexed(100, 1, f);
        for workers in [2, 4, 7] {
            assert_eq!(run_indexed(100, workers, f), seq, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_job() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_workers_than_jobs() {
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }
}
