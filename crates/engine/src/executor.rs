//! A scoped worker pool for per-part solver jobs.
//!
//! Jobs across the whole batch are pulled from one shared counter, so a
//! query with many parts and a query with one part interleave instead of
//! serializing per query. Results are reassembled by job index, and every
//! job's RNG seed is derived from its position in its query's decomposition
//! (`part_s2bdd_config`), so the output is bit-identical no matter how many
//! workers run or how the schedule lands.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Run `f(0..n)` and return the results in index order, plus optional
/// per-worker busy timing. With `workers <= 1` (or fewer than two jobs)
/// this is a plain sequential loop; otherwise `min(workers, n)` scoped
/// threads pull job indices from a shared atomic counter. `f` must be
/// deterministic per index for the parallel and sequential paths to agree
/// (solver jobs are: their seeds come from the job, not the thread). With
/// `timed == true`, the second return value holds each worker's total
/// in-job time (one entry for the sequential path); with `timed == false`
/// it is empty and no clock is ever read — the instrumentation must cost
/// nothing when observability is off. Timing never affects scheduling or
/// results: the clock reads bracket `f` without touching the job counter.
pub(crate) fn run_indexed_timed<T, F>(
    n: usize,
    workers: usize,
    timed: bool,
    f: F,
) -> (Vec<T>, Vec<Duration>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        if !timed {
            return ((0..n).map(f).collect(), Vec::new());
        }
        let start = Instant::now();
        let out = (0..n).map(f).collect();
        return (out, vec![start.elapsed()]);
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<(Vec<(usize, T)>, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if timed {
                            let t0 = Instant::now();
                            out.push((i, f(i)));
                            busy += t0.elapsed();
                        } else {
                            out.push((i, f(i)));
                        }
                    }
                    (out, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    let mut busy_times = Vec::new();
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n);
    for (out, busy) in per_worker {
        if timed {
            busy_times.push(busy);
        }
        collected.extend(out);
    }
    collected.sort_unstable_by_key(|&(i, _)| i);
    (collected.into_iter().map(|(_, t)| t).collect(), busy_times)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Untimed convenience wrapper for result-ordering tests.
    fn run_indexed<T: Send>(n: usize, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        run_indexed_timed(n, workers, false, f).0
    }

    #[test]
    fn sequential_and_parallel_agree_in_order() {
        let f = |i: usize| i * i;
        let seq = run_indexed(100, 1, f);
        for workers in [2, 4, 7] {
            assert_eq!(run_indexed(100, workers, f), seq, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_job() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_workers_than_jobs() {
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn timed_run_returns_same_results_plus_busy_times() {
        let f = |i: usize| i * 3;
        let (plain, none) = run_indexed_timed(20, 4, false, f);
        assert!(none.is_empty(), "untimed runs must not report timings");
        let (timed, busy) = run_indexed_timed(20, 4, true, f);
        assert_eq!(plain, timed);
        assert!(!busy.is_empty() && busy.len() <= 4);
        // Sequential timed path reports exactly one worker.
        let (seq, busy) = run_indexed_timed(20, 1, true, f);
        assert_eq!(seq, plain);
        assert_eq!(busy.len(), 1);
    }
}
