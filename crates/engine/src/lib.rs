//! # netrel-engine — batched multi-query reliability
//!
//! The paper computes one `R[G, T]` per invocation; every real workload in
//! the surrounding literature is *many queries against one uncertain graph*
//! (benchmark suites issue thousands of terminal sets, reliability
//! maximization re-evaluates `R` under small perturbations in an inner
//! loop). This crate answers batches of [`ReliabilityQuery`] values against
//! registered graphs through a three-stage pipeline:
//!
//! 1. **Semantics planning** — each query names a reliability semantics
//!    ([`SemanticsSpec`]: k-terminal,
//!    two-terminal, all-terminal, d-hop, expected reachable-set size) that
//!    decomposes `(G, T)` into parts. The terminal-independent structure
//!    (bridges, 2ECC labelling, bridge forest:
//!    `netrel_preprocess::GraphIndex`) is computed once at
//!    [`Engine::register`] time and reused by every query; only the
//!    terminal-dependent decompose step runs per query.
//! 2. **Plan cache** — each decomposed part is keyed by its canonical
//!    structure, terminal set, part computation (connectivity vs. hop
//!    bound), and full solver config ([`PlanKey`]); results are LRU-cached
//!    so repeated and overlapping queries skip the solve entirely.
//!    Identical parts *within* one batch are also deduped and solved once.
//! 3. **Parallel executor** — remaining part jobs run on scoped worker
//!    threads with deterministic seeds and deterministic reassembly:
//!    answers are bit-identical to the one-shot
//!    [`semantics_reliability`](netrel_core::semantics_reliability) (and
//!    hence, for k-terminal queries, to
//!    [`pro_reliability`](netrel_core::pro_reliability)), sequential or not.
//!
//! For graphs the exact path cannot finish, the **adaptive planner**
//! ([`planner`], [`Engine::run_planned_batch`]) routes each part to exact
//! S2BDD, width-bounded S2BDD, exact hop-bounded enumeration, or flat
//! sampling under a per-query [`PlanBudget`], returning
//! [`ReliabilityAnswer`] values that carry the semantics they answered,
//! exactness status, and a confidence interval (`DESIGN.md` §9 is the
//! accuracy contract).
//!
//! ```
//! use netrel_engine::{Engine, EngineConfig, ReliabilityQuery};
//! use netrel_ugraph::UncertainGraph;
//!
//! let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.9), (3, 0, 0.7)]).unwrap();
//! let mut engine = Engine::new(EngineConfig::default());
//! let id = engine.register("demo", g);
//! let answers = engine
//!     .run_batch(id, &[ReliabilityQuery::new(vec![0, 2]), ReliabilityQuery::new(vec![1, 3])])
//!     .unwrap();
//! for a in answers {
//!     let a = a.unwrap();
//!     assert!(a.lower_bound <= a.estimate && a.estimate <= a.upper_bound);
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
mod executor;
pub mod mutate;
pub mod planner;
pub mod service;

use netrel_core::{
    combine_semantics_plan, exact_semantics_part, lane_utilization_percent, part_s2bdd_config,
    sample_semantics_part, solve_semantics_part, BitSamplingConfig, PartComputation, ProConfig,
    ProResult, SamplingConfig, SemPart, SemanticsPlan, SemanticsSpec, WorldBank,
    DHOP_EXACT_EDGE_LIMIT,
};
use netrel_numeric::{normal_ci, ConfidenceInterval};
use netrel_obs::trace as obs_trace;
use netrel_obs::TraceBuilder;
use netrel_preprocess::GraphIndex;
use netrel_s2bdd::{S2BddConfig, S2BddResult};
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use cache::{CacheStats, PlanCache, PlanKey};
pub use mutate::{MaximizeResult, MaximizeStep, Mutation, MutationOutcome, MutationRecord};
pub use netrel_obs::{MetricsSnapshot, QueryTrace, Recorder};
pub use netrel_preprocess::IndexPatch;
pub use planner::{plan_part, CostEstimate, PartPlan, PartSolver, PlanBudget, Route};

/// Engine-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum entries in the part-level plan cache (0 disables caching).
    pub plan_cache_capacity: usize,
    /// Worker threads for part solving; `<= 1` solves sequentially. Results
    /// are identical either way — only wall-clock changes.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            plan_cache_capacity: 4096,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl EngineConfig {
    /// Single-threaded configuration (deterministic wall-clock, e.g. for
    /// fair benchmarking of the algorithmic savings alone).
    pub fn sequential() -> Self {
        EngineConfig {
            workers: 1,
            ..Default::default()
        }
    }
}

/// Handle to a registered graph (index into the engine's registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphId(usize);

/// One reliability query: a semantics, a terminal set, and the full `Pro`
/// configuration.
#[derive(Clone, Debug)]
pub struct ReliabilityQuery {
    /// What the query computes (defaults to k-terminal connectivity).
    pub semantics: SemanticsSpec,
    /// Terminal vertices, interpreted per the semantics (connect-all for
    /// k-terminal, `(s, t)` for two-terminal/d-hop, the source for
    /// reach-set; ignored by all-terminal).
    pub terminals: Vec<VertexId>,
    /// Solver configuration. `config.parallel_parts` is ignored: the engine
    /// schedules parts across the whole batch itself.
    pub config: ProConfig,
}

impl ReliabilityQuery {
    /// A k-terminal query with the default `Pro` configuration.
    pub fn new(terminals: Vec<VertexId>) -> Self {
        ReliabilityQuery {
            semantics: SemanticsSpec::default(),
            terminals,
            config: ProConfig::default(),
        }
    }

    /// A k-terminal query with an explicit configuration.
    pub fn with_config(terminals: Vec<VertexId>, config: ProConfig) -> Self {
        ReliabilityQuery {
            semantics: SemanticsSpec::default(),
            terminals,
            config,
        }
    }

    /// A query under an explicit semantics.
    pub fn with_semantics(
        semantics: SemanticsSpec,
        terminals: Vec<VertexId>,
        config: ProConfig,
    ) -> Self {
        ReliabilityQuery {
            semantics,
            terminals,
            config,
        }
    }
}

/// One *planned* reliability query: a terminal set, the base solver
/// configuration, and the [`PlanBudget`] the adaptive planner routes under.
///
/// Unlike [`ReliabilityQuery`], the width/samples knobs of `config.s2bdd`
/// are advisory only — the planner overrides them per part according to its
/// cost model; the estimator, edge order, merge rule, and seed are honored.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// What the query computes (defaults to k-terminal connectivity).
    pub semantics: SemanticsSpec,
    /// Terminal vertices, interpreted per the semantics (see
    /// [`ReliabilityQuery::terminals`]).
    pub terminals: Vec<VertexId>,
    /// Base solver configuration (seed, estimator, order, merge rule).
    pub config: ProConfig,
    /// Per-query resource budget.
    pub budget: PlanBudget,
    /// Request a [`QueryTrace`] span tree with the answer (see
    /// [`PlannedQuery::with_trace`]). Tracing never changes the answer —
    /// only [`ReliabilityAnswer::trace`].
    pub trace: bool,
}

impl PlannedQuery {
    /// A planned k-terminal query with the default `Pro` base configuration.
    pub fn new(terminals: Vec<VertexId>, budget: PlanBudget) -> Self {
        PlannedQuery {
            semantics: SemanticsSpec::default(),
            terminals,
            config: ProConfig::default(),
            budget,
            trace: false,
        }
    }

    /// A planned k-terminal query with an explicit base configuration.
    pub fn with_config(terminals: Vec<VertexId>, config: ProConfig, budget: PlanBudget) -> Self {
        PlannedQuery {
            semantics: SemanticsSpec::default(),
            terminals,
            config,
            budget,
            trace: false,
        }
    }

    /// A planned query under an explicit semantics.
    pub fn with_semantics(
        semantics: SemanticsSpec,
        terminals: Vec<VertexId>,
        config: ProConfig,
        budget: PlanBudget,
    ) -> Self {
        PlannedQuery {
            semantics,
            terminals,
            config,
            budget,
            trace: false,
        }
    }

    /// Opt this query into span tracing: the answer's
    /// [`ReliabilityAnswer::trace`] carries the full span tree (plan,
    /// route, cache lookup, per-part solves, combine). Tracing is
    /// bit-invariant — it reads clocks, never an RNG.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// Errors surfaced by the engine.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The [`GraphId`] or graph name is not registered.
    UnknownGraph(String),
    /// The underlying graph/solver rejected the query.
    Graph(GraphError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownGraph(name) => write!(f, "unknown graph `{name}`"),
            EngineError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

/// Answer to one query — the fields of a `ProResult` plus cache telemetry,
/// serializable for the JSON service.
#[derive(Clone, Debug, serde::Serialize)]
pub struct QueryAnswer {
    /// The semantics this answer computed.
    pub semantics: SemanticsSpec,
    /// Estimated value `R̂[G, T]` under the semantics (a probability for
    /// all connectivity variants, an expected count for reach-set).
    pub estimate: f64,
    /// Proven lower bound.
    pub lower_bound: f64,
    /// Proven upper bound.
    pub upper_bound: f64,
    /// The estimate is the exact reliability.
    pub exact: bool,
    /// Bridge-probability factor from decomposition.
    pub pb: f64,
    /// Total samples across all parts, cached or fresh (a cached part
    /// reports the samples of its original solve, keeping this field equal
    /// to the one-shot `ProResult`'s).
    pub samples_used: usize,
    /// Variance of the product estimator.
    pub variance_estimate: f64,
    /// Preprocessing statistics.
    pub preprocess_stats: netrel_preprocess::PreprocessStats,
    /// Per-part solver results, in part order (cached or fresh).
    pub parts: Vec<S2BddResult>,
    /// Parts of this query served from the plan cache.
    pub cache_hits: usize,
    /// Parts of this query that required a solve (or joined an identical
    /// in-batch job).
    pub cache_misses: usize,
}

impl QueryAnswer {
    fn from_pro(
        semantics: SemanticsSpec,
        r: ProResult,
        cache_hits: usize,
        cache_misses: usize,
    ) -> Self {
        QueryAnswer {
            semantics,
            estimate: r.estimate,
            lower_bound: r.lower_bound,
            upper_bound: r.upper_bound,
            exact: r.exact,
            pb: r.pb,
            samples_used: r.samples_used,
            variance_estimate: r.variance_estimate,
            preprocess_stats: r.preprocess_stats,
            parts: r.parts,
            cache_hits,
            cache_misses,
        }
    }
}

/// Answer to one *planned* query: the recombined estimate with its proven
/// bounds, the exactness status, a confidence interval, and the per-part
/// routing decisions. The exactness/CI contract is specified in
/// `DESIGN.md` §9:
///
/// * `exact == true` — every part was solved exactly; `estimate` **is**
///   `R[G, T]` (up to f64 rounding of the recombination product) and the CI
///   is the degenerate `[estimate, estimate]`.
/// * `exact == false` — at least one part was estimated; `lower_bound` /
///   `upper_bound` are still *proven* envelopes, and `ci` is the
///   normal-approximation interval `estimate ± z·√variance` from the
///   product-estimator variance (paper Theorem 4 composition), widened by
///   the rule-of-three envelope `3/s` when the sample variance degenerates
///   to zero (so an estimated answer never claims certainty), intersected
///   with the proven bounds. The interval lives in the semantics' value
///   range (`[0, 1]` for probabilities, `[0, |V|]` for reach-set).
#[derive(Clone, Debug, serde::Serialize)]
pub struct ReliabilityAnswer {
    /// The semantics this answer computed.
    pub semantics: SemanticsSpec,
    /// Estimated (or exact) value `R̂[G, T]` under the semantics.
    pub estimate: f64,
    /// Proven lower bound (product of per-part proven lower bounds × `p_b`).
    pub lower_bound: f64,
    /// Proven upper bound.
    pub upper_bound: f64,
    /// Whether the estimate is the exact reliability.
    pub exact: bool,
    /// Confidence interval per the §9 contract (degenerate when exact).
    pub ci: ConfidenceInterval,
    /// Bridge-probability factor from decomposition.
    pub pb: f64,
    /// Total samples drawn across all parts (cached or fresh).
    pub samples_used: usize,
    /// Variance of the product estimator.
    pub variance_estimate: f64,
    /// Preprocessing statistics.
    pub preprocess_stats: netrel_preprocess::PreprocessStats,
    /// Per-part solver results, in part order.
    pub parts: Vec<S2BddResult>,
    /// Route the planner chose for each part, in part order.
    pub routes: Vec<Route>,
    /// Parts of this query served from the plan cache.
    pub cache_hits: usize,
    /// Parts of this query that required a solve (or joined an identical
    /// in-batch job).
    pub cache_misses: usize,
    /// Span tree of this query's execution, present when tracing was
    /// requested ([`PlannedQuery::with_trace`] or `trace: true` on the
    /// protocol); `None` otherwise.
    pub trace: Option<QueryTrace>,
}

impl ReliabilityAnswer {
    fn from_assembled(
        semantics: SemanticsSpec,
        a: Assembled,
        budget: &PlanBudget,
        value_cap: f64,
    ) -> Self {
        let Assembled {
            pro: r,
            routes,
            cache_hits: hits,
            cache_misses: misses,
            trace,
        } = a;
        // `value_cap` is the semantics' `value_upper`: 1 for probabilities,
        // `|V|` for reach-set. The probability path goes through `normal_ci`
        // unchanged so k-terminal answers stay bit-identical to the
        // pre-semantics engine.
        let ci = if r.exact {
            ConfidenceInterval {
                lower: r.estimate.clamp(0.0, value_cap),
                upper: r.estimate.clamp(0.0, value_cap),
                level: budget.confidence,
            }
        } else {
            let mut ci = if value_cap <= 1.0 {
                normal_ci(r.estimate, r.variance_estimate, budget.confidence)
            } else {
                let sd = if r.variance_estimate.is_finite() && r.variance_estimate > 0.0 {
                    r.variance_estimate.sqrt()
                } else {
                    0.0
                };
                let half = budget.confidence.z() * sd;
                ConfidenceInterval {
                    lower: (r.estimate - half).clamp(0.0, value_cap),
                    upper: (r.estimate + half).clamp(0.0, value_cap),
                    level: budget.confidence,
                }
            };
            // Degenerate-variance guard, applied per part: a sampled part
            // whose draws all agreed (all hits or all misses) reports Wald
            // variance 0 and would enter the Theorem-4 product as a
            // variance-free constant, letting the interval claim certainty
            // it does not have — even when other parts contribute variance.
            // Widen by the rule-of-three envelope `3/sᵢ` (the classic 95%
            // bound for zero observed failures) for each such part; since
            // part estimates multiply within [0, 1], the additive slack is
            // conservative.
            let slack: f64 = r
                .parts
                .iter()
                .filter(|p| !p.exact && p.samples_used > 0 && p.variance_estimate <= 0.0)
                .map(|p| 3.0 / p.samples_used as f64)
                .sum();
            if slack > 0.0 {
                ci.lower = (ci.lower - slack).max(0.0);
                ci.upper = (ci.upper + slack).min(value_cap);
            }
            ci.clamp_to(r.lower_bound, r.upper_bound)
        };
        ReliabilityAnswer {
            semantics,
            estimate: r.estimate,
            lower_bound: r.lower_bound,
            upper_bound: r.upper_bound,
            exact: r.exact,
            ci,
            pb: r.pb,
            samples_used: r.samples_used,
            variance_estimate: r.variance_estimate,
            preprocess_stats: r.preprocess_stats,
            parts: r.parts,
            routes,
            cache_hits: hits,
            cache_misses: misses,
            trace,
        }
    }
}

struct RegisteredGraph {
    name: String,
    graph: UncertainGraph,
    index: GraphIndex,
    /// Wall-clock cost of the `GraphIndex` build at registration.
    index_build: Duration,
    /// Monotone per-graph cache telemetry (occupancy, by contrast, is
    /// recomputed live from the cache map — see [`Engine::graph_stats`]).
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_inserts: AtomicU64,
    /// Committed mutations in application order (see [`mutate`]).
    journal: Vec<mutate::MutationRecord>,
}

/// Per-graph registration and cache telemetry, serializable for the
/// service's `stats` op.
#[derive(Clone, Debug, serde::Serialize)]
pub struct GraphStats {
    /// Registered name.
    pub name: String,
    /// Whether this registration is the one the name currently resolves to
    /// (re-registering a name keeps the old graph reachable by id).
    pub active: bool,
    /// Vertices in the graph.
    pub vertices: usize,
    /// Edges in the graph.
    pub edges: usize,
    /// Seconds spent building the terminal-independent [`GraphIndex`].
    pub index_build_secs: f64,
    /// Parts of this graph's queries served from the plan cache.
    pub cache_hits: u64,
    /// Parts that required a solve (or joined an in-batch job).
    pub cache_misses: u64,
    /// Results this graph's queries published to the plan cache.
    pub cache_inserts: u64,
    /// Plan-cache entries currently attributed to this graph — live
    /// occupancy recomputed from the cache map, so it is reset-safe
    /// (drops to 0 on [`Engine::clear_cache`], decays under eviction)
    /// while the counters above stay monotone.
    pub cache_entries: usize,
}

/// The batched multi-query reliability engine. See the crate docs for the
/// pipeline; [`Engine::run_batch`] is the main entry point.
pub struct Engine {
    cfg: EngineConfig,
    graphs: Vec<RegisteredGraph>,
    by_name: HashMap<String, usize>,
    cache: Mutex<PlanCache>,
    /// Metrics recorder — the no-op by default ([`Engine::new`]), live when
    /// constructed via [`Engine::with_recorder`]. Recording is passive
    /// (atomic counters and clock reads only), so answers are bit-identical
    /// either way.
    obs: Recorder,
    /// Memoized packed world masks for [`PartSolver::BitSampling`] parts:
    /// queries on the same graph/seed/budget share every drawn world, so
    /// repeat queries skip straight to the (cheap) propagation pass.
    /// Purely an accelerator — answers are byte-identical with or without
    /// a hit (see `netrel_core::WorldBank`).
    worlds: WorldBank,
}

/// Where a query's part result comes from during batch assembly.
enum PartSource {
    Cached(S2BddResult),
    Job(usize),
}

struct PreparedQuery {
    /// The semantics' decomposition of the query (parts, groups, offset).
    plan: SemanticsPlan,
    /// One materialized solver per part (the classic path mirrors
    /// `solve_semantics_part`'s dispatch; the planned path routes through
    /// the cost model).
    solvers: Vec<PartSolver>,
    /// Route per part — empty on the classic path.
    routes: Vec<Route>,
    /// One [`PlanKey`] per part, built outside the cache lock and reused
    /// for the post-solve insert (the single key-derivation site).
    keys: Vec<PlanKey>,
    sources: Vec<PartSource>,
    cache_hits: usize,
    cache_misses: usize,
    /// Span builder for this query, carried from planning (which already
    /// recorded plan/preprocess spans into it) through execution; `None`
    /// when the query did not opt into tracing.
    trace: Option<TraceBuilder>,
}

/// A recombined query outcome plus its routing/caching telemetry — the
/// common product of the classic and planned paths.
struct Assembled {
    pro: ProResult,
    routes: Vec<Route>,
    cache_hits: usize,
    cache_misses: usize,
    trace: Option<QueryTrace>,
}

/// Materialize the classic-path (non-planned) solver for one part,
/// mirroring `solve_semantics_part`'s dispatch exactly so engine answers
/// stay bit-identical to the one-shot pipeline: the configured S2BDD for
/// connectivity parts; for d-hop parts, exact enumeration up to
/// [`DHOP_EXACT_EDGE_LIMIT`] edges and hop-bounded sampling (same sample
/// budget, estimator, and per-part seed) beyond. Making the split explicit
/// here — rather than hiding it inside an opaque `S2Bdd` solver — keeps the
/// [`PlanKey`] honest about what actually ran.
fn classic_solver(part: &SemPart, base: S2BddConfig, part_index: usize) -> PartSolver {
    let cfg = part_s2bdd_config(base, part_index);
    match part.computation {
        PartComputation::Connectivity => PartSolver::S2Bdd(cfg),
        PartComputation::DHop { .. } if part.graph.num_edges() <= DHOP_EXACT_EDGE_LIMIT => {
            PartSolver::Enumeration
        }
        PartComputation::DHop { .. } => PartSolver::Sampling {
            samples: cfg.samples,
            estimator: cfg.estimator,
            seed: cfg.seed,
        },
    }
}

impl Engine {
    /// A new engine with the given configuration and the no-op recorder.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_recorder(cfg, Recorder::noop())
    }

    /// A new engine recording metrics into `obs` (use
    /// [`Recorder::enabled`] for a live catalogue; the service does).
    pub fn with_recorder(cfg: EngineConfig, obs: Recorder) -> Self {
        Engine {
            cfg,
            graphs: Vec::new(),
            by_name: HashMap::new(),
            cache: Mutex::new(PlanCache::new(cfg.plan_cache_capacity)),
            obs,
            worlds: WorldBank::new(),
        }
    }

    /// The engine's metrics recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Snapshot of the metric catalogue (`None` for the no-op recorder).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.obs.snapshot()
    }

    /// Register a graph under `name`, computing its terminal-independent
    /// [`GraphIndex`] once. Re-registering a name points it at the new
    /// graph; previously returned ids stay valid for the old one.
    pub fn register(&mut self, name: impl Into<String>, graph: UncertainGraph) -> GraphId {
        let name = name.into();
        let t0 = Instant::now();
        let index = GraphIndex::build(&graph);
        let index_build = t0.elapsed();
        if let Some(m) = self.obs.metrics() {
            m.index_build_seconds.observe_duration(index_build);
        }
        let id = self.graphs.len();
        self.by_name.insert(name.clone(), id);
        self.graphs.push(RegisteredGraph {
            name,
            graph,
            index,
            index_build,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_inserts: AtomicU64::new(0),
            journal: Vec::new(),
        });
        GraphId(id)
    }

    /// Look up a registered graph by name.
    pub fn graph_id(&self, name: &str) -> Option<GraphId> {
        self.by_name.get(name).copied().map(GraphId)
    }

    /// The registered graph behind an id.
    pub fn graph(&self, id: GraphId) -> Option<&UncertainGraph> {
        self.graphs.get(id.0).map(|r| &r.graph)
    }

    /// Number of registered graphs.
    pub fn num_graphs(&self) -> usize {
        self.graphs.len()
    }

    /// Answer one query (a one-element batch).
    pub fn run(&self, id: GraphId, query: &ReliabilityQuery) -> Result<QueryAnswer, EngineError> {
        self.run_batch(id, std::slice::from_ref(query))?
            .pop()
            .expect("one answer per query")
    }

    /// Answer a batch of queries against one registered graph.
    ///
    /// The outer `Result` fails only for an unknown [`GraphId`]; per-query
    /// failures (e.g. out-of-range terminals) come back in their slot so one
    /// bad query cannot poison a batch. Answers are bit-identical to calling
    /// [`semantics_reliability`](netrel_core::semantics_reliability) — and
    /// so, for the default k-terminal semantics,
    /// [`pro_reliability`](netrel_core::pro_reliability) — per query with
    /// the same configuration, independent of batch composition, cache
    /// state, and worker count.
    ///
    /// ```
    /// use netrel_engine::{Engine, EngineConfig, ReliabilityQuery};
    /// use netrel_ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.9)]).unwrap();
    /// let mut engine = Engine::new(EngineConfig::default());
    /// let id = engine.register("path", g);
    /// let queries = [ReliabilityQuery::new(vec![0, 3]), ReliabilityQuery::new(vec![1, 2])];
    /// let answers = engine.run_batch(id, &queries).unwrap();
    /// assert_eq!(answers.len(), 2);
    /// let a = answers[0].as_ref().unwrap();
    /// // A path is all bridges: preprocessing resolves it exactly.
    /// assert!(a.exact);
    /// assert!((a.estimate - 0.9 * 0.8 * 0.9).abs() < 1e-12);
    /// ```
    pub fn run_batch(
        &self,
        id: GraphId,
        queries: &[ReliabilityQuery],
    ) -> Result<Vec<Result<QueryAnswer, EngineError>>, EngineError> {
        let rg = self.registered(id)?;
        let metrics = self.obs.metrics();

        // Stage 1 (classic): semantics planning per query (the
        // terminal-independent structure is shared via `rg.index`); every
        // part is solved by the deterministic route with its per-part seed.
        let prepared: Vec<Result<PreparedQuery, EngineError>> = queries
            .iter()
            .map(|q| {
                let t0 = metrics.map(|_| Instant::now());
                let plan = q.semantics.semantics().plan(
                    &rg.graph,
                    &rg.index,
                    &q.terminals,
                    q.config.preprocess,
                )?;
                if let (Some(m), Some(t0)) = (metrics, t0) {
                    m.plan_seconds.observe_duration(t0.elapsed());
                    m.queries_classic.inc();
                    m.parts_per_query.observe_count(plan.parts.len());
                }
                let solvers: Vec<PartSolver> = plan
                    .parts
                    .iter()
                    .enumerate()
                    .map(|(pi, part)| classic_solver(part, q.config.s2bdd, pi))
                    .collect();
                Ok(Self::prepared(plan, solvers, Vec::new(), None))
            })
            .collect();

        let answers = self
            .execute(id.0, prepared)
            .into_iter()
            .zip(queries)
            .map(|(a, q)| {
                a.map(|a| QueryAnswer::from_pro(q.semantics, a.pro, a.cache_hits, a.cache_misses))
            })
            .collect();
        Ok(answers)
    }

    /// Answer one planned query (a one-element batch of
    /// [`run_planned_batch`](Engine::run_planned_batch)).
    pub fn run_planned(
        &self,
        id: GraphId,
        query: &PlannedQuery,
    ) -> Result<ReliabilityAnswer, EngineError> {
        self.run_planned_batch(id, std::slice::from_ref(query))?
            .pop()
            .expect("one answer per query")
    }

    /// Answer a batch of queries through the **adaptive planner**: each
    /// decomposed part is routed to exact S2BDD, width-bounded S2BDD, or
    /// flat sampling by the cost model in [`planner`], under the query's
    /// [`PlanBudget`]. Answers carry exactness status, proven bounds, and a
    /// confidence interval per the `DESIGN.md` §9 contract.
    ///
    /// Like [`run_batch`](Engine::run_batch), answers are deterministic:
    /// the budget is folded into solver configurations before solving, so
    /// batch composition, cache state, and worker count never change a
    /// result.
    ///
    /// ```
    /// use netrel_engine::{Engine, EngineConfig, PlanBudget, PlannedQuery};
    /// use netrel_ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.9), (3, 0, 0.7)]).unwrap();
    /// let mut engine = Engine::new(EngineConfig::default());
    /// let id = engine.register("cycle", g);
    /// let q = PlannedQuery::new(vec![0, 2], PlanBudget::default());
    /// let a = engine.run_planned_batch(id, &[q]).unwrap().remove(0).unwrap();
    /// assert!(a.exact, "a 4-cycle fits any sane node budget");
    /// assert!(a.ci.contains(a.estimate));
    /// ```
    pub fn run_planned_batch(
        &self,
        id: GraphId,
        queries: &[PlannedQuery],
    ) -> Result<Vec<Result<ReliabilityAnswer, EngineError>>, EngineError> {
        let rg = self.registered(id)?;
        let prepared = self.prepare_planned(&rg.graph, &rg.index, queries);
        let answers = self
            .execute(id.0, prepared)
            .into_iter()
            .zip(queries)
            .map(|(a, q)| {
                a.map(|a| {
                    ReliabilityAnswer::from_assembled(
                        q.semantics,
                        a,
                        &q.budget,
                        q.semantics.semantics().value_upper(&rg.graph),
                    )
                })
            })
            .collect();
        Ok(answers)
    }

    /// Stage 1 of the planned path against an explicit `(graph, index)`
    /// pair: semantics planning, then the cost model on every part to
    /// materialize its routed solver. A traced query runs planning with its
    /// builder installed in the thread-local hook, so the core/preprocess
    /// spans ("plan.*", "preprocess.*") nest under this query's root.
    /// Factored out of [`run_planned_batch`](Engine::run_planned_batch) so
    /// the what-if path ([`Engine::evaluate_with`]) can plan against a
    /// hypothetical graph while sharing the execution pipeline (and its
    /// structurally-keyed plan cache) unchanged.
    fn prepare_planned(
        &self,
        graph: &UncertainGraph,
        index: &GraphIndex,
        queries: &[PlannedQuery],
    ) -> Vec<Result<PreparedQuery, EngineError>> {
        let metrics = self.obs.metrics();
        queries
            .iter()
            .map(|q| {
                let t0 = metrics.map(|_| Instant::now());
                if q.trace {
                    obs_trace::install(TraceBuilder::new());
                }
                let plan_result =
                    q.semantics
                        .semantics()
                        .plan(graph, index, &q.terminals, q.config.preprocess);
                let mut tb = if q.trace { obs_trace::take() } else { None };
                let plan = plan_result?; // a failed plan drops its trace
                if let (Some(m), Some(t0)) = (metrics, t0) {
                    m.plan_seconds.observe_duration(t0.elapsed());
                    m.queries_planned.inc();
                    m.parts_per_query.observe_count(plan.parts.len());
                }
                // The wall-clock hint covers the whole query: split its
                // allowance across the decomposition before routing.
                let part_budget = q.budget.for_parts(plan.parts.len());
                let route_span = tb.as_mut().map(|b| (b.open("route"), Instant::now()));
                let plans: Vec<PartPlan> = plan
                    .parts
                    .iter()
                    .enumerate()
                    .map(|(pi, part)| plan_part(part, q.config.s2bdd, pi, &part_budget))
                    .collect();
                if let Some(m) = metrics {
                    for p in &plans {
                        Self::route_counter(m, p).inc();
                        m.predicted_nodes.observe_count(p.estimate.predicted_nodes);
                        if let PartSolver::BitSampling { samples, .. } = p.solver {
                            m.bit_lane_utilization_percent
                                .observe(lane_utilization_percent(samples));
                        }
                    }
                }
                if let (Some(b), Some((Some(id), _))) = (tb.as_mut(), route_span) {
                    let names: Vec<&str> = plans.iter().map(|p| p.route.name()).collect();
                    b.attr(id, "routes", names.join(","));
                    b.close(id);
                }
                let solvers = plans.iter().map(|p| p.solver).collect();
                let routes = plans.iter().map(|p| p.route).collect();
                Ok(Self::prepared(plan, solvers, routes, tb))
            })
            .collect()
    }

    /// The catalogue counter a routed part increments. Enumeration is a
    /// solver, not a [`Route`] (d-hop parts under the exact enumeration
    /// limit carry `Route::Exact` + [`PartSolver::Enumeration`]), so the
    /// exposed route breakdown derives from the `(route, solver)` pair.
    fn route_counter<'m>(m: &'m netrel_obs::Metrics, p: &PartPlan) -> &'m netrel_obs::Counter {
        match (p.route, p.solver) {
            (_, PartSolver::Enumeration) => &m.route_enumeration,
            (Route::Exact, _) => &m.route_exact,
            (Route::Bounded, _) => &m.route_bounded,
            (Route::Sampling, _) => &m.route_sampling,
            (Route::BitSampling, _) => &m.route_bit_sampling,
        }
    }

    fn registered(&self, id: GraphId) -> Result<&RegisteredGraph, EngineError> {
        self.graphs
            .get(id.0)
            .ok_or_else(|| EngineError::UnknownGraph(format!("#{}", id.0)))
    }

    /// Assemble a [`PreparedQuery`] from its parts, deriving the cache key
    /// of every part from its materialized solver (the single
    /// key-derivation site).
    fn prepared(
        plan: SemanticsPlan,
        solvers: Vec<PartSolver>,
        routes: Vec<Route>,
        trace: Option<TraceBuilder>,
    ) -> PreparedQuery {
        let keys = plan
            .parts
            .iter()
            .zip(&solvers)
            .map(|(part, &solver)| PlanKey::for_part(part, solver))
            .collect();
        PreparedQuery {
            plan,
            solvers,
            routes,
            keys,
            sources: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            trace,
        }
    }

    /// The shared stage-2/3 pipeline behind both batch entry points:
    /// plan-cache lookup and in-batch dedup, parallel solving of the
    /// remaining jobs, cache publication, and per-query recombination with
    /// the exact `combine_semantics_plan` composition the one-shot
    /// `semantics_reliability` uses.
    fn execute(
        &self,
        owner: usize,
        mut prepared: Vec<Result<PreparedQuery, EngineError>>,
    ) -> Vec<Result<Assembled, EngineError>> {
        let metrics = self.obs.metrics();
        if let Some(m) = metrics {
            m.batches.inc();
        }
        // Timing is on when either instrument wants it; both are passive
        // (clock reads only), so answers are unaffected either way.
        let timed = metrics.is_some()
            || prepared
                .iter()
                .any(|p| p.as_ref().is_ok_and(|p| p.trace.is_some()));

        // Plan-cache lookup and in-batch dedup per part, under the lock.
        // Jobs hold `(query, part)` indices into `prepared`, so part graphs
        // are borrowed, never cloned. Keys were built outside the lock, so
        // concurrent batches only contend on the lookups themselves.
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        let mut job_ids: HashMap<PlanKey, usize, netrel_numeric::FxBuildHasher> =
            HashMap::default();
        let (mut total_hits, mut total_misses) = (0u64, 0u64);
        {
            let mut cache = self.cache.lock().expect("plan cache poisoned");
            for (qi, prep) in prepared.iter_mut().enumerate() {
                let Ok(prep) = prep.as_mut() else { continue };
                let lookup_start = prep.trace.as_ref().map(|_| Instant::now());
                let mut sources = Vec::with_capacity(prep.keys.len());
                for (pi, key) in prep.keys.iter().enumerate() {
                    if let Some(hit) = cache.get(key) {
                        prep.cache_hits += 1;
                        sources.push(PartSource::Cached(hit));
                    } else {
                        prep.cache_misses += 1;
                        let job = *job_ids.entry(key.clone()).or_insert_with(|| {
                            jobs.push((qi, pi));
                            jobs.len() - 1
                        });
                        sources.push(PartSource::Job(job));
                    }
                }
                prep.sources = sources;
                total_hits += prep.cache_hits as u64;
                total_misses += prep.cache_misses as u64;
                if let (Some(b), Some(s)) = (prep.trace.as_mut(), lookup_start) {
                    if let Some(id) = b.add_timed("cache.lookup", s, Instant::now()) {
                        b.attr(id, "hits", prep.cache_hits.to_string());
                        b.attr(id, "misses", prep.cache_misses.to_string());
                    }
                }
            }
        } // release the cache lock before solving
        if let Some(m) = metrics {
            m.cache_hits.add(total_hits);
            m.cache_misses.add(total_misses);
            m.jobs.add(jobs.len() as u64);
        }
        if let Some(rg) = self.graphs.get(owner) {
            rg.cache_hits.fetch_add(total_hits, Ordering::Relaxed);
            rg.cache_misses.fetch_add(total_misses, Ordering::Relaxed);
        }

        // Stage 2: solve the deduped jobs on the worker pool. Each job's
        // solver is fully materialized (seed included), so results do not
        // depend on scheduling. When timed, each job also reports the
        // `(start, end)` instants of its solve — queue wait is measured
        // from the shared `anchor` just before the pool starts.
        let anchor = Instant::now();
        let (solved, worker_busy) = executor::run_indexed_timed(
            jobs.len(),
            self.cfg.workers,
            timed,
            |j| -> (Result<S2BddResult, GraphError>, Option<(Instant, Instant)>) {
                let start = timed.then(Instant::now);
                let (qi, pi) = jobs[j];
                let prep = prepared[qi].as_ref().expect("jobs come from Ok queries");
                let part = &prep.plan.parts[pi];
                let result = match prep.solvers[pi] {
                    PartSolver::S2Bdd(cfg) => solve_semantics_part(part, cfg),
                    PartSolver::Enumeration => exact_semantics_part(part),
                    PartSolver::Sampling {
                        samples,
                        estimator,
                        seed,
                    } => sample_semantics_part(
                        part,
                        SamplingConfig {
                            samples,
                            estimator,
                            seed,
                            // The executor already parallelizes across jobs;
                            // the stream partition keeps this seed-stable.
                            threads: 1,
                        },
                    ),
                    PartSolver::BitSampling { samples, seed } => self.worlds.part(
                        part,
                        BitSamplingConfig {
                            samples,
                            seed,
                            // Same reasoning as flat sampling: jobs are the
                            // parallelism unit, and the block partition keeps
                            // draws thread-count invariant anyway.
                            threads: 1,
                        },
                    ),
                };
                (result, start.map(|s| (s, Instant::now())))
            },
        );
        if let Some(m) = metrics {
            for busy in &worker_busy {
                m.worker_busy_seconds.observe_duration(*busy);
            }
            for (result, span) in &solved {
                if let Some((s, e)) = span {
                    m.part_solve_seconds.observe_duration(e.duration_since(*s));
                    m.queue_wait_seconds
                        .observe_duration(s.saturating_duration_since(anchor));
                }
                if let Ok(r) = result {
                    if r.nodes_created > 0 {
                        m.actual_nodes.observe_count(r.nodes_created);
                    }
                    if r.node_cap_hit {
                        m.node_cap_hits.inc();
                    }
                }
            }
        }

        // Stage 3: publish fresh results to the cache (in job order, for a
        // deterministic eviction sequence), then recombine per query.
        {
            let mut cache = self.cache.lock().expect("plan cache poisoned");
            for (j, (result, _)) in solved.iter().enumerate() {
                if let Ok(r) = result {
                    let (qi, pi) = jobs[j];
                    let prep = prepared[qi].as_ref().expect("jobs come from Ok queries");
                    let ins = cache.insert(prep.keys[pi].clone(), r.clone(), owner);
                    if ins.stored {
                        if let Some(m) = metrics {
                            m.cache_insertions.inc();
                        }
                        if let Some(rg) = self.graphs.get(owner) {
                            rg.cache_inserts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(age) = ins.evicted_age {
                        if let Some(m) = metrics {
                            m.cache_evictions.inc();
                            m.cache_eviction_age.observe_count(age as usize);
                        }
                    }
                }
            }
        }

        let mut errors = 0u64;
        let out: Vec<Result<Assembled, EngineError>> = prepared
            .into_iter()
            .map(|prep| {
                let mut prep = prep?;
                let mut tb = prep.trace.take();
                let mut parts = Vec::with_capacity(prep.sources.len());
                for (pi, source) in prep.sources.into_iter().enumerate() {
                    let (result, span) = match source {
                        PartSource::Cached(r) => (r, None),
                        PartSource::Job(j) => {
                            let (r, span) = &solved[j];
                            (r.clone()?, *span)
                        }
                    };
                    if let Some(b) = tb.as_mut() {
                        let id = match span {
                            Some((s, e)) => b.add_timed("part.solve", s, e),
                            None => {
                                // Cached (or shared in-batch) part: record a
                                // zero-width span so the tree stays complete.
                                let now = Instant::now();
                                b.add_timed("part.solve", now, now)
                            }
                        };
                        if let Some(id) = id {
                            b.attr(id, "part", pi.to_string());
                            b.attr(id, "cached", if span.is_none() { "true" } else { "false" });
                            if let Some(route) = prep.routes.get(pi) {
                                b.attr(id, "route", route.name());
                            }
                        }
                    }
                    parts.push(result);
                }
                // `combine_semantics_plan` handles trivially-zero plans
                // (empty parts) and reproduces `combine_part_results` bit
                // for bit on the classic single-group shape. When tracing,
                // the builder is installed around the call so the core's
                // "combine" span nests under this query's root.
                let t0 = metrics.map(|_| Instant::now());
                let pro = if let Some(b) = tb.take() {
                    obs_trace::install(b);
                    let pro = combine_semantics_plan(&prep.plan, parts);
                    tb = obs_trace::take();
                    pro
                } else {
                    combine_semantics_plan(&prep.plan, parts)
                };
                if let (Some(m), Some(t0)) = (metrics, t0) {
                    m.combine_seconds.observe_duration(t0.elapsed());
                }
                Ok(Assembled {
                    pro,
                    routes: prep.routes,
                    cache_hits: prep.cache_hits,
                    cache_misses: prep.cache_misses,
                    trace: tb.map(TraceBuilder::finish),
                })
            })
            .inspect(|r| {
                if r.is_err() {
                    errors += 1;
                }
            })
            .collect();
        if let Some(m) = metrics {
            m.query_errors.add(errors);
        }
        out
    }

    /// Snapshot of the plan cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("plan cache poisoned").stats()
    }

    /// Per-graph registration and cache telemetry, in registration order.
    /// `cache_entries` is recomputed live from the cache map under one
    /// lock, so occupancies are reset-safe (they drop on
    /// [`clear_cache`](Engine::clear_cache) and decay under eviction) and
    /// always sum to at most the cache's current length.
    pub fn graph_stats(&self) -> Vec<GraphStats> {
        let occupancy = self
            .cache
            .lock()
            .expect("plan cache poisoned")
            .entries_by_owner(self.graphs.len());
        self.graphs
            .iter()
            .enumerate()
            .map(|(i, rg)| GraphStats {
                name: rg.name.clone(),
                active: self.by_name.get(&rg.name) == Some(&i),
                vertices: rg.graph.num_vertices(),
                edges: rg.graph.num_edges(),
                index_build_secs: rg.index_build.as_secs_f64(),
                cache_hits: rg.cache_hits.load(Ordering::Relaxed),
                cache_misses: rg.cache_misses.load(Ordering::Relaxed),
                cache_inserts: rg.cache_inserts.load(Ordering::Relaxed),
                cache_entries: occupancy[i],
            })
            .collect()
    }

    /// Drop all cached plans (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("plan cache poisoned").clear();
    }

    /// Names of the registered graphs, in registration order.
    pub fn graph_names(&self) -> impl Iterator<Item = &str> {
        self.graphs.iter().map(|r| r.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_core::pro_reliability;
    use netrel_s2bdd::S2BddConfig;

    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
                (5, 6, 0.9),
                (6, 7, 0.9),
            ],
        )
        .unwrap()
    }

    fn sampling_cfg(seed: u64) -> ProConfig {
        ProConfig {
            s2bdd: S2BddConfig {
                max_width: 2,
                samples: 400,
                seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn batch_answers_match_oneshot_bitwise() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g.clone());
        let queries: Vec<ReliabilityQuery> = [vec![0, 4], vec![0, 7], vec![1, 4, 6], vec![0, 4]]
            .into_iter()
            .map(|t| ReliabilityQuery::with_config(t, sampling_cfg(11)))
            .collect();
        let answers = engine.run_batch(id, &queries).unwrap();
        for (q, a) in queries.iter().zip(&answers) {
            let a = a.as_ref().unwrap();
            let solo = pro_reliability(&g, &q.terminals, q.config).unwrap();
            assert_eq!(a.estimate.to_bits(), solo.estimate.to_bits());
            assert_eq!(a.lower_bound.to_bits(), solo.lower_bound.to_bits());
            assert_eq!(a.upper_bound.to_bits(), solo.upper_bound.to_bits());
            assert_eq!(a.samples_used, solo.samples_used);
            assert_eq!(a.exact, solo.exact);
        }
        // Within one batch the duplicate 4th query joins the first query's
        // jobs (counted as misses — nothing was in the cache yet). A second
        // identical batch is then served entirely from the cache.
        let again = engine.run_batch(id, &queries).unwrap();
        for (first, second) in answers.iter().zip(&again) {
            let (first, second) = (first.as_ref().unwrap(), second.as_ref().unwrap());
            assert_eq!(second.cache_misses, 0);
            assert_eq!(second.cache_hits, first.cache_hits + first.cache_misses);
            assert_eq!(first.estimate.to_bits(), second.estimate.to_bits());
        }
    }

    #[test]
    fn repeated_batches_hit_the_cache() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::sequential());
        let id = engine.register("lollipop", g);
        let q = [ReliabilityQuery::with_config(vec![0, 7], sampling_cfg(3))];
        let a1 = engine.run_batch(id, &q).unwrap().remove(0).unwrap();
        let a2 = engine.run_batch(id, &q).unwrap().remove(0).unwrap();
        assert!(a1.cache_misses > 0);
        assert_eq!(a2.cache_misses, 0);
        assert_eq!(a2.cache_hits, a1.cache_hits + a1.cache_misses);
        assert_eq!(a1.estimate.to_bits(), a2.estimate.to_bits());
        let stats = engine.cache_stats();
        assert!(stats.hits >= 1 && stats.misses >= 1);
    }

    #[test]
    fn per_query_errors_do_not_poison_the_batch() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g);
        let queries = [
            ReliabilityQuery::new(vec![0, 4]),
            ReliabilityQuery::new(vec![0, 99]), // out of range
            ReliabilityQuery::new(vec![]),      // empty
            ReliabilityQuery::new(vec![0, 7]),
        ];
        let answers = engine.run_batch(id, &queries).unwrap();
        assert!(answers[0].is_ok());
        assert!(matches!(answers[1], Err(EngineError::Graph(_))));
        assert!(matches!(answers[2], Err(EngineError::Graph(_))));
        assert!(answers[3].is_ok());
    }

    #[test]
    fn unknown_graph_is_an_outer_error() {
        let engine = Engine::new(EngineConfig::default());
        let bogus = GraphId(7);
        assert!(matches!(
            engine.run_batch(bogus, &[]),
            Err(EngineError::UnknownGraph(_))
        ));
    }

    #[test]
    fn worker_count_does_not_change_answers() {
        let g = lollipop();
        let queries: Vec<ReliabilityQuery> = [vec![0, 7], vec![1, 4, 6], vec![0, 4]]
            .into_iter()
            .map(|t| ReliabilityQuery::with_config(t, sampling_cfg(5)))
            .collect();
        let mut seq = Engine::new(EngineConfig {
            workers: 1,
            plan_cache_capacity: 0,
        });
        let sid = seq.register("g", g.clone());
        let mut par = Engine::new(EngineConfig {
            workers: 8,
            plan_cache_capacity: 0,
        });
        let pid = par.register("g", g);
        let a = seq.run_batch(sid, &queries).unwrap();
        let b = par.run_batch(pid, &queries).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.estimate.to_bits(), y.estimate.to_bits());
            assert_eq!(x.samples_used, y.samples_used);
        }
    }

    #[test]
    fn disconnected_terminals_answer_exact_zero() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("disc", g);
        let a = engine.run(id, &ReliabilityQuery::new(vec![0, 2])).unwrap();
        assert_eq!(a.estimate, 0.0);
        assert!(a.exact);
    }

    /// Complete graph on `n` vertices, p = 0.5 everywhere.
    fn clique(n: usize) -> UncertainGraph {
        netrel_datasets::clique_uniform(n, 0.5)
    }

    #[test]
    fn planner_takes_exact_route_on_sparse_fixture_bit_identically() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g.clone());
        for terminals in [vec![0, 4], vec![0, 7], vec![1, 4, 6]] {
            let q = PlannedQuery::new(terminals.clone(), PlanBudget::default());
            let a = engine.run_planned(id, &q).unwrap();
            assert!(a.routes.iter().all(|&r| r == Route::Exact), "{terminals:?}");
            assert!(a.exact);
            assert_eq!(a.samples_used, 0);
            assert_eq!((a.ci.lower, a.ci.upper), (a.estimate, a.estimate));
            // Bit-identical to the one-shot exact Pro solve.
            let solo = pro_reliability(
                &g,
                &terminals,
                netrel_core::ProConfig {
                    s2bdd: S2BddConfig::exact(),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(a.estimate.to_bits(), solo.estimate.to_bits());
            assert_eq!(a.lower_bound.to_bits(), solo.lower_bound.to_bits());
            assert_eq!(a.upper_bound.to_bits(), solo.upper_bound.to_bits());
        }
    }

    #[test]
    fn planner_routes_dense_graph_to_bit_sampling_and_attaches_ci() {
        let g = clique(60);
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("clique", g);
        let q = PlannedQuery::new(vec![0, 59], PlanBudget::default());
        let a = engine.run_planned(id, &q).unwrap();
        assert!(a.routes.contains(&Route::BitSampling), "{:?}", a.routes);
        assert!(!a.exact);
        assert!(a.samples_used > 0);
        assert!(a.ci.contains(a.estimate));
        assert!(a.ci.width() > 0.0 || a.variance_estimate == 0.0);
        assert!(a.lower_bound <= a.estimate && a.estimate <= a.upper_bound);
    }

    #[test]
    fn world_bank_reuse_never_leaks_into_answers() {
        // Two bit-sampled queries on one engine share the memoized
        // reachability matrix (same graph, same derived seed, same source);
        // a fresh engine that only ever sees the second query must still
        // produce it byte-identically — reuse is wall-clock only.
        let g = clique(55);
        let mut warm = Engine::new(EngineConfig::default());
        let wid = warm.register("clique", g.clone());
        let first = PlannedQuery::new(vec![0, 54], PlanBudget::default());
        let second = PlannedQuery::new(vec![0, 30], PlanBudget::default());
        let a1 = warm.run_planned(wid, &first).unwrap();
        let a2 = warm.run_planned(wid, &second).unwrap();
        assert!(a1.routes.contains(&Route::BitSampling), "{:?}", a1.routes);

        let mut cold = Engine::new(EngineConfig::default());
        let cid = cold.register("clique", g);
        let b2 = cold.run_planned(cid, &second).unwrap();
        assert_eq!(a2.estimate.to_bits(), b2.estimate.to_bits());
        assert_eq!(
            a2.variance_estimate.to_bits(),
            b2.variance_estimate.to_bits()
        );
        assert_eq!(a2.samples_used, b2.samples_used);
        assert_eq!(a2.routes, b2.routes);
    }

    #[test]
    fn planned_answers_are_deterministic_and_cacheable() {
        let g = clique(40);
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("clique", g.clone());
        let q = [PlannedQuery::new(vec![0, 39], PlanBudget::default())];
        let a1 = engine.run_planned_batch(id, &q).unwrap().remove(0).unwrap();
        let a2 = engine.run_planned_batch(id, &q).unwrap().remove(0).unwrap();
        assert!(a1.cache_misses > 0);
        assert_eq!(a2.cache_misses, 0, "second run is served from the cache");
        assert_eq!(a1.estimate.to_bits(), a2.estimate.to_bits());
        // A separate engine (fresh cache, different worker count) agrees.
        let mut other = Engine::new(EngineConfig::sequential());
        let oid = other.register("clique", g);
        let b = other.run_planned_batch(oid, &q).unwrap().remove(0).unwrap();
        assert_eq!(a1.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a1.routes, b.routes);
    }

    #[test]
    fn node_budget_safety_net_still_answers_when_model_is_forced_wrong() {
        // A budget of 2 nodes under-provisions even the lollipop: the exact
        // route cannot be chosen, and whatever route is, the answer must
        // come back with valid bounds and CI rather than an error.
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g.clone());
        let budget = PlanBudget {
            node_budget: 2,
            sample_budget: 2_000,
            ..Default::default()
        };
        let a = engine
            .run_planned(id, &PlannedQuery::new(vec![0, 7], budget))
            .unwrap();
        assert!(a.lower_bound <= a.estimate && a.estimate <= a.upper_bound);
        assert!(a.ci.contains(a.estimate));
        let truth = netrel_bdd::brute_force_reliability(&g, &[0, 7]);
        assert!(a.lower_bound <= truth + 1e-12 && truth - 1e-12 <= a.upper_bound);
    }

    #[test]
    fn degenerate_variance_never_yields_a_certain_estimate() {
        // Near-certain edges: every sampled world connects, the Wald
        // variance is exactly 0, and without the rule-of-three guard the
        // "95% CI" would be the lying point interval [1, 1].
        let g = netrel_datasets::clique_uniform(50, 0.95);
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("hot-clique", g);
        let a = engine
            .run_planned(id, &PlannedQuery::new(vec![0, 49], PlanBudget::default()))
            .unwrap();
        assert!(!a.exact);
        assert_eq!(a.estimate, 1.0, "every draw connects");
        assert_eq!(a.variance_estimate, 0.0);
        let slack = 3.0 / a.samples_used as f64;
        assert!((a.ci.lower - (1.0 - slack)).abs() < 1e-12, "{:?}", a.ci);
        assert_eq!(a.ci.upper, 1.0);
        assert!(a.ci.width() > 0.0);
    }

    /// Complete graph on 7 vertices (21 edges — above the d-hop exact
    /// enumeration limit) with heterogeneous probabilities; at `d = 2`
    /// every vertex is one hop from both endpoints, so distance pruning
    /// keeps the part wide.
    fn k7() -> UncertainGraph {
        let mut edges = Vec::new();
        for u in 0..7usize {
            for v in (u + 1)..7 {
                edges.push((u, v, 0.15 + 0.1 * ((u + v) % 5) as f64));
            }
        }
        UncertainGraph::new(7, edges).unwrap()
    }

    #[test]
    fn semantics_batch_answers_match_oneshot_bitwise() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g.clone());
        let cases = [
            (SemanticsSpec::TwoTerminal, vec![0, 7]),
            (SemanticsSpec::KTerminal, vec![1, 4, 6]),
            (SemanticsSpec::AllTerminal, vec![]),
            (SemanticsSpec::DHop { d: 6 }, vec![0, 7]),
            (SemanticsSpec::DHop { d: 2 }, vec![0, 7]), // trivially zero
            (SemanticsSpec::ReachSet, vec![3]),
        ];
        let queries: Vec<ReliabilityQuery> = cases
            .iter()
            .map(|(s, t)| ReliabilityQuery::with_semantics(*s, t.clone(), sampling_cfg(11)))
            .collect();
        let answers = engine.run_batch(id, &queries).unwrap();
        for (q, a) in queries.iter().zip(&answers) {
            let a = a.as_ref().unwrap();
            let solo = netrel_core::semantics_reliability(&g, q.semantics, &q.terminals, q.config)
                .unwrap();
            assert_eq!(
                a.estimate.to_bits(),
                solo.estimate.to_bits(),
                "{:?}",
                q.semantics
            );
            assert_eq!(a.lower_bound.to_bits(), solo.lower_bound.to_bits());
            assert_eq!(a.upper_bound.to_bits(), solo.upper_bound.to_bits());
            assert_eq!(a.samples_used, solo.samples_used);
            assert_eq!(a.exact, solo.exact);
            assert_eq!(a.semantics, q.semantics);
        }
    }

    #[test]
    fn semantics_answers_agree_with_oracle() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g.clone());
        let cases = [
            (SemanticsSpec::TwoTerminal, vec![0, 7]),
            (SemanticsSpec::KTerminal, vec![1, 4, 6]),
            (SemanticsSpec::AllTerminal, vec![]),
            (SemanticsSpec::DHop { d: 6 }, vec![0, 7]),
            (SemanticsSpec::ReachSet, vec![0]),
        ];
        for (spec, t) in cases {
            let truth = netrel_core::oracle_value(&g, spec, &t).unwrap();
            let a = engine
                .run(
                    id,
                    &ReliabilityQuery::with_semantics(spec, t, ProConfig::default()),
                )
                .unwrap();
            assert!(
                (a.estimate - truth).abs() < 1e-9,
                "{spec:?}: {} vs oracle {truth}",
                a.estimate
            );
        }
    }

    #[test]
    fn wide_dhop_batch_matches_oneshot_bitwise() {
        // 21 edges at d = 2: the classic path must take the hop-bounded
        // sampling fallback, with the same per-part seed as the one-shot
        // pipeline.
        let g = k7();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("k7", g.clone());
        let q = ReliabilityQuery::with_semantics(
            SemanticsSpec::DHop { d: 2 },
            vec![0, 6],
            sampling_cfg(9),
        );
        let a = engine.run(id, &q).unwrap();
        let solo =
            netrel_core::semantics_reliability(&g, q.semantics, &q.terminals, q.config).unwrap();
        assert!(!a.exact, "oversized d-hop part must be sampled");
        assert!(a.samples_used > 0);
        assert_eq!(a.estimate.to_bits(), solo.estimate.to_bits());
        assert_eq!(a.samples_used, solo.samples_used);
    }

    #[test]
    fn planned_dhop_small_part_is_exact_enumeration() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g.clone());
        let spec = SemanticsSpec::DHop { d: 6 };
        let q = PlannedQuery::with_semantics(
            spec,
            vec![0, 7],
            ProConfig::default(),
            PlanBudget::default(),
        );
        let a = engine.run_planned(id, &q).unwrap();
        assert!(
            a.routes.iter().all(|&r| r == Route::Exact),
            "{:?}",
            a.routes
        );
        assert!(a.exact);
        assert_eq!((a.ci.lower, a.ci.upper), (a.estimate, a.estimate));
        let truth = netrel_core::oracle_value(&g, spec, &[0, 7]).unwrap();
        assert!((a.estimate - truth).abs() < 1e-9);
    }

    #[test]
    fn planned_wide_dhop_routes_to_bit_sampling_with_ci() {
        let g = k7();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("k7", g);
        let spec = SemanticsSpec::DHop { d: 2 };
        let q = PlannedQuery::with_semantics(
            spec,
            vec![0, 6],
            ProConfig::default(),
            PlanBudget::default(),
        );
        let a = engine.run_planned(id, &q).unwrap();
        assert!(a.routes.contains(&Route::BitSampling), "{:?}", a.routes);
        assert!(!a.exact);
        assert!(a.samples_used > 0);
        assert!(a.ci.contains(a.estimate));
        assert_eq!(a.semantics, spec);
    }

    #[test]
    fn reach_set_ci_lives_in_the_count_range() {
        // Near-certain 20-clique: the expected reachable-set size is close
        // to 20 — the CI must live in the count range, not be squashed into
        // [0, 1] like a probability.
        let g = netrel_datasets::clique_uniform(20, 0.9);
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("hot-clique", g);
        let q = PlannedQuery::with_semantics(
            SemanticsSpec::ReachSet,
            vec![0],
            ProConfig::default(),
            PlanBudget::default(),
        );
        let a = engine.run_planned(id, &q).unwrap();
        assert!(
            a.estimate > 10.0,
            "estimate {} should be near 20",
            a.estimate
        );
        assert!(a.ci.contains(a.estimate), "{:?} vs {}", a.ci, a.estimate);
        assert!(a.ci.upper <= 20.0 + 1e-9);
        assert!(a.upper_bound <= 20.0 + 1e-9);
    }

    #[test]
    fn time_hint_only_tightens_never_breaks() {
        let g = lollipop();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("lollipop", g);
        let budget = PlanBudget {
            time_hint_ms: Some(1),
            ..Default::default()
        };
        let a = engine
            .run_planned(id, &PlannedQuery::new(vec![0, 7], budget))
            .unwrap();
        assert!(a.lower_bound <= a.estimate && a.estimate <= a.upper_bound);
        assert!(a.ci.contains(a.estimate));
    }
}
