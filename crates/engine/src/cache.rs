//! The part-level plan cache.
//!
//! Preprocessing decomposes every query into *parts* — small canonical
//! subproblems `(graph, terminals)` solved by one S2BDD run each. Real
//! workloads (s-t benchmark suites, reliability-maximization inner loops,
//! hot terminal pairs) re-derive the same parts over and over: repeated
//! queries obviously, but also *overlapping* queries whose decompositions
//! share components. Caching at part granularity therefore hits strictly
//! more often than caching whole answers would.
//!
//! Keys are **full structural keys**, not hashes: the part's edge list
//! (endpoints + probability bits), its terminal set, the
//! [`PartComputation`] the part answers (a connectivity part and a d-hop
//! part over the same subgraph are different subproblems, as are two d-hop
//! parts with different hop bounds), and the complete solver
//! discriminant — a [`PartSolver`] naming the solver family *and* its full
//! configuration (for S2BDD runs the complete [`S2BddConfig`], per-part
//! seed included; for flat sampling the sample count, estimator, and
//! seed). Two subproblems alias only if every one of those is identical —
//! in which case the solver is deterministic and the cached result *is*
//! the result. A config change (width, samples, seed, estimator, order,
//! merge rule, node cap, …) always changes the key, a planner-routed
//! sampling run can never alias an S2BDD run, and no semantics variant can
//! ever alias a cached two-terminal (connectivity) plan.

use crate::planner::PartSolver;
use netrel_core::{PartComputation, SemPart};
use netrel_s2bdd::{S2BddConfig, S2BddResult};
use netrel_ugraph::{UncertainGraph, VertexId};
use std::collections::HashMap;

/// Canonical identity of one part-level solve.
///
/// Parts come out of preprocessing densely renumbered in a deterministic
/// order, so structurally identical subproblems produce identical keys no
/// matter which query (or graph) they came from.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// `(u, v, p.to_bits())` per edge, in part edge order.
    edges: Box<[(u32, u32, u64)]>,
    /// Sorted terminal ids within the part.
    terminals: Box<[u32]>,
    /// What the part computes — the semantics discriminant. A d-hop part
    /// over the same `(edges, terminals)` is a different subproblem than a
    /// connectivity part, and distinct hop bounds are distinct subproblems;
    /// keying on the computation means semantics variants can never alias
    /// each other's cached results.
    computation: PartComputation,
    /// The solver-family discriminant plus its exact configuration.
    solver: PartSolver,
}

impl PlanKey {
    /// Build the key for one S2BDD solve of a connectivity part
    /// `(graph, terminals)` under `config` (the classic, non-planned engine
    /// path).
    pub fn new(graph: &UncertainGraph, terminals: &[VertexId], config: S2BddConfig) -> Self {
        Self::for_solver(graph, terminals, PartSolver::S2Bdd(config))
    }

    /// Build the key for solving a connectivity part `(graph, terminals)`
    /// with an arbitrary routed [`PartSolver`].
    pub fn for_solver(graph: &UncertainGraph, terminals: &[VertexId], solver: PartSolver) -> Self {
        Self::build(graph, terminals, PartComputation::Connectivity, solver)
    }

    /// Build the key for solving a semantics [`SemPart`] (which carries its
    /// own [`PartComputation`]) with `solver`.
    pub fn for_part(part: &SemPart, solver: PartSolver) -> Self {
        Self::build(&part.graph, &part.terminals, part.computation, solver)
    }

    fn build(
        graph: &UncertainGraph,
        terminals: &[VertexId],
        computation: PartComputation,
        solver: PartSolver,
    ) -> Self {
        let edges: Box<[(u32, u32, u64)]> = graph
            .edges()
            .iter()
            .map(|e| (e.u as u32, e.v as u32, e.p.to_bits()))
            .collect();
        let mut terminals: Box<[u32]> = terminals.iter().map(|&t| t as u32).collect();
        terminals.sort_unstable();
        PlanKey {
            edges,
            terminals,
            computation,
            solver,
        }
    }
}

/// Aggregate cache counters, serializable for the service's `stats` op.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct CacheStats {
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries before eviction (0 disables the cache).
    pub capacity: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh solve.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

struct Entry {
    result: S2BddResult,
    last_used: u64,
    /// Registry index of the graph whose query produced this entry, for
    /// per-graph occupancy reporting. Not part of the key: structurally
    /// identical parts from different graphs intentionally share entries,
    /// and a shared entry is attributed to its most recent producer.
    owner: usize,
}

/// What [`PlanCache::insert`] did, for the caller's metrics.
#[derive(Clone, Copy, Debug)]
pub struct Inserted {
    /// Whether the entry was stored (false only when capacity is 0).
    pub stored: bool,
    /// Tick age (`now − last_used`) of the entry evicted to make room.
    pub evicted_age: Option<u64>,
}

/// LRU cache of part-level solver results.
///
/// Recency is tracked with a monotone tick stamped on every hit/insert;
/// eviction scans for the minimum stamp. That is `O(len)` per eviction —
/// deliberate: capacities are small (thousands), evictions only happen at
/// capacity, and the scan avoids the unsafe code or extra indirection of an
/// intrusive list.
pub struct PlanCache {
    capacity: usize,
    map: HashMap<PlanKey, Entry, netrel_numeric::FxBuildHasher>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            map: HashMap::default(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a plan, bumping its recency. Counts a hit or a miss.
    pub fn get(&mut self, key: &PlanKey) -> Option<S2BddResult> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.result.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a solved plan for the graph at registry index `owner`,
    /// evicting the least-recently-used entry if the cache is full.
    /// Re-inserting an existing key refreshes its recency (and owner).
    /// Returns what happened, including the tick age of any evicted entry.
    pub fn insert(&mut self, key: PlanKey, result: S2BddResult, owner: usize) -> Inserted {
        if self.capacity == 0 {
            return Inserted {
                stored: false,
                evicted_age: None,
            };
        }
        self.tick += 1;
        let mut evicted_age = None;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Unkeyed iteration is sound here: `last_used` ticks are unique
            // (stamped from a monotone counter), so the min is the same in
            // any iteration order — and eviction can only change wall-clock,
            // never a result (see the module header).
            // netrel-lint: allow(hash-iteration, reason = "min over unique monotone ticks is order-independent; eviction never changes an answer")
            let lru = self.map.iter().min_by_key(|(_, e)| e.last_used);
            if let Some((lru, age)) = lru.map(|(k, e)| (k.clone(), self.tick - e.last_used)) {
                self.map.remove(&lru);
                self.evictions += 1;
                evicted_age = Some(age);
            }
        }
        self.map.insert(
            key,
            Entry {
                result,
                last_used: self.tick,
                owner,
            },
        );
        Inserted {
            stored: true,
            evicted_age,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Live entries attributed to each of `num_owners` graphs (index =
    /// registry index; entries with an out-of-range owner are dropped).
    /// O(len) — this backs the service's `stats` op, not a hot path. The
    /// counts are computed from the live map, so they stay correct across
    /// [`PlanCache::clear`] and evictions (reset-safe occupancy, unlike the
    /// monotone hit/miss counters).
    pub fn entries_by_owner(&self, num_owners: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_owners];
        // netrel-lint: allow(hash-iteration, reason = "commutative count fold — the tally is identical in any iteration order")
        for entry in self.map.values() {
            if let Some(c) = counts.get_mut(entry.owner) {
                *c += 1;
            }
        }
        counts
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry attributed to the graph at registry index `owner`
    /// whose key embeds an edge with probability bits `prob_bits`; returns
    /// how many were dropped. This is the mutation layer's scoped
    /// invalidation: keys are full structural keys (edges + probability
    /// bits), so a stale entry can never alias a post-mutation lookup and
    /// dropping is memory hygiene, not a correctness requirement. Matching
    /// on the touched edge's old probability bits is a sound
    /// over-approximation of "covers the mutated edge" — parts renumber
    /// vertices densely, so endpoint ids cannot identify the edge, but any
    /// key without those probability bits provably does not contain it.
    pub fn invalidate_prob(&mut self, owner: usize, prob_bits: u64) -> usize {
        let before = self.map.len();
        // netrel-lint: allow(hash-iteration, reason = "retain with a per-entry predicate drops the same set in any iteration order")
        self.map.retain(|key, entry| {
            entry.owner != owner || key.edges.iter().all(|&(_, _, pb)| pb != prob_bits)
        });
        before - self.map.len()
    }

    /// Drop all entries (counters are preserved).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(tag: u64) -> (UncertainGraph, Vec<VertexId>) {
        // Distinct graphs per tag: a 2-path with a tag-dependent probability.
        let p = 0.25 + (tag as f64) / 1000.0;
        let g = UncertainGraph::new(3, [(0, 1, p), (1, 2, 0.5)]).unwrap();
        (g, vec![0, 2])
    }

    fn key(tag: u64, cfg: S2BddConfig) -> PlanKey {
        let (g, t) = part(tag);
        PlanKey::new(&g, &t, cfg)
    }

    fn result(x: f64) -> S2BddResult {
        S2BddResult {
            estimate: x,
            lower_bound: x,
            upper_bound: x,
            exact: true,
            samples_requested: 0,
            samples_used: (x * 1000.0) as usize,
            s_prime_final: 0,
            strata: 0,
            deleted_nodes: 0,
            variance_estimate: 0.0,
            peak_width: 0,
            peak_memory_bytes: 0,
            layers_completed: 0,
            layers_total: 0,
            early_exit: false,
            node_cap_hit: false,
            nodes_created: 0,
            trajectory: None,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = PlanCache::new(8);
        let k = key(1, S2BddConfig::default());
        assert!(c.get(&k).is_none());
        c.insert(k.clone(), result(0.5), 0);
        assert_eq!(c.get(&k).unwrap().estimate, 0.5);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        let cfg = S2BddConfig::default();
        let (k1, k2, k3) = (key(1, cfg), key(2, cfg), key(3, cfg));
        c.insert(k1.clone(), result(0.1), 0);
        c.insert(k2.clone(), result(0.2), 0);
        // Touch k1 so k2 becomes the LRU entry.
        assert!(c.get(&k1).is_some());
        c.insert(k3.clone(), result(0.3), 0);
        assert_eq!(c.len(), 2);
        assert!(c.get(&k2).is_none(), "k2 was LRU and must be evicted");
        assert!(c.get(&k1).is_some());
        assert!(c.get(&k3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn eviction_order_is_recency_not_insertion() {
        let mut c = PlanCache::new(3);
        let cfg = S2BddConfig::default();
        let keys: Vec<PlanKey> = (0..3).map(|i| key(i, cfg)).collect();
        for (i, k) in keys.iter().enumerate() {
            c.insert(k.clone(), result(i as f64 / 10.0), 0);
        }
        // Refresh insertion-oldest entries; the middle one becomes LRU.
        assert!(c.get(&keys[0]).is_some());
        assert!(c.get(&keys[2]).is_some());
        c.insert(key(9, cfg), result(0.9), 0);
        assert!(c.get(&keys[1]).is_none(), "recency order, not FIFO");
        assert!(c.get(&keys[0]).is_some());
    }

    #[test]
    fn config_change_never_aliases() {
        let base = S2BddConfig::default();
        let variants = [
            S2BddConfig {
                max_width: base.max_width + 1,
                ..base
            },
            S2BddConfig {
                samples: base.samples + 1,
                ..base
            },
            S2BddConfig {
                seed: base.seed ^ 1,
                ..base
            },
            S2BddConfig {
                estimator: netrel_s2bdd::EstimatorKind::HorvitzThompson,
                ..base
            },
            S2BddConfig {
                reduce_samples: !base.reduce_samples,
                ..base
            },
            S2BddConfig {
                node_cap: base.node_cap - 1,
                ..base
            },
            S2BddConfig {
                record_trajectory: !base.record_trajectory,
                ..base
            },
        ];
        let mut c = PlanCache::new(64);
        c.insert(key(1, base), result(0.5), 0);
        for v in variants {
            assert_ne!(key(1, base), key(1, v), "{v:?} must change the key");
            assert!(c.get(&key(1, v)).is_none(), "{v:?} aliased a cache entry");
        }
        // Same config, different part → different key too.
        assert!(c.get(&key(2, base)).is_none());
        // And the original still hits.
        assert!(c.get(&key(1, base)).is_some());
    }

    #[test]
    fn solver_family_is_part_of_the_key() {
        // A planner-routed flat-sampling run must never alias an S2BDD run
        // on the same part, even with matching samples/estimator/seed.
        let (g, t) = part(1);
        let cfg = S2BddConfig::default();
        let s2bdd_key = PlanKey::new(&g, &t, cfg);
        let sampling_key = PlanKey::for_solver(
            &g,
            &t,
            PartSolver::Sampling {
                samples: cfg.samples,
                estimator: cfg.estimator,
                seed: cfg.seed,
            },
        );
        assert_ne!(s2bdd_key, sampling_key);
        let mut c = PlanCache::new(8);
        c.insert(s2bdd_key, result(0.5), 0);
        assert!(c.get(&sampling_key).is_none());
    }

    #[test]
    fn bit_sampling_never_aliases_other_solver_families() {
        // The packed sampler draws a different world sequence than the flat
        // sampler at the same (samples, seed), so a BitSampling entry must
        // never serve — or be served by — any other family on the same part.
        let (g, t) = part(1);
        let cfg = S2BddConfig::default();
        let bit_key = PlanKey::for_solver(
            &g,
            &t,
            PartSolver::BitSampling {
                samples: cfg.samples,
                seed: cfg.seed,
            },
        );
        let flat_key = PlanKey::for_solver(
            &g,
            &t,
            PartSolver::Sampling {
                samples: cfg.samples,
                estimator: cfg.estimator,
                seed: cfg.seed,
            },
        );
        let enum_key = PlanKey::for_solver(&g, &t, PartSolver::Enumeration);
        let s2bdd_key = PlanKey::new(&g, &t, cfg);
        assert_ne!(bit_key, flat_key);
        assert_ne!(bit_key, enum_key);
        assert_ne!(bit_key, s2bdd_key);
        let mut c = PlanCache::new(8);
        c.insert(bit_key.clone(), result(0.5), 0);
        assert!(c.get(&flat_key).is_none(), "flat sampling aliased packed");
        assert!(c.get(&enum_key).is_none(), "enumeration aliased packed");
        assert!(c.get(&s2bdd_key).is_none(), "s2bdd aliased packed");
        assert!(c.get(&bit_key).is_some());
        // Different packed sample budgets and seeds are distinct entries.
        let other = PlanKey::for_solver(
            &g,
            &t,
            PartSolver::BitSampling {
                samples: cfg.samples + 64,
                seed: cfg.seed,
            },
        );
        let reseeded = PlanKey::for_solver(
            &g,
            &t,
            PartSolver::BitSampling {
                samples: cfg.samples,
                seed: cfg.seed ^ 1,
            },
        );
        assert_ne!(bit_key, other);
        assert_ne!(bit_key, reseeded);
    }

    #[test]
    fn semantics_computation_never_aliases_connectivity() {
        // The same subgraph + terminals + solver, asked as a d-hop part,
        // must never serve (or be served by) a cached connectivity part.
        let (g, t) = part(1);
        let cfg = S2BddConfig::default();
        let solver = PartSolver::S2Bdd(cfg);
        let connectivity = PlanKey::new(&g, &t, cfg);
        let as_part = PlanKey::for_part(
            &SemPart {
                graph: g.clone(),
                terminals: t.clone(),
                computation: PartComputation::Connectivity,
            },
            solver,
        );
        // for_part with Connectivity is the same subproblem → same key.
        assert_eq!(connectivity, as_part);
        let dhop = PlanKey::for_part(
            &SemPart {
                graph: g.clone(),
                terminals: t.clone(),
                computation: PartComputation::DHop { d: 2 },
            },
            solver,
        );
        assert_ne!(connectivity, dhop);
        let mut c = PlanCache::new(8);
        c.insert(connectivity.clone(), result(0.5), 0);
        assert!(c.get(&dhop).is_none(), "d-hop aliased a connectivity entry");
        assert!(c.get(&connectivity).is_some());
    }

    #[test]
    fn distinct_hop_bounds_are_distinct_keys() {
        let (g, t) = part(1);
        let solver = PartSolver::Sampling {
            samples: 1000,
            estimator: netrel_s2bdd::EstimatorKind::MonteCarlo,
            seed: 7,
        };
        let mk = |d| {
            PlanKey::for_part(
                &SemPart {
                    graph: g.clone(),
                    terminals: t.clone(),
                    computation: PartComputation::DHop { d },
                },
                solver,
            )
        };
        assert_ne!(mk(1), mk(2));
        let mut c = PlanCache::new(8);
        c.insert(mk(1), result(0.25), 0);
        assert!(c.get(&mk(2)).is_none(), "d=2 aliased a d=1 entry");
        assert!(c.get(&mk(1)).is_some());
    }

    #[test]
    fn distinct_terminal_sets_on_same_part_graph_are_distinct_keys() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 0, 0.5)]).unwrap();
        let solver = PartSolver::S2Bdd(S2BddConfig::default());
        let mk = |t: Vec<VertexId>| {
            PlanKey::for_part(
                &SemPart {
                    graph: g.clone(),
                    terminals: t,
                    computation: PartComputation::Connectivity,
                },
                solver,
            )
        };
        // k-terminal variants of the same subgraph never alias each other
        // or the two-terminal key.
        let two = mk(vec![0, 2]);
        let three = mk(vec![0, 1, 2]);
        let four = mk(vec![0, 1, 2, 3]);
        assert_ne!(two, three);
        assert_ne!(three, four);
        let mut c = PlanCache::new(8);
        c.insert(two.clone(), result(0.5), 0);
        assert!(c.get(&three).is_none());
        assert!(c.get(&four).is_none());
    }

    #[test]
    fn terminal_set_is_part_of_the_key() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap();
        let cfg = S2BddConfig::default();
        let a = PlanKey::new(&g, &[0, 3], cfg);
        let b = PlanKey::new(&g, &[0, 2], cfg);
        assert_ne!(a, b);
        // Terminal order is canonicalized.
        assert_eq!(a, PlanKey::new(&g, &[3, 0], cfg));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = PlanCache::new(0);
        let k = key(1, S2BddConfig::default());
        c.insert(k.clone(), result(0.5), 0);
        assert!(c.get(&k).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats().capacity, 0);
    }

    #[test]
    fn per_owner_occupancy_and_eviction_age() {
        let mut c = PlanCache::new(2);
        let cfg = S2BddConfig::default();
        c.insert(key(1, cfg), result(0.1), 0);
        c.insert(key(2, cfg), result(0.2), 1);
        assert_eq!(c.entries_by_owner(2), vec![1, 1]);
        // k1 is least recently used; the third insert evicts it and reports
        // a positive tick age.
        let ins = c.insert(key(3, cfg), result(0.3), 1);
        assert!(ins.stored);
        assert!(ins.evicted_age.is_some_and(|a| a > 0));
        assert_eq!(c.entries_by_owner(2), vec![0, 2]);
        // Occupancy is recomputed from the live map: reset-safe.
        c.clear();
        assert_eq!(c.entries_by_owner(2), vec![0, 0]);
        // Disabled cache stores nothing and says so.
        let mut off = PlanCache::new(0);
        let ins = off.insert(key(4, cfg), result(0.4), 0);
        assert!(!ins.stored);
        assert!(ins.evicted_age.is_none());
    }

    #[test]
    fn invalidate_prob_is_owner_and_probability_scoped() {
        let mut c = PlanCache::new(8);
        let cfg = S2BddConfig::default();
        // Tag 1 and tag 2 differ in one edge probability; both live for
        // owners 0 and 1.
        c.insert(key(1, cfg), result(0.1), 0);
        c.insert(key(2, cfg), result(0.2), 0);
        c.insert(key(3, cfg), result(0.3), 1);
        let touched = (0.25 + 1.0 / 1000.0f64).to_bits(); // tag 1's edge
        assert_eq!(c.invalidate_prob(0, touched), 1);
        assert!(c.get(&key(1, cfg)).is_none(), "touched entry must drop");
        assert!(c.get(&key(2, cfg)).is_some(), "untouched prob survives");
        assert!(c.get(&key(3, cfg)).is_some(), "other owner survives");
        // The shared 0.5 edge appears in every key: owner-scoped drop.
        assert_eq!(c.invalidate_prob(1, 0.5f64.to_bits()), 1);
        assert!(c.get(&key(2, cfg)).is_some(), "owner 0 untouched");
        assert!(c.get(&key(3, cfg)).is_none());
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = PlanCache::new(2);
        let cfg = S2BddConfig::default();
        let (k1, k2) = (key(1, cfg), key(2, cfg));
        c.insert(k1.clone(), result(0.1), 0);
        c.insert(k2.clone(), result(0.2), 0);
        c.insert(k1.clone(), result(0.15), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&k1).unwrap().estimate, 0.15);
        assert!(c.get(&k2).is_some());
    }
}
