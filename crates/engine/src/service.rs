//! Newline-delimited JSON protocol over the engine.
//!
//! One request object per line in, one response object per line out — the
//! transport-agnostic core of the `netrel-serve` binary (`netrel-bench`),
//! which pipes stdin/stdout through [`Service::handle_line`]. Keeping the
//! protocol here makes it unit-testable without spawning a process.
//!
//! ## Requests
//!
//! ```json
//! {"op":"register","name":"g","vertices":8,"edges":[[0,1,0.5],[1,2,0.9]]}
//! {"op":"query","graph":"g","terminals":[0,2],"samples":5000,"seed":7}
//! {"op":"batch","graph":"g","queries":[{"terminals":[0,2]},{"terminals":[1,2],"seed":9}]}
//! {"op":"query","graph":"g","terminals":[0,2],"budget":{"nodes":100000,"confidence":0.99}}
//! {"op":"query","graph":"g","terminals":[0,2],"semantics":"d-hop","d":3}
//! {"op":"mutate","graph":"g","mutations":[{"kind":"update_prob","edge":0,"p":0.4}]}
//! {"op":"whatif","graph":"g","mutations":[{"kind":"remove_edge","edge":1}],"terminals":[0,2]}
//! {"op":"maximize","graph":"g","s":0,"t":2,"k":1,"candidates":[{"kind":"add_edge","u":0,"v":2,"p":0.9}]}
//! {"op":"stats"}
//! ```
//!
//! Per-query solver knobs (all optional, defaulting to the paper's
//! configuration): `width`, `samples`, `seed`, `estimator` (`"mc"`/`"ht"`),
//! and `exact` (unbounded width, no sampling). In a `batch`, knobs given at
//! the top level act as defaults for every query; a knob set on the query
//! object itself always wins over the batch default.
//!
//! The optional `semantics` field selects what the query computes:
//! `"k-terminal"` (the default — existing clients are unaffected),
//! `"two-terminal"`, `"all-terminal"`, `"d-hop"` (requires the hop bound
//! `d` as a sibling field), or `"reach-set"` (expected reachable-set size
//! from one source vertex). `semantics`/`d` layer like the solver knobs:
//! batch level first, per-query override wins. `terminals` may be omitted
//! for `"all-terminal"`. Every answer echoes the semantics it computed.
//!
//! Passing `"plan": true` or a `"budget"` object routes the request through
//! the **adaptive planner** ([`Engine::run_planned_batch`]): `budget`
//! accepts `nodes`, `samples`, `time_ms`, and `confidence`
//! (`0.9`/`0.95`/`0.99`), each defaulting to [`PlanBudget::default`]
//! (`crate::PlanBudget`); planned answers additionally carry `ci`
//! (`{lower, upper, level}`) and `routes` (one of `"exact"`, `"bounded"`,
//! `"sampling"` per part). In a `batch`, one planned query plans the whole
//! batch, with the top-level budget as the default. The full protocol —
//! shapes, field tables, netcat/curl examples — is documented in
//! `docs/protocol.md`.
//!
//! ## Mutations
//!
//! `mutate` commits an ordered array of mutations to a registered graph
//! (each entry is `{"kind":"update_prob","edge":e,"p":p}`,
//! `{"kind":"add_edge","u":u,"v":v,"p":p}`, or
//! `{"kind":"remove_edge","edge":e}`; edge ids are interpreted against the
//! state each mutation applies to). The response carries one result slot
//! per mutation in order — a rejected mutation changes nothing and does
//! not stop later ones. `whatif` answers one planned query against a
//! hypothetical mutation set without committing anything, and `maximize`
//! runs the greedy `s`–`t` reliability-maximization loop over a candidate
//! pool. Both accept the usual `budget` object. See `docs/protocol.md`.
//!
//! ## Observability
//!
//! `{"op":"metrics"}` returns the engine's metric catalogue twice: as
//! `prometheus` (Prometheus text exposition, ready to serve at a scrape
//! endpoint) and as `metrics` (the same snapshot as structured JSON).
//! Passing `"trace": true` on a `query` (or on a `batch` or one of its
//! queries) opts that query into span tracing: the answer carries a
//! `trace` object with the full span tree of its execution. Tracing
//! implies the planned path. `stats` reports per-graph registration and
//! cache telemetry under `per_graph`. See `docs/observability.md`.
//!
//! ## Responses
//!
//! Every response carries `"ok"`; failures carry `"error"` instead of a
//! payload. A `batch` response holds one `{ok, answer|error}` object per
//! query in request order, so one bad query cannot poison a batch.

use crate::{
    Engine, EngineError, IndexPatch, Mutation, MutationOutcome, PlanBudget, PlannedQuery, Recorder,
    ReliabilityQuery,
};
use netrel_core::{ProConfig, SemanticsSpec};
use netrel_numeric::ConfidenceLevel;
use netrel_s2bdd::{EstimatorKind, S2BddConfig};
use netrel_ugraph::UncertainGraph;
use serde::{Serialize, Value};
use std::time::Instant;

/// Stateful NDJSON request handler wrapping an [`Engine`].
pub struct Service {
    engine: Engine,
}

impl Default for Service {
    fn default() -> Self {
        // The service enables metrics by default: a server that cannot be
        // observed is the wrong default, and recording is near-free.
        Service::new(Engine::with_recorder(
            crate::EngineConfig::default(),
            Recorder::enabled(),
        ))
    }
}

impl Service {
    /// Wrap an engine (possibly with pre-registered graphs).
    pub fn new(engine: Engine) -> Self {
        Service { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Handle one request line, returning one response line (no trailing
    /// newline). Never panics on malformed input — parse and protocol
    /// errors come back as `{"ok":false,"error":...}` responses.
    pub fn handle_line(&mut self, line: &str) -> String {
        let metrics = self.engine.recorder().metrics().cloned();
        let t0 = metrics.as_ref().map(|_| Instant::now());
        let response = match serde_json::from_str::<Value>(line) {
            Ok(request) => self.dispatch(&request).unwrap_or_else(err_response),
            Err(e) => err_response(format!("invalid JSON: {e}")),
        };
        if let Some(m) = &metrics {
            if let Some(t0) = t0 {
                m.request_seconds.observe_duration(t0.elapsed());
            }
            if response.get("ok") == Some(&Value::Bool(false)) {
                m.request_errors.inc();
            }
        }
        serde_json::to_string(&response).unwrap_or_else(|_| {
            r#"{"ok":false,"error":"internal: response rendering failed"}"#.to_string()
        })
    }

    fn dispatch(&mut self, request: &Value) -> Result<Value, String> {
        let op = str_field(request, "op")?;
        if let Some(m) = self.engine.recorder().metrics() {
            match op {
                "register" => m.requests_register.inc(),
                "query" => m.requests_query.inc(),
                "batch" => m.requests_batch.inc(),
                "stats" => m.requests_stats.inc(),
                "metrics" => m.requests_metrics.inc(),
                "mutate" => m.requests_mutate.inc(),
                "whatif" => m.requests_whatif.inc(),
                "maximize" => m.requests_maximize.inc(),
                _ => {}
            }
        }
        match op {
            "register" => self.op_register(request),
            "query" => self.op_query(request),
            "batch" => self.op_batch(request),
            "stats" => Ok(self.op_stats()),
            "metrics" => self.op_metrics(),
            "mutate" => self.op_mutate(request),
            "whatif" => self.op_whatif(request),
            "maximize" => self.op_maximize(request),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    fn op_register(&mut self, request: &Value) -> Result<Value, String> {
        let name = str_field(request, "name")?;
        let vertices = u64_field(request, "vertices")? as usize;
        let edges = match request.get("edges") {
            Some(Value::Seq(items)) => items
                .iter()
                .map(edge_triple)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("`edges` must be an array of [u, v, p] triples".into()),
            None => return Err("missing field `edges`".into()),
        };
        let graph = UncertainGraph::new(vertices, edges).map_err(|e| e.to_string())?;
        let (nv, ne) = (graph.num_vertices(), graph.num_edges());
        self.engine.register(name, graph);
        Ok(Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("register".into())),
            ("graph".into(), Value::Str(name.into())),
            ("vertices".into(), Value::U64(nv as u64)),
            ("edges".into(), Value::U64(ne as u64)),
        ]))
    }

    fn op_query(&mut self, request: &Value) -> Result<Value, String> {
        let id = self.graph_field(request)?;
        let query = parse_query(request, request)?;
        // Tracing rides on the planned path (the classic path has no
        // per-answer trace slot), so `trace: true` implies planning.
        let answer = if wants_plan(request) || wants_trace(request) {
            let mut budget = PlanBudget::default();
            apply_budget(request, &mut budget)?;
            let mut planned = PlannedQuery::with_semantics(
                query.semantics,
                query.terminals,
                query.config,
                budget,
            );
            if wants_trace(request) {
                planned = planned.with_trace();
            }
            self.engine
                .run_planned(id, &planned)
                .map_err(|e: EngineError| e.to_string())?
                .to_value()
        } else {
            self.engine
                .run(id, &query)
                .map_err(|e: EngineError| e.to_string())?
                .to_value()
        };
        Ok(Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("query".into())),
            ("answer".into(), answer),
        ]))
    }

    fn op_batch(&mut self, request: &Value) -> Result<Value, String> {
        let id = self.graph_field(request)?;
        let items = match request.get("queries") {
            Some(Value::Seq(items)) => items,
            Some(_) => return Err("`queries` must be an array".into()),
            None => return Err("missing field `queries`".into()),
        };
        let queries = items
            .iter()
            .map(|item| parse_query(item, request))
            .collect::<Result<Vec<_>, _>>()?;
        // One planned query (or a top-level `plan`/`budget`/`trace`) plans
        // the whole batch: budgets layer like solver knobs, batch level
        // first. Tracing is per query: only opted-in slots carry a trace.
        let planned_batch = wants_plan(request)
            || wants_trace(request)
            || items.iter().any(|i| wants_plan(i) || wants_trace(i));
        let rendered: Vec<Value> = if planned_batch {
            let planned = items
                .iter()
                .zip(queries)
                .map(|(item, q)| {
                    let mut budget = PlanBudget::default();
                    apply_budget(request, &mut budget)?;
                    apply_budget(item, &mut budget)?;
                    let mut planned =
                        PlannedQuery::with_semantics(q.semantics, q.terminals, q.config, budget);
                    if wants_trace(request) || wants_trace(item) {
                        planned = planned.with_trace();
                    }
                    Ok(planned)
                })
                .collect::<Result<Vec<_>, String>>()?;
            self.engine
                .run_planned_batch(id, &planned)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(answer_slot)
                .collect()
        } else {
            self.engine
                .run_batch(id, &queries)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(answer_slot)
                .collect()
        };
        Ok(Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("batch".into())),
            ("answers".into(), Value::Seq(rendered)),
        ]))
    }

    fn op_stats(&self) -> Value {
        let graphs: Vec<Value> = self
            .engine
            .graph_names()
            .map(|n| Value::Str(n.into()))
            .collect();
        let per_graph: Vec<Value> = self
            .engine
            .graph_stats()
            .iter()
            .map(Serialize::to_value)
            .collect();
        Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("stats".into())),
            ("graphs".into(), Value::Seq(graphs)),
            ("cache".into(), self.engine.cache_stats().to_value()),
            ("per_graph".into(), Value::Seq(per_graph)),
        ])
    }

    fn op_metrics(&self) -> Result<Value, String> {
        let snapshot = self
            .engine
            .metrics_snapshot()
            .ok_or("metrics are disabled on this engine (no recorder installed)")?;
        Ok(Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("metrics".into())),
            ("prometheus".into(), Value::Str(snapshot.to_prometheus())),
            ("metrics".into(), snapshot.to_value()),
        ]))
    }

    fn op_mutate(&mut self, request: &Value) -> Result<Value, String> {
        let id = self.graph_field(request)?;
        let mutations = mutations_field(request, "mutations")?;
        // Batch-style error isolation: mutations apply in order, each
        // result slot carries its own `ok`, and a rejected mutation
        // changes nothing (so later ids stay well-defined).
        let results: Vec<Value> = mutations
            .into_iter()
            .map(|m| match self.engine.apply_mutation(id, m) {
                Ok(outcome) => outcome_value(&outcome),
                Err(e) => err_response(e.to_string()),
            })
            .collect();
        Ok(Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("mutate".into())),
            ("results".into(), Value::Seq(results)),
        ]))
    }

    fn op_whatif(&mut self, request: &Value) -> Result<Value, String> {
        let id = self.graph_field(request)?;
        let mutations = mutations_field(request, "mutations")?;
        let query = parse_query(request, request)?;
        // What-if evaluation always runs the planned pipeline; `budget`
        // and `trace` work exactly as on a planned `query`.
        let mut budget = PlanBudget::default();
        apply_budget(request, &mut budget)?;
        let mut planned =
            PlannedQuery::with_semantics(query.semantics, query.terminals, query.config, budget);
        if wants_trace(request) {
            planned = planned.with_trace();
        }
        let answer = self
            .engine
            .evaluate_with(id, &mutations, &planned)
            .map_err(|e| e.to_string())?;
        Ok(Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("whatif".into())),
            ("answer".into(), answer.to_value()),
        ]))
    }

    fn op_maximize(&mut self, request: &Value) -> Result<Value, String> {
        let id = self.graph_field(request)?;
        let s = u64_field(request, "s")? as usize;
        let t = u64_field(request, "t")? as usize;
        let k = u64_field(request, "k")? as usize;
        let candidates = mutations_field(request, "candidates")?;
        let mut budget = PlanBudget::default();
        apply_budget(request, &mut budget)?;
        let result = self
            .engine
            .maximize_reliability(id, s, t, k, &candidates, budget)
            .map_err(|e| e.to_string())?;
        let steps: Vec<Value> = result
            .steps
            .iter()
            .map(|step| {
                Value::Map(vec![
                    ("candidate".into(), Value::U64(step.candidate as u64)),
                    ("mutation".into(), mutation_value(&step.mutation)),
                    ("reliability".into(), Value::F64(step.reliability)),
                    ("exact".into(), Value::Bool(step.exact)),
                ])
            })
            .collect();
        Ok(Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("maximize".into())),
            ("baseline".into(), Value::F64(result.baseline)),
            ("final".into(), Value::F64(result.final_reliability())),
            ("steps".into(), Value::Seq(steps)),
        ]))
    }

    fn graph_field(&self, request: &Value) -> Result<crate::GraphId, String> {
        let name = str_field(request, "graph")?;
        self.engine
            .graph_id(name)
            .ok_or_else(|| format!("unknown graph `{name}`"))
    }
}

fn err_response(message: impl Into<String>) -> Value {
    Value::Map(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(message.into())),
    ])
}

fn answer_slot<T: Serialize>(result: Result<T, EngineError>) -> Value {
    match result {
        Ok(answer) => Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("answer".into(), answer.to_value()),
        ]),
        Err(e) => err_response(e.to_string()),
    }
}

/// Whether one request (or query object) opts into the adaptive planner.
fn wants_plan(v: &Value) -> bool {
    matches!(v.get("plan"), Some(Value::Bool(true))) || v.get("budget").is_some()
}

/// Whether one request (or query object) opts into span tracing.
fn wants_trace(v: &Value) -> bool {
    matches!(v.get("trace"), Some(Value::Bool(true)))
}

/// Layer one request object's `budget` fields onto `budget` (absent fields
/// keep their current value, mirroring the solver-knob layering).
fn apply_budget(v: &Value, budget: &mut PlanBudget) -> Result<(), String> {
    let obj = match v.get("budget") {
        Some(obj @ Value::Map(_)) => obj,
        Some(_) => return Err("field `budget` must be an object".into()),
        None => return Ok(()),
    };
    if let Some(n) = opt_u64(obj, "nodes")? {
        budget.node_budget = n as usize;
    }
    if let Some(s) = opt_u64(obj, "samples")? {
        budget.sample_budget = s as usize;
    }
    if let Some(ms) = opt_u64(obj, "time_ms")? {
        budget.time_hint_ms = Some(ms);
    }
    match obj.get("confidence") {
        Some(Value::F64(c)) => {
            budget.confidence = if (*c - 0.90).abs() < 1e-9 {
                ConfidenceLevel::P90
            } else if (*c - 0.95).abs() < 1e-9 {
                ConfidenceLevel::P95
            } else if (*c - 0.99).abs() < 1e-9 {
                ConfidenceLevel::P99
            } else {
                return Err(format!(
                    "unsupported confidence {c} (use 0.9, 0.95, or 0.99)"
                ));
            };
        }
        Some(_) => return Err("field `confidence` must be a number".into()),
        None => {}
    }
    Ok(())
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s),
        Some(_) => Err(format!("field `{key}` must be a string")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::U64(n)) => Ok(*n),
        Some(Value::I64(n)) if *n >= 0 => Ok(*n as u64),
        Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Optional non-negative integer field of one request object.
fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        Some(Value::U64(n)) => Ok(Some(*n)),
        Some(Value::I64(n)) if *n >= 0 => Ok(Some(*n as u64)),
        Some(Value::Null) | None => Ok(None),
        Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
    }
}

/// Apply one layer of solver knobs (`exact`, `width`, `samples`, `seed`,
/// `estimator`) from a request object onto `s2bdd`. `exact` is expanded
/// first so explicit knobs in the same layer refine it.
fn apply_knobs(v: &Value, s2bdd: &mut S2BddConfig) -> Result<(), String> {
    match v.get("exact") {
        Some(Value::Bool(true)) => {
            s2bdd.max_width = usize::MAX;
            s2bdd.samples = 0;
        }
        Some(Value::Bool(false)) => {
            let d = S2BddConfig::default();
            s2bdd.max_width = d.max_width;
            s2bdd.samples = d.samples;
        }
        Some(_) => return Err("field `exact` must be a boolean".into()),
        None => {}
    }
    if let Some(w) = opt_u64(v, "width")? {
        s2bdd.max_width = w as usize;
    }
    if let Some(s) = opt_u64(v, "samples")? {
        s2bdd.samples = s as usize;
    }
    if let Some(seed) = opt_u64(v, "seed")? {
        s2bdd.seed = seed;
    }
    match v.get("estimator") {
        Some(Value::Str(kind)) => {
            s2bdd.estimator = match kind.as_str() {
                "mc" | "monte-carlo" => EstimatorKind::MonteCarlo,
                "ht" | "horvitz-thompson" => EstimatorKind::HorvitzThompson,
                other => {
                    return Err(format!(
                        "unknown estimator `{other}` (use \"mc\" or \"ht\")"
                    ))
                }
            };
        }
        Some(_) => return Err("field `estimator` must be a string".into()),
        None => {}
    }
    Ok(())
}

/// A required array-of-mutation-objects field (`mutations`, `candidates`).
fn mutations_field(v: &Value, key: &str) -> Result<Vec<Mutation>, String> {
    match v.get(key) {
        Some(Value::Seq(items)) => items.iter().map(parse_mutation).collect(),
        Some(_) => Err(format!("`{key}` must be an array of mutation objects")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Parse one mutation object (see the module docs for the three shapes).
fn parse_mutation(item: &Value) -> Result<Mutation, String> {
    match str_field(item, "kind")? {
        "update_prob" => Ok(Mutation::UpdateProb {
            edge: u64_field(item, "edge")? as usize,
            p: f64_field(item, "p")?,
        }),
        "add_edge" => Ok(Mutation::AddEdge {
            u: u64_field(item, "u")? as usize,
            v: u64_field(item, "v")? as usize,
            p: f64_field(item, "p")?,
        }),
        "remove_edge" => Ok(Mutation::RemoveEdge {
            edge: u64_field(item, "edge")? as usize,
        }),
        other => Err(format!(
            "unknown mutation kind `{other}` (use \"update_prob\", \"add_edge\", or \
             \"remove_edge\")"
        )),
    }
}

/// Render one mutation back to its request shape (used by `maximize`).
fn mutation_value(m: &Mutation) -> Value {
    match *m {
        Mutation::UpdateProb { edge, p } => Value::Map(vec![
            ("kind".into(), Value::Str("update_prob".into())),
            ("edge".into(), Value::U64(edge as u64)),
            ("p".into(), Value::F64(p)),
        ]),
        Mutation::AddEdge { u, v, p } => Value::Map(vec![
            ("kind".into(), Value::Str("add_edge".into())),
            ("u".into(), Value::U64(u as u64)),
            ("v".into(), Value::U64(v as u64)),
            ("p".into(), Value::F64(p)),
        ]),
        Mutation::RemoveEdge { edge } => Value::Map(vec![
            ("kind".into(), Value::Str("remove_edge".into())),
            ("edge".into(), Value::U64(edge as u64)),
        ]),
    }
}

/// Render one committed mutation's outcome as a `mutate` result slot.
fn outcome_value(o: &MutationOutcome) -> Value {
    Value::Map(vec![
        ("ok".into(), Value::Bool(true)),
        ("edge".into(), Value::U64(o.edge as u64)),
        (
            "index".into(),
            Value::Str(
                match o.patch {
                    IndexPatch::Patched => "patched",
                    IndexPatch::Rebuilt => "rebuilt",
                }
                .into(),
            ),
        ),
        (
            "invalidated_plans".into(),
            Value::U64(o.invalidated_plans as u64),
        ),
        (
            "invalidated_worlds".into(),
            Value::U64(o.invalidated_worlds as u64),
        ),
    ])
}

/// Required numeric field (integers widen to `f64`).
fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::F64(x)) => Ok(*x),
        Some(Value::U64(n)) => Ok(*n as f64),
        Some(Value::I64(n)) => Ok(*n as f64),
        Some(_) => Err(format!("field `{key}` must be a number")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn edge_triple(item: &Value) -> Result<(usize, usize, f64), String> {
    let bad = || "`edges` entries must be [u, v, p] triples".to_string();
    let Value::Seq(t) = item else {
        return Err(bad());
    };
    match &t[..] {
        [u, v, p] => {
            let vertex = |x: &Value| match x {
                Value::U64(n) => Ok(*n as usize),
                Value::I64(n) if *n >= 0 => Ok(*n as usize),
                _ => Err(bad()),
            };
            let p = match p {
                Value::F64(p) => *p,
                Value::U64(n) => *n as f64,
                Value::I64(n) => *n as f64,
                _ => return Err(bad()),
            };
            Ok((vertex(u)?, vertex(v)?, p))
        }
        _ => Err(bad()),
    }
}

/// Resolve the layered `semantics`/`d` fields of one query object (batch
/// defaults first, per-query override wins — same layering as the solver
/// knobs). Absent everywhere, the semantics defaults to k-terminal, so
/// pre-semantics clients see identical behavior.
fn parse_semantics(item: &Value, defaults: &Value) -> Result<SemanticsSpec, String> {
    let mut name: Option<&str> = None;
    let mut d: Option<u64> = None;
    for layer in [defaults, item] {
        match layer.get("semantics") {
            Some(Value::Str(s)) => name = Some(s),
            Some(_) => return Err("field `semantics` must be a string".into()),
            None => {}
        }
        if let Some(v) = opt_u64(layer, "d")? {
            d = Some(v);
        }
    }
    match name {
        None | Some("k-terminal") => Ok(SemanticsSpec::KTerminal),
        Some("two-terminal") => Ok(SemanticsSpec::TwoTerminal),
        Some("all-terminal") => Ok(SemanticsSpec::AllTerminal),
        Some("reach-set") => Ok(SemanticsSpec::ReachSet),
        Some("d-hop") => {
            let d = d.ok_or("semantics `d-hop` needs a hop bound `d`")?;
            let d = u32::try_from(d).map_err(|_| "`d` must fit in 32 bits".to_string())?;
            Ok(SemanticsSpec::DHop { d })
        }
        Some(other) => Err(format!(
            "unknown semantics `{other}` (use \"two-terminal\", \"k-terminal\", \
             \"all-terminal\", \"d-hop\", or \"reach-set\")"
        )),
    }
}

/// Parse one query object; `defaults` (the enclosing request, for `batch`)
/// supplies fallback solver knobs and semantics.
fn parse_query(item: &Value, defaults: &Value) -> Result<ReliabilityQuery, String> {
    let semantics = parse_semantics(item, defaults)?;
    let terminals = match item.get("terminals") {
        Some(Value::Seq(ts)) => ts
            .iter()
            .map(|t| match t {
                Value::U64(n) => Ok(*n as usize),
                Value::I64(n) if *n >= 0 => Ok(*n as usize),
                _ => Err("`terminals` must be non-negative integers".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err("`terminals` must be an array".into()),
        // All-terminal ignores the terminal list, so it may be omitted.
        None if matches!(semantics, SemanticsSpec::AllTerminal) => Vec::new(),
        None => return Err("missing field `terminals`".into()),
    };

    // Layered knob resolution: the batch-level defaults apply first, then
    // the per-query object — so an explicit per-query setting always beats
    // a batch default (including `exact`, which expands to width/samples
    // before that same layer's explicit width/samples are applied).
    let mut s2bdd = S2BddConfig::default();
    for layer in [defaults, item] {
        apply_knobs(layer, &mut s2bdd)?;
    }

    Ok(ReliabilityQuery::with_semantics(
        semantics,
        terminals,
        ProConfig {
            s2bdd,
            ..Default::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_with_graph() -> Service {
        let mut s = Service::default();
        let response = s.handle_line(
            r#"{"op":"register","name":"g","vertices":4,
                "edges":[[0,1,0.9],[1,2,0.8],[2,3,0.9],[3,0,0.7]]}"#,
        );
        assert!(response.contains(r#""ok":true"#), "{response}");
        s
    }

    fn parse(response: &str) -> Value {
        serde_json::from_str(response).expect("response is valid JSON")
    }

    #[test]
    fn register_then_query() {
        let mut s = service_with_graph();
        let response =
            s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"exact":true}"#);
        let v = parse(&response);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let answer = v.get("answer").expect("answer present");
        assert_eq!(answer.get("exact"), Some(&Value::Bool(true)));
        let estimate = match answer.get("estimate") {
            Some(Value::F64(x)) => *x,
            other => panic!("estimate missing: {other:?}"),
        };
        assert!((0.0..=1.0).contains(&estimate));
    }

    #[test]
    fn batch_preserves_order_and_isolates_errors() {
        let mut s = service_with_graph();
        let response = s.handle_line(
            r#"{"op":"batch","graph":"g","samples":100,"queries":
                [{"terminals":[0,2]},{"terminals":[0,99]},{"terminals":[1,3]}]}"#,
        );
        let v = parse(&response);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let answers = match v.get("answers") {
            Some(Value::Seq(a)) => a,
            other => panic!("answers missing: {other:?}"),
        };
        assert_eq!(answers.len(), 3);
        assert_eq!(answers[0].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(answers[1].get("ok"), Some(&Value::Bool(false)));
        assert_eq!(answers[2].get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn stats_reports_cache_counters() {
        let mut s = service_with_graph();
        s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"samples":50}"#);
        s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"samples":50}"#);
        let v = parse(&s.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let cache = v.get("cache").expect("cache stats present");
        assert!(matches!(cache.get("hits"), Some(Value::U64(h)) if *h >= 1));
        assert_eq!(
            v.get("graphs"),
            Some(&Value::Seq(vec![Value::Str("g".into())]))
        );
    }

    #[test]
    fn malformed_lines_report_errors_not_panics() {
        let mut s = service_with_graph();
        for bad in [
            "not json",
            "{}",
            r#"{"op":"nope"}"#,
            r#"{"op":"query","graph":"missing","terminals":[0,1]}"#,
            r#"{"op":"query","graph":"g"}"#,
            r#"{"op":"query","graph":"g","terminals":"x"}"#,
            r#"{"op":"register","name":"h","vertices":2,"edges":[[0,1,7.5]]}"#,
            r#"{"op":"query","graph":"g","terminals":[0,1],"estimator":"bogus"}"#,
        ] {
            let v = parse(&s.handle_line(bad));
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "line: {bad}");
            assert!(matches!(v.get("error"), Some(Value::Str(_))));
        }
    }

    #[test]
    fn per_query_exact_beats_batch_width_default() {
        let mut s = service_with_graph();
        // Three terminals: the transform rules cannot collapse the cycle to
        // a single edge, so the width-1 default genuinely approximates.
        let response = s.handle_line(
            r#"{"op":"batch","graph":"g","width":1,"samples":50,"queries":
                [{"terminals":[0,1,2],"exact":true},{"terminals":[0,1,2]}]}"#,
        );
        let v = parse(&response);
        let answers = match v.get("answers") {
            Some(Value::Seq(a)) => a,
            other => panic!("answers missing: {other:?}"),
        };
        let exact = |a: &Value| a.get("answer").and_then(|ans| ans.get("exact")).cloned();
        // The first query explicitly asked for an exact answer; the batch
        // width default must not demote it to an approximation.
        assert_eq!(exact(&answers[0]), Some(Value::Bool(true)));
        // The second inherits the width-1 default and stays approximate.
        assert_eq!(exact(&answers[1]), Some(Value::Bool(false)));
    }

    #[test]
    fn planned_query_carries_ci_and_routes() {
        let mut s = service_with_graph();
        let response = s.handle_line(
            r#"{"op":"query","graph":"g","terminals":[0,2],
                "budget":{"nodes":100000,"confidence":0.99}}"#,
        );
        let v = parse(&response);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{response}");
        let answer = v.get("answer").expect("answer present");
        // Small sparse graph: planner takes the exact route everywhere.
        assert_eq!(answer.get("exact"), Some(&Value::Bool(true)));
        let ci = answer.get("ci").expect("planned answers carry a ci");
        let f = |k: &str| match ci.get(k) {
            Some(Value::F64(x)) => *x,
            other => panic!("ci.{k} missing: {other:?}"),
        };
        assert!(f("lower") <= f("upper"));
        assert_eq!(ci.get("level"), Some(&Value::F64(0.99)));
        match answer.get("routes") {
            Some(Value::Seq(routes)) => {
                assert!(routes.iter().all(|r| r == &Value::Str("exact".into())))
            }
            other => panic!("routes missing: {other:?}"),
        }
        // Classic queries stay CI-free.
        let classic = parse(&s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2]}"#));
        assert!(classic.get("answer").unwrap().get("ci").is_none());
    }

    #[test]
    fn plan_flag_alone_enables_the_planner_for_a_batch() {
        let mut s = service_with_graph();
        let response = s.handle_line(
            r#"{"op":"batch","graph":"g","plan":true,"queries":
                [{"terminals":[0,2]},{"terminals":[1,3],"budget":{"confidence":0.9}}]}"#,
        );
        let v = parse(&response);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{response}");
        let answers = match v.get("answers") {
            Some(Value::Seq(a)) => a,
            other => panic!("answers missing: {other:?}"),
        };
        let level = |a: &Value| {
            a.get("answer")
                .and_then(|ans| ans.get("ci"))
                .and_then(|ci| ci.get("level"))
                .cloned()
        };
        // Default level for the first, the per-query override for the second.
        assert_eq!(level(&answers[0]), Some(Value::F64(0.95)));
        assert_eq!(level(&answers[1]), Some(Value::F64(0.9)));
    }

    #[test]
    fn malformed_budget_is_an_error_not_a_panic() {
        let mut s = service_with_graph();
        for bad in [
            r#"{"op":"query","graph":"g","terminals":[0,2],"budget":7}"#,
            r#"{"op":"query","graph":"g","terminals":[0,2],"budget":{"confidence":0.5}}"#,
            r#"{"op":"query","graph":"g","terminals":[0,2],"budget":{"nodes":"many"}}"#,
        ] {
            let v = parse(&s.handle_line(bad));
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "line: {bad}");
        }
    }

    #[test]
    fn default_semantics_is_k_terminal_and_echoed() {
        let mut s = service_with_graph();
        let v = parse(&s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2]}"#));
        let kind = v
            .get("answer")
            .and_then(|a| a.get("semantics"))
            .and_then(|sem| sem.get("kind"))
            .cloned();
        assert_eq!(kind, Some(Value::Str("k-terminal".into())));
    }

    #[test]
    fn dhop_query_answers_the_hop_bounded_reliability() {
        let mut s = service_with_graph();
        // 4-cycle 0.9/0.8/0.9/0.7, terminals {0, 2}, d = 2: both two-hop
        // routes count, R = 1 − (1 − 0.9·0.8)(1 − 0.9·0.7).
        let v = parse(&s.handle_line(
            r#"{"op":"query","graph":"g","terminals":[0,2],"semantics":"d-hop","d":2}"#,
        ));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        let answer = v.get("answer").expect("answer present");
        let estimate = match answer.get("estimate") {
            Some(Value::F64(x)) => *x,
            other => panic!("estimate missing: {other:?}"),
        };
        let truth = 1.0 - (1.0 - 0.9 * 0.8) * (1.0 - 0.9 * 0.7);
        assert!((estimate - truth).abs() < 1e-9, "{estimate} vs {truth}");
        assert_eq!(answer.get("exact"), Some(&Value::Bool(true)));
        let sem = answer.get("semantics").expect("semantics echoed");
        assert_eq!(sem.get("kind"), Some(&Value::Str("d-hop".into())));
        assert_eq!(sem.get("d"), Some(&Value::U64(2)));
    }

    #[test]
    fn all_terminal_queries_may_omit_terminals() {
        let mut s = service_with_graph();
        let v = parse(
            &s.handle_line(r#"{"op":"query","graph":"g","semantics":"all-terminal","exact":true}"#),
        );
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        let answer = v.get("answer").expect("answer present");
        assert_eq!(answer.get("exact"), Some(&Value::Bool(true)));
    }

    #[test]
    fn batch_semantics_default_with_per_query_override() {
        let mut s = service_with_graph();
        let response = s.handle_line(
            r#"{"op":"batch","graph":"g","semantics":"d-hop","d":2,"queries":
                [{"terminals":[0,2]},{"terminals":[0,2],"semantics":"k-terminal"}]}"#,
        );
        let v = parse(&response);
        let answers = match v.get("answers") {
            Some(Value::Seq(a)) => a,
            other => panic!("answers missing: {other:?}"),
        };
        let kind = |a: &Value| {
            a.get("answer")
                .and_then(|ans| ans.get("semantics"))
                .and_then(|sem| sem.get("kind"))
                .cloned()
        };
        assert_eq!(kind(&answers[0]), Some(Value::Str("d-hop".into())));
        assert_eq!(kind(&answers[1]), Some(Value::Str("k-terminal".into())));
    }

    #[test]
    fn bad_semantics_requests_are_errors_not_panics() {
        let mut s = service_with_graph();
        for bad in [
            r#"{"op":"query","graph":"g","terminals":[0,2],"semantics":"bogus"}"#,
            r#"{"op":"query","graph":"g","terminals":[0,2],"semantics":"d-hop"}"#,
            r#"{"op":"query","graph":"g","terminals":[0,2],"semantics":7}"#,
            r#"{"op":"query","graph":"g","terminals":[0,1,2],"semantics":"two-terminal"}"#,
            r#"{"op":"query","graph":"g","terminals":[0,1],"semantics":"reach-set"}"#,
        ] {
            let v = parse(&s.handle_line(bad));
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "line: {bad}");
            assert!(matches!(v.get("error"), Some(Value::Str(_))));
        }
    }

    #[test]
    fn metrics_op_exposes_routes_cache_and_latency_families() {
        let mut s = service_with_graph();
        s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"plan":true}"#);
        s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"plan":true}"#);
        let v = parse(&s.handle_line(r#"{"op":"metrics"}"#));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        let prom = match v.get("prometheus") {
            Some(Value::Str(p)) => p,
            other => panic!("prometheus text missing: {other:?}"),
        };
        for family in [
            "netrel_queries_total{path=\"planned\"}",
            "netrel_planner_route_total{route=\"exact\"}",
            "netrel_cache_hits_total",
            "netrel_cache_misses_total",
            "netrel_part_solve_seconds_bucket",
            "netrel_request_seconds_bucket",
            "netrel_index_build_seconds_bucket",
            "netrel_requests_total{op=\"metrics\"}",
        ] {
            assert!(prom.contains(family), "missing `{family}` in:\n{prom}");
        }
        // The JSON twin carries the same counters, structured.
        let m = v.get("metrics").expect("json snapshot present");
        assert_eq!(m.get("queries_planned"), Some(&Value::U64(2)));
        let routes = m.get("routes").expect("route counts present");
        assert!(matches!(routes.get("exact"), Some(Value::U64(n)) if *n >= 1));

        // An engine without a recorder reports metrics as unavailable.
        let mut bare = Service::new(Engine::new(crate::EngineConfig::default()));
        let v = parse(&bare.handle_line(r#"{"op":"metrics"}"#));
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn trace_flag_returns_a_span_tree_and_implies_planning() {
        let mut s = service_with_graph();
        let v =
            parse(&s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"trace":true}"#));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        let answer = v.get("answer").expect("answer present");
        // `trace: true` alone routes through the planner.
        assert!(answer.get("routes").is_some());
        let spans = match answer.get("trace").and_then(|t| t.get("spans")) {
            Some(Value::Seq(spans)) => spans,
            other => panic!("trace spans missing: {other:?}"),
        };
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|s| match s.get("name") {
                Some(Value::Str(n)) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        for expected in ["query", "plan.k-terminal", "cache.lookup", "combine"] {
            assert!(
                names.contains(&expected),
                "missing `{expected}` in {names:?}"
            );
        }
        // Untraced queries stay trace-free on the wire.
        let v =
            parse(&s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"plan":true}"#));
        let answer = v.get("answer").expect("answer present");
        assert_eq!(answer.get("trace"), Some(&Value::Null));
    }

    #[test]
    fn stats_reports_reset_safe_per_graph_occupancy() {
        let mut s = service_with_graph();
        s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"samples":50}"#);
        let v = parse(&s.handle_line(r#"{"op":"stats"}"#));
        let per_graph = match v.get("per_graph") {
            Some(Value::Seq(g)) => g,
            other => panic!("per_graph missing: {other:?}"),
        };
        assert_eq!(per_graph.len(), 1);
        let g = &per_graph[0];
        assert_eq!(g.get("name"), Some(&Value::Str("g".into())));
        assert_eq!(g.get("active"), Some(&Value::Bool(true)));
        assert_eq!(g.get("vertices"), Some(&Value::U64(4)));
        assert!(matches!(g.get("cache_misses"), Some(Value::U64(n)) if *n >= 1));
        let entries = match g.get("cache_entries") {
            Some(Value::U64(n)) => *n,
            other => panic!("cache_entries missing: {other:?}"),
        };
        assert!(entries >= 1);
        // Occupancy is recomputed from the live cache map: clearing the
        // cache drops it to zero while the monotone counters survive.
        s.engine.clear_cache();
        let v = parse(&s.handle_line(r#"{"op":"stats"}"#));
        let g = match v.get("per_graph") {
            Some(Value::Seq(g)) => &g[0],
            other => panic!("per_graph missing: {other:?}"),
        };
        assert_eq!(g.get("cache_entries"), Some(&Value::U64(0)));
        assert!(matches!(g.get("cache_misses"), Some(Value::U64(n)) if *n >= 1));
    }

    #[test]
    fn mutate_commits_and_matches_a_fresh_registration() {
        let mut s = service_with_graph();
        // Commit: lower the 0–1 edge, add a chord, then drop edge 1 (1–2).
        let v = parse(&s.handle_line(
            r#"{"op":"mutate","graph":"g","mutations":[
                {"kind":"update_prob","edge":0,"p":0.4},
                {"kind":"add_edge","u":0,"v":2,"p":0.6},
                {"kind":"remove_edge","edge":1}]}"#,
        ));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        let results = match v.get("results") {
            Some(Value::Seq(r)) => r,
            other => panic!("results missing: {other:?}"),
        };
        assert_eq!(results.len(), 3);
        for r in results {
            assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "{r:?}");
        }
        // The added edge got the next dense id.
        assert_eq!(results[1].get("edge"), Some(&Value::U64(4)));
        // The mutated service and a service registered directly with the
        // mutated edge list answer bit-identically.
        let mut fresh = Service::default();
        fresh.handle_line(
            r#"{"op":"register","name":"g","vertices":4,
                "edges":[[0,1,0.4],[2,3,0.9],[3,0,0.7],[0,2,0.6]]}"#,
        );
        let query = r#"{"op":"query","graph":"g","terminals":[0,2],"exact":true}"#;
        assert_eq!(s.handle_line(query), fresh.handle_line(query));
    }

    #[test]
    fn mutate_isolates_per_mutation_errors() {
        let mut s = service_with_graph();
        let v = parse(&s.handle_line(
            r#"{"op":"mutate","graph":"g","mutations":[
                {"kind":"remove_edge","edge":99},
                {"kind":"update_prob","edge":0,"p":0.4}]}"#,
        ));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        let results = match v.get("results") {
            Some(Value::Seq(r)) => r,
            other => panic!("results missing: {other:?}"),
        };
        // The bad removal fails alone; the update after it still commits.
        assert_eq!(results[0].get("ok"), Some(&Value::Bool(false)));
        assert_eq!(results[1].get("ok"), Some(&Value::Bool(true)));
        // Malformed mutation arrays are request-level errors.
        for bad in [
            r#"{"op":"mutate","graph":"g","mutations":7}"#,
            r#"{"op":"mutate","graph":"g"}"#,
            r#"{"op":"mutate","graph":"g","mutations":[{"kind":"bogus"}]}"#,
            r#"{"op":"mutate","graph":"g","mutations":[{"kind":"add_edge","u":0}]}"#,
        ] {
            let v = parse(&s.handle_line(bad));
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "line: {bad}");
        }
    }

    #[test]
    fn whatif_commits_nothing_and_matches_commit_then_query() {
        // Drop the per-answer cache telemetry before comparing: the
        // shared plan cache is warm by the second evaluation, so hit and
        // miss counts legitimately differ while the answer itself must
        // stay bit-identical.
        fn sans_cache_telemetry(v: &Value) -> Value {
            let answer = v.get("answer").expect("answer present");
            let Value::Map(fields) = answer else {
                panic!("answer is not an object: {answer:?}");
            };
            Value::Map(
                fields
                    .iter()
                    .filter(|(k, _)| k != "cache_hits" && k != "cache_misses")
                    .cloned()
                    .collect(),
            )
        }
        let mut s = service_with_graph();
        let whatif = parse(&s.handle_line(
            r#"{"op":"whatif","graph":"g","terminals":[0,2],
                "mutations":[{"kind":"update_prob","edge":0,"p":0.2}]}"#,
        ));
        assert_eq!(whatif.get("ok"), Some(&Value::Bool(true)), "{whatif:?}");
        // The registered graph is untouched: a plain planned query equals
        // one with an empty hypothesis.
        let plain =
            parse(&s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"plan":true}"#));
        let empty = parse(
            &s.handle_line(r#"{"op":"whatif","graph":"g","terminals":[0,2],"mutations":[]}"#),
        );
        assert_eq!(sans_cache_telemetry(&plain), sans_cache_telemetry(&empty));
        // Committing the same mutation then querying gives the same answer.
        s.handle_line(
            r#"{"op":"mutate","graph":"g","mutations":[{"kind":"update_prob","edge":0,"p":0.2}]}"#,
        );
        let committed =
            parse(&s.handle_line(r#"{"op":"query","graph":"g","terminals":[0,2],"plan":true}"#));
        assert_eq!(
            sans_cache_telemetry(&whatif),
            sans_cache_telemetry(&committed)
        );
    }

    #[test]
    fn maximize_picks_the_direct_chord_first() {
        let mut s = service_with_graph();
        // A near-certain direct 0–2 chord dominates the weak alternatives.
        let v = parse(&s.handle_line(
            r#"{"op":"maximize","graph":"g","s":0,"t":2,"k":2,"candidates":[
                {"kind":"update_prob","edge":1,"p":0.81},
                {"kind":"add_edge","u":0,"v":2,"p":0.99},
                {"kind":"add_edge","u":1,"v":3,"p":0.05}]}"#,
        ));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        let steps = match v.get("steps") {
            Some(Value::Seq(steps)) => steps,
            other => panic!("steps missing: {other:?}"),
        };
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].get("candidate"), Some(&Value::U64(1)));
        let baseline = match v.get("baseline") {
            Some(Value::F64(b)) => *b,
            other => panic!("baseline missing: {other:?}"),
        };
        let final_r = match v.get("final") {
            Some(Value::F64(f)) => *f,
            other => panic!("final missing: {other:?}"),
        };
        assert!(final_r >= baseline, "{final_r} < {baseline}");
        // The chosen mutation is echoed in request shape.
        let m = steps[0].get("mutation").expect("mutation echoed");
        assert_eq!(m.get("kind"), Some(&Value::Str("add_edge".into())));
        // Missing fields are request-level errors.
        let v = parse(&s.handle_line(r#"{"op":"maximize","graph":"g","s":0,"t":2,"k":1}"#));
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn per_query_knobs_override_batch_defaults() {
        let mut s = service_with_graph();
        let response = s.handle_line(
            r#"{"op":"batch","graph":"g","samples":10,"queries":
                [{"terminals":[0,2],"samples":99},{"terminals":[0,2]}]}"#,
        );
        let v = parse(&response);
        let answers = match v.get("answers") {
            Some(Value::Seq(a)) => a,
            other => panic!("answers missing: {other:?}"),
        };
        let requested = |a: &Value| match a.get("answer").and_then(|ans| ans.get("parts")) {
            Some(Value::Seq(parts)) if !parts.is_empty() => {
                parts[0].get("samples_requested").cloned()
            }
            _ => None,
        };
        assert_eq!(requested(&answers[0]), Some(Value::U64(99)));
        assert_eq!(requested(&answers[1]), Some(Value::U64(10)));
    }
}
