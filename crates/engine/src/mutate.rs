//! Live graph mutations, what-if evaluation, and greedy reliability
//! maximization.
//!
//! A registered graph is not frozen: [`Engine::update_edge_prob`],
//! [`Engine::add_edge`], and [`Engine::remove_edge`] change it in place.
//! Each mutation
//!
//! 1. applies the primitive to the stored [`UncertainGraph`] (whose
//!    mutation methods reproduce a fresh build on the mutated edge list
//!    byte for byte),
//! 2. patches the bridge/2ECC/bridge-forest [`GraphIndex`] incrementally
//!    via `netrel_preprocess::incremental` — recomputing only the
//!    affected 2-edge-connected component, with a full rebuild as the
//!    fallback when the mutation merges or splits components — and
//! 3. invalidates the plan-cache entries and packed-world bank entries
//!    whose structural key covers the touched edge (matched by the old
//!    probability bits, owner-scoped for the plan cache).
//!
//! Step 3 is **memory hygiene, not a correctness requirement**: every
//! cache key embeds the full part edge list with probability bits, so a
//! post-mutation lookup re-keys and can never alias a stale entry (see
//! `cache::PlanKey` and the invalidation-soundness argument in
//! DESIGN.md §13). The headline guarantee — enforced by the
//! rebuild-equivalence property suite — is that a mutated engine answers
//! every query bit-identically to a fresh engine built from the mutated
//! graph, for all semantics, both solver paths, and any worker count.
//!
//! On top of committed mutations sit two drivers:
//!
//! * [`Engine::evaluate_with`] answers a planned query against a
//!   *hypothetical* mutation set without committing anything — the
//!   mutations are applied to a clone, a fresh index is built, and the
//!   answer is bit-identical to committing the set and querying.
//! * [`Engine::maximize_reliability`] runs the greedy reliability-
//!   maximization loop ("which `k` upgrades help `s`–`t` most?"): each
//!   round it what-if-evaluates every remaining candidate on top of the
//!   already-chosen set and commits (to the *plan*, not the graph) the
//!   argmax, ties broken toward the lowest candidate index. Because the
//!   what-if path shares the engine's structurally-keyed plan cache,
//!   overlapping candidate evaluations reuse each other's part solves.

use crate::{Engine, EngineError, GraphId, PlanBudget, PlannedQuery, ReliabilityAnswer};
use netrel_core::{ProConfig, SemanticsSpec};
use netrel_preprocess::{
    patch_add_edge, patch_remove_edge, patch_update_prob, GraphIndex, IndexPatch,
};
use netrel_ugraph::{EdgeId, GraphError, UncertainGraph, VertexId};

/// One graph mutation, committable ([`Engine::apply_mutation`]) or
/// hypothetical ([`Engine::evaluate_with`]).
///
/// Edge ids are interpreted against the graph state the mutation is
/// applied to: within a mutation set, a `RemoveEdge` shifts later ids
/// down by one exactly like [`UncertainGraph::remove_edge`], and an
/// `AddEdge` receives the next dense id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mutation {
    /// Replace edge `edge`'s existence probability with `p`.
    UpdateProb {
        /// Edge id to update.
        edge: EdgeId,
        /// New probability in `(0, 1]`.
        p: f64,
    },
    /// Insert a new edge `(u, v)` with probability `p`.
    AddEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Existence probability in `(0, 1]`.
        p: f64,
    },
    /// Remove edge `edge`; ids above it shift down by one.
    RemoveEdge {
        /// Edge id to remove.
        edge: EdgeId,
    },
}

/// What one committed mutation did to the engine's shared state.
#[derive(Clone, Copy, Debug)]
pub struct MutationOutcome {
    /// The edge id the mutation resolved to: the updated id, the id
    /// assigned to an added edge, or the removed id.
    pub edge: EdgeId,
    /// Whether the [`GraphIndex`] was patched in place or rebuilt.
    pub patch: IndexPatch,
    /// Plan-cache entries dropped by the scoped invalidation.
    pub invalidated_plans: usize,
    /// Packed-world-bank entries dropped by the scoped invalidation.
    pub invalidated_worlds: usize,
}

/// A committed mutation plus its outcome — one journal line.
#[derive(Clone, Copy, Debug)]
pub struct MutationRecord {
    /// The mutation as requested.
    pub mutation: Mutation,
    /// What it did.
    pub outcome: MutationOutcome,
}

/// One greedy round of [`Engine::maximize_reliability`].
#[derive(Clone, Copy, Debug)]
pub struct MaximizeStep {
    /// Index into the candidate slice of the chosen mutation.
    pub candidate: usize,
    /// The chosen mutation.
    pub mutation: Mutation,
    /// `s`–`t` reliability with every mutation chosen so far applied.
    pub reliability: f64,
    /// Whether that reliability is exact (see `ReliabilityAnswer::exact`).
    pub exact: bool,
}

/// Result of the greedy reliability-maximization driver.
#[derive(Clone, Debug)]
pub struct MaximizeResult {
    /// `s`–`t` reliability of the unmutated graph.
    pub baseline: f64,
    /// The greedy choices in selection order (at most `k`; shorter when
    /// the candidate pool is exhausted or every remaining candidate is
    /// inapplicable).
    pub steps: Vec<MaximizeStep>,
}

impl MaximizeResult {
    /// Reliability after the last chosen mutation (the baseline when no
    /// candidate was chosen).
    pub fn final_reliability(&self) -> f64 {
        self.steps.last().map_or(self.baseline, |s| s.reliability)
    }
}

/// Apply one mutation to a graph, returning the edge id it resolved to.
fn apply_to_graph(g: &mut UncertainGraph, m: &Mutation) -> Result<EdgeId, GraphError> {
    match *m {
        Mutation::UpdateProb { edge, p } => {
            g.update_edge_prob(edge, p)?;
            Ok(edge)
        }
        Mutation::AddEdge { u, v, p } => g.add_edge(u, v, p),
        Mutation::RemoveEdge { edge } => {
            g.remove_edge(edge)?;
            Ok(edge)
        }
    }
}

impl Engine {
    /// Replace edge `edge`'s probability on a registered graph.
    ///
    /// The cheapest mutation: the [`GraphIndex`] stores topology only, so
    /// nothing is recomputed — the graph is updated in place and cache
    /// entries keyed on the old probability bits are dropped. Answers
    /// after the call are bit-identical to a fresh engine built from the
    /// mutated graph.
    pub fn update_edge_prob(
        &mut self,
        id: GraphId,
        edge: EdgeId,
        p: f64,
    ) -> Result<MutationOutcome, EngineError> {
        self.apply_mutation(id, Mutation::UpdateProb { edge, p })
    }

    /// Insert edge `(u, v)` with probability `p` on a registered graph,
    /// returning the outcome (its `edge` field is the new edge's id).
    ///
    /// An edge inside one 2-edge-connected component patches the index
    /// locally; an edge between components merges forest nodes and
    /// rebuilds it. No cache entry is invalidated — a key written before
    /// the edge existed cannot cover it, so every entry stays valid.
    pub fn add_edge(
        &mut self,
        id: GraphId,
        u: VertexId,
        v: VertexId,
        p: f64,
    ) -> Result<MutationOutcome, EngineError> {
        self.apply_mutation(id, Mutation::AddEdge { u, v, p })
    }

    /// Remove edge `edge` from a registered graph (ids above it shift
    /// down by one, as in [`UncertainGraph::remove_edge`]).
    ///
    /// Removing a non-bridge that leaves its component 2-edge-connected
    /// patches the index locally; removing a bridge — or splitting a
    /// component — rebuilds it. Cache entries keyed on the removed edge's
    /// probability bits are dropped.
    pub fn remove_edge(
        &mut self,
        id: GraphId,
        edge: EdgeId,
    ) -> Result<MutationOutcome, EngineError> {
        self.apply_mutation(id, Mutation::RemoveEdge { edge })
    }

    /// Commit one [`Mutation`] to a registered graph: apply the graph
    /// primitive, incrementally patch (or rebuild) the index, run the
    /// scoped cache/world-bank invalidation, record metrics, and append a
    /// [`MutationRecord`] to the graph's journal. A rejected mutation
    /// (bad edge id, duplicate edge, invalid probability, …) changes
    /// nothing.
    pub fn apply_mutation(
        &mut self,
        id: GraphId,
        mutation: Mutation,
    ) -> Result<MutationOutcome, EngineError> {
        let owner = id.0;
        let rg = self
            .graphs
            .get_mut(owner)
            .ok_or_else(|| EngineError::UnknownGraph(format!("#{owner}")))?;

        // Invalidation matches on the touched edge's *old* probability
        // bits; capture them before the primitive runs. `None` means
        // nothing to invalidate (additions).
        let old_bits = match mutation {
            Mutation::UpdateProb { edge, .. } | Mutation::RemoveEdge { edge } => {
                if edge >= rg.graph.num_edges() {
                    return Err(GraphError::EdgeOutOfRange {
                        edge,
                        edges: rg.graph.num_edges(),
                    }
                    .into());
                }
                Some(rg.graph.prob(edge).to_bits())
            }
            Mutation::AddEdge { .. } => None,
        };
        // Either endpoint of a removed edge identifies the affected
        // component (vertex labels survive the edge-id shift); the bridge
        // flag must be read before the removal invalidates it.
        let (endpoint, was_bridge) = match mutation {
            Mutation::RemoveEdge { edge } => (rg.graph.edge(edge).u, rg.index.cut.is_bridge[edge]),
            _ => (0, false),
        };

        let edge = apply_to_graph(&mut rg.graph, &mutation)?;
        let patch = match mutation {
            Mutation::UpdateProb { .. } => patch_update_prob(&mut rg.index),
            Mutation::AddEdge { .. } => patch_add_edge(&rg.graph, &mut rg.index, edge),
            Mutation::RemoveEdge { .. } => {
                patch_remove_edge(&rg.graph, &mut rg.index, edge, endpoint, was_bridge)
            }
        };

        let (invalidated_plans, invalidated_worlds) = match old_bits {
            Some(bits) => (
                self.cache
                    .lock()
                    .expect("plan cache poisoned")
                    .invalidate_prob(owner, bits),
                self.worlds.invalidate_prob(bits),
            ),
            None => (0, 0),
        };

        if let Some(m) = self.obs.metrics() {
            match mutation {
                Mutation::UpdateProb { .. } => m.mutations_update_prob.inc(),
                Mutation::AddEdge { .. } => m.mutations_add_edge.inc(),
                Mutation::RemoveEdge { .. } => m.mutations_remove_edge.inc(),
            }
            match patch {
                IndexPatch::Patched => m.index_patched.inc(),
                IndexPatch::Rebuilt => m.index_rebuilt.inc(),
            }
            m.invalidated_plans.add(invalidated_plans as u64);
            m.invalidated_worlds.add(invalidated_worlds as u64);
        }

        let outcome = MutationOutcome {
            edge,
            patch,
            invalidated_plans,
            invalidated_worlds,
        };
        self.graphs[owner]
            .journal
            .push(MutationRecord { mutation, outcome });
        Ok(outcome)
    }

    /// The committed mutations of a registered graph, in application
    /// order.
    pub fn mutation_journal(&self, id: GraphId) -> Result<&[MutationRecord], EngineError> {
        Ok(&self.registered(id)?.journal)
    }

    /// Answer a planned query against a **hypothetical** mutation set,
    /// committing nothing: the mutations are applied in order to a clone
    /// of the registered graph, a fresh index is built for it, and the
    /// query runs through the normal planned pipeline. The answer is
    /// bit-identical to committing the set and calling
    /// [`run_planned`](Engine::run_planned) — the rebuild-equivalence
    /// guarantee makes the committed index equal the fresh one, and the
    /// pipeline is deterministic in `(graph, index, query)`.
    ///
    /// The engine's plan cache is shared (keys embed the hypothetical
    /// edge probabilities, so entries can never leak across hypotheses);
    /// repeated what-ifs over overlapping mutation sets — the maximizer's
    /// access pattern — reuse each other's unchanged parts.
    pub fn evaluate_with(
        &self,
        id: GraphId,
        mutations: &[Mutation],
        query: &PlannedQuery,
    ) -> Result<ReliabilityAnswer, EngineError> {
        let rg = self.registered(id)?;
        let mut graph = rg.graph.clone();
        for m in mutations {
            apply_to_graph(&mut graph, m)?;
        }
        let index = GraphIndex::build(&graph);
        if let Some(m) = self.obs.metrics() {
            m.whatif_queries.inc();
        }
        let prepared = self.prepare_planned(&graph, &index, std::slice::from_ref(query));
        let assembled = self
            .execute(id.0, prepared)
            .pop()
            .expect("one result per query");
        assembled.map(|a| {
            ReliabilityAnswer::from_assembled(
                query.semantics,
                a,
                &query.budget,
                query.semantics.semantics().value_upper(&graph),
            )
        })
    }

    /// Greedy reliability maximization: choose up to `k` of `candidates`
    /// to maximize the two-terminal reliability `R[s, t]`, evaluating
    /// every candidate hypothetically via [`evaluate_with`](Engine::evaluate_with)
    /// and never committing to the registered graph.
    ///
    /// Each round evaluates the chosen set plus each remaining candidate
    /// (in candidate order, ids interpreted after the already-chosen
    /// mutations) and keeps the strict argmax — ties break toward the
    /// lowest candidate index, so the result is deterministic. Candidates
    /// whose mutation set is inapplicable (duplicate edge, stale id, …)
    /// are skipped for that round. Rounds end early when no applicable
    /// candidate remains.
    pub fn maximize_reliability(
        &self,
        id: GraphId,
        s: VertexId,
        t: VertexId,
        k: usize,
        candidates: &[Mutation],
        budget: PlanBudget,
    ) -> Result<MaximizeResult, EngineError> {
        let query = PlannedQuery::with_semantics(
            SemanticsSpec::TwoTerminal,
            vec![s, t],
            ProConfig::default(),
            budget,
        );
        let baseline = self.evaluate_with(id, &[], &query)?.estimate;
        let mut chosen: Vec<usize> = Vec::new();
        let mut steps = Vec::new();
        while steps.len() < k && chosen.len() < candidates.len() {
            let mut best: Option<(f64, usize, bool)> = None;
            for (ci, _) in candidates.iter().enumerate() {
                if chosen.contains(&ci) {
                    continue;
                }
                let set: Vec<Mutation> = chosen
                    .iter()
                    .chain(std::iter::once(&ci))
                    .map(|&i| candidates[i])
                    .collect();
                let Ok(answer) = self.evaluate_with(id, &set, &query) else {
                    continue; // inapplicable on top of the chosen set
                };
                let better = match best {
                    None => true,
                    Some((r, _, _)) => answer.estimate > r,
                };
                if better {
                    best = Some((answer.estimate, ci, answer.exact));
                }
            }
            let Some((reliability, ci, exact)) = best else {
                break; // every remaining candidate is inapplicable
            };
            chosen.push(ci);
            steps.push(MaximizeStep {
                candidate: ci,
                mutation: candidates[ci],
                reliability,
                exact,
            });
        }
        Ok(MaximizeResult { baseline, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, Recorder};

    /// 4-cycle with a chord: edges 0–1, 1–2, 2–3, 3–0, 0–2.
    fn chorded_cycle() -> UncertainGraph {
        UncertainGraph::new(
            4,
            vec![
                (0, 1, 0.9),
                (1, 2, 0.8),
                (2, 3, 0.9),
                (3, 0, 0.7),
                (0, 2, 0.6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn journal_records_every_committed_mutation_in_order() {
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("g", chorded_cycle());
        engine.update_edge_prob(id, 0, 0.5).unwrap();
        let added = engine.add_edge(id, 1, 3, 0.4).unwrap();
        assert_eq!(added.edge, 5);
        engine.remove_edge(id, 1).unwrap();
        let journal = engine.mutation_journal(id).unwrap();
        assert_eq!(journal.len(), 3);
        assert_eq!(
            journal[0].mutation,
            Mutation::UpdateProb { edge: 0, p: 0.5 }
        );
        assert_eq!(
            journal[1].mutation,
            Mutation::AddEdge { u: 1, v: 3, p: 0.4 }
        );
        assert_eq!(journal[2].mutation, Mutation::RemoveEdge { edge: 1 });
    }

    #[test]
    fn rejected_mutations_change_nothing() {
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("g", chorded_cycle());
        for bad in [
            Mutation::UpdateProb { edge: 99, p: 0.5 },
            Mutation::UpdateProb { edge: 0, p: 1.5 },
            Mutation::RemoveEdge { edge: 99 },
            Mutation::AddEdge { u: 0, v: 1, p: 0.5 }, // duplicate
            Mutation::AddEdge { u: 2, v: 2, p: 0.5 }, // self-loop
        ] {
            assert!(engine.apply_mutation(id, bad).is_err(), "{bad:?}");
        }
        assert!(engine.mutation_journal(id).unwrap().is_empty());
        assert_eq!(engine.registered(id).unwrap().graph.num_edges(), 5);
    }

    #[test]
    fn add_edge_invalidates_nothing_and_update_is_scoped() {
        let mut engine = Engine::with_recorder(EngineConfig::default(), Recorder::enabled());
        let id = engine.register("g", chorded_cycle());
        // Warm the cache, then mutate.
        let q = PlannedQuery::with_semantics(
            SemanticsSpec::TwoTerminal,
            vec![0, 2],
            ProConfig::default(),
            PlanBudget::default(),
        );
        engine.run_planned(id, &q).unwrap();
        let added = engine.add_edge(id, 1, 3, 0.4).unwrap();
        assert_eq!(added.invalidated_plans, 0);
        assert_eq!(added.invalidated_worlds, 0);
        // An edge that never existed before the warmup cannot appear in
        // any key; an update to the touched edge drops its entries.
        let m = engine.recorder().metrics().unwrap().clone();
        assert_eq!(m.mutations_add_edge.get(), 1);
        assert_eq!(m.invalidated_plans.get(), 0);
        engine.update_edge_prob(id, 4, 0.55).unwrap();
        assert_eq!(m.mutations_update_prob.get(), 1);
        assert!(m.index_patched.get() >= 1);
    }

    #[test]
    fn evaluate_with_rejects_inapplicable_sets_without_side_effects() {
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("g", chorded_cycle());
        let q = PlannedQuery::with_semantics(
            SemanticsSpec::TwoTerminal,
            vec![0, 2],
            ProConfig::default(),
            PlanBudget::default(),
        );
        let bad = [Mutation::RemoveEdge { edge: 99 }];
        assert!(engine.evaluate_with(id, &bad, &q).is_err());
        assert!(engine.mutation_journal(id).unwrap().is_empty());
        // An applicable hypothesis answers without committing.
        let hyp = [Mutation::UpdateProb { edge: 0, p: 0.1 }];
        let answer = engine.evaluate_with(id, &hyp, &q).unwrap();
        assert!((0.0..=1.0).contains(&answer.estimate));
        assert!(engine.mutation_journal(id).unwrap().is_empty());
    }

    #[test]
    fn maximize_breaks_ties_toward_the_lowest_candidate_index() {
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.register("g", chorded_cycle());
        // Two identical candidates: greedy must choose index 0 first.
        let candidates = [
            Mutation::UpdateProb { edge: 4, p: 0.95 },
            Mutation::UpdateProb { edge: 4, p: 0.95 },
        ];
        let result = engine
            .maximize_reliability(id, 0, 2, 1, &candidates, PlanBudget::default())
            .unwrap();
        assert_eq!(result.steps.len(), 1);
        assert_eq!(result.steps[0].candidate, 0);
        assert!(result.final_reliability() >= result.baseline);
    }
}
