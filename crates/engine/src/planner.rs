//! The adaptive query planner: budgeted exact/approx solver selection.
//!
//! The paper's S2BDD is exact but its frontier can blow up on dense or wide
//! graphs, while flat possible-world sampling scales to any graph at the
//! cost of variance — and no single estimator dominates across graph
//! density and query shape (Ke et al., arXiv:1904.05300). The planner picks
//! per decomposed *part*, under a per-query [`PlanBudget`]:
//!
//! * [`Route::Exact`] — unbounded-width S2BDD with the budget's
//!   [`node cap`](netrel_s2bdd::S2BddConfig::node_cap) as a safety net:
//!   if the cost model underestimated and the cap trips, the solver hands
//!   the live layer to the conditional `StratumSampler` and still returns
//!   proven bounds plus an unbiased estimate.
//! * [`Route::Bounded`] — the paper's width-bounded S2BDD with a width
//!   derived from the node budget and a computed sample budget.
//! * [`Route::BitSampling`] — bit-parallel Monte Carlo sampling
//!   ([`bitsample_part`](netrel_core::bitsample_part)) for parts whose
//!   frontier is so wide that a bounded diagram would prove nothing: 64
//!   possible worlds packed per `u64`, one word-wide BFS per block.
//! * [`Route::Sampling`] — flat possible-world sampling
//!   ([`sample_part_result`](netrel_core::sample_part_result)), kept for
//!   Horvitz–Thompson-estimated parts (HT needs per-world occurrence
//!   probabilities the packed kernel does not track).
//!
//! The **cost model** is a cheap pre-pass over each part: it builds the
//! same [`FrontierPlan`] the solver would use (the chosen edge ordering's
//! vertex-frontier width is a pathwidth proxy) and estimates the number of
//! distinct frontier states per layer by the Bell number of the layer
//! width — states are set partitions of the frontier, so `B(w)` is the
//! dominant term (see [`states_upper_bound`] for the `k ≥ 3` caveat).
//! Summed over layers and saturated, that predicts the diagram size the
//! exact route would have to pay; misprediction degrades gracefully via
//! the node-cap safety net rather than blowing up.
//!
//! The exactness/CI contract of the answers produced through this module
//! is specified in `DESIGN.md` §9.
//!
//! ```
//! use netrel_engine::{Engine, EngineConfig, PlanBudget, PlannedQuery};
//! use netrel_ugraph::UncertainGraph;
//!
//! let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.9), (3, 0, 0.7)]).unwrap();
//! let mut engine = Engine::new(EngineConfig::default());
//! let id = engine.register("demo", g);
//! let a = engine
//!     .run_planned(id, &PlannedQuery::new(vec![0, 2], PlanBudget::default()))
//!     .unwrap();
//! // Small sparse part: the planner takes the exact route.
//! assert!(a.exact);
//! assert_eq!((a.ci.lower, a.ci.upper), (a.estimate, a.estimate));
//! ```

use netrel_core::{part_s2bdd_config, PartComputation, SemPart};
use netrel_numeric::ConfidenceLevel;
use netrel_s2bdd::{EstimatorKind, S2BddConfig};
use netrel_ugraph::ordering::FrontierPlan;
use netrel_ugraph::{UncertainGraph, VertexId};

/// Per-query resource budget the planner routes under.
///
/// The budget is a *planning* input, not a runtime watchdog: it is folded
/// into solver configurations (node caps, widths, sample counts) before any
/// solving starts, so two runs with the same budget produce bit-identical
/// answers regardless of machine load. See `DESIGN.md` §9.3 for how the
/// time hint is calibrated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanBudget {
    /// Maximum S2BDD nodes a part may create. Parts predicted to stay under
    /// this go the exact route (with this value as the in-solver
    /// [`node_cap`](netrel_s2bdd::S2BddConfig::node_cap) safety net).
    pub node_budget: usize,
    /// Possible-world samples granted to each sampling-routed part (and to
    /// the stratified fallback of a capped exact part).
    pub sample_budget: usize,
    /// Optional soft wall-clock hint in milliseconds **for the whole
    /// query**. Converted *deterministically* into tighter node/sample
    /// budgets via the calibration constants [`NODES_PER_MS`] /
    /// [`SAMPLES_PER_MS`] and apportioned evenly across the query's
    /// decomposed parts ([`PlanBudget::for_parts`]); the planner never
    /// reads a clock, so answers stay reproducible.
    pub time_hint_ms: Option<u64>,
    /// Confidence level of the interval attached to estimated answers.
    pub confidence: ConfidenceLevel,
}

impl Default for PlanBudget {
    fn default() -> Self {
        PlanBudget {
            node_budget: 250_000,
            sample_budget: 10_000,
            time_hint_ms: None,
            confidence: ConfidenceLevel::P95,
        }
    }
}

/// Throughput calibration for [`PlanBudget::time_hint_ms`]: S2BDD nodes one
/// millisecond buys on the reference machine (the one `BENCH_planner.json`
/// was recorded on). Deliberately conservative.
pub const NODES_PER_MS: usize = 5_000;

/// Throughput calibration for [`PlanBudget::time_hint_ms`]: possible-world
/// samples one millisecond buys on the reference machine.
pub const SAMPLES_PER_MS: usize = 2_000;

/// Frontier width beyond which a *bounded* S2BDD stops being useful: at
/// width `> BOUNDED_WIDTH_LIMIT` vertices the retained slice of each layer
/// is so thin that the proven bounds stay near `[0, 1]` and the stratified
/// sampler degenerates to flat sampling with diagram overhead on top — so
/// the planner routes straight to [`Route::Sampling`].
pub const BOUNDED_WIDTH_LIMIT: usize = 40;

/// Floor for the derived width of a [`Route::Bounded`] part.
pub const MIN_BOUNDED_WIDTH: usize = 16;

impl PlanBudget {
    /// A budget with an explicit node budget and the remaining defaults.
    pub fn with_nodes(node_budget: usize) -> Self {
        PlanBudget {
            node_budget,
            ..Default::default()
        }
    }

    /// The node budget after applying the time hint.
    pub fn effective_node_budget(&self) -> usize {
        match self.time_hint_ms {
            Some(ms) => (ms as usize)
                .saturating_mul(NODES_PER_MS)
                .min(self.node_budget)
                .max(1),
            None => self.node_budget.max(1),
        }
    }

    /// The sample budget after applying the time hint.
    pub fn effective_sample_budget(&self) -> usize {
        match self.time_hint_ms {
            Some(ms) => (ms as usize)
                .saturating_mul(SAMPLES_PER_MS)
                .min(self.sample_budget)
                .max(1),
            None => self.sample_budget.max(1),
        }
    }

    /// The budget one of `num_parts` decomposed parts receives.
    ///
    /// `node_budget` and `sample_budget` are *per-part* caps and pass
    /// through unchanged, but the wall-clock hint covers the whole query:
    /// its converted node/sample allowance is split evenly across parts, so
    /// a 10-part query cannot spend 10× the hinted time. With no hint this
    /// is the identity.
    pub fn for_parts(&self, num_parts: usize) -> PlanBudget {
        match self.time_hint_ms {
            Some(ms) => PlanBudget {
                time_hint_ms: Some(ms / num_parts.max(1) as u64),
                ..*self
            },
            None => *self,
        }
    }
}

/// Which solver family a part was routed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Route {
    /// Unbounded-width S2BDD with the budget's node cap as a safety net.
    Exact,
    /// Width-bounded S2BDD with stratified sampling (the paper's solver).
    Bounded,
    /// Flat possible-world sampling over the whole part.
    Sampling,
    /// Bit-parallel Monte Carlo sampling: 64 packed worlds per word
    /// ([`netrel_core::bitsample`]). The default sampling route for
    /// Monte-Carlo-estimated parts; Horvitz–Thompson parts stay on
    /// [`Route::Sampling`].
    BitSampling,
}

impl Route {
    /// Stable lowercase name (used by the JSON service).
    pub fn name(self) -> &'static str {
        match self {
            Route::Exact => "exact",
            Route::Bounded => "bounded",
            Route::Sampling => "sampling",
            Route::BitSampling => "bit_sampling",
        }
    }
}

// Manual impl: the vendored serde_derive shim handles only structs.
impl serde::Serialize for Route {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().into())
    }
}

/// The fully materialized solver for one part — everything that determines
/// the result, and therefore everything a cache key needs. Two parts with
/// the same graph, terminals, and `PartSolver` are interchangeable bit for
/// bit, whichever query (or budget) derived them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartSolver {
    /// One S2BDD run under the complete configuration (exact, capped-exact,
    /// and width-bounded routes all land here).
    S2Bdd(S2BddConfig),
    /// One flat-sampling run
    /// ([`sample_semantics_part`](netrel_core::sample_semantics_part) —
    /// connectivity parts use the terminal-connectivity sampler, d-hop
    /// parts the hop-bounded one); thread count is pinned by the
    /// seed-stable stream partition, so it is not part of the identity.
    Sampling {
        /// Possible worlds to draw.
        samples: usize,
        /// Estimator aggregating them.
        estimator: EstimatorKind,
        /// Stream seed.
        seed: u64,
    },
    /// One bit-parallel Monte Carlo run
    /// ([`bitsample_part`](netrel_core::bitsample_part)): 64 worlds packed
    /// per `u64`, word-wide frontier propagation, MC estimator only (no
    /// estimator field — Horvitz–Thompson routes to [`PartSolver::Sampling`]
    /// instead). Thread count is pinned by the seed-stable block partition,
    /// so it is not part of the identity; a packed run never aliases a flat
    /// [`PartSolver::Sampling`] run because the two kernels consume the RNG
    /// differently and are only statistically — not bitwise — equivalent.
    BitSampling {
        /// Possible worlds to draw (lanes across all 64-wide blocks).
        samples: usize,
        /// Block-partition seed.
        seed: u64,
    },
    /// Exact enumeration for parts whose indicator the S2BDD cannot
    /// express (d-hop parts: recursive edge conditioning,
    /// [`dhop_exact_reliability`](netrel_core::dhop_exact_reliability)).
    /// Deterministic and seed-free, so the variant carries no
    /// configuration — the part identity (and its
    /// [`PartComputation`]) fully determines the result.
    Enumeration,
}

/// What the cost model predicted for one part.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostEstimate {
    /// Peak number of simultaneously live frontier *vertices* under the
    /// chosen edge ordering — the pathwidth proxy.
    pub frontier_width: usize,
    /// Layers the construction would run (= part edges).
    pub layers: usize,
    /// Predicted S2BDD node count: `Σ_l B(w_l)` saturating, where `w_l` is
    /// the frontier width during layer `l` and `B` the Bell number (a
    /// heuristic cap — see [`states_upper_bound`] for the `k ≥ 3` caveat).
    pub predicted_nodes: usize,
}

/// The plan for one part: the route taken, the materialized solver, and the
/// prediction that justified it.
#[derive(Clone, Copy, Debug)]
pub struct PartPlan {
    /// Route decision.
    pub route: Route,
    /// Solver configuration the executor will run (also the cache-key
    /// discriminant).
    pub solver: PartSolver,
    /// The cost-model output behind the decision.
    pub estimate: CostEstimate,
}

/// Bell numbers `B(0)..=B(25)`; `B(26)` already exceeds `u64`, and any
/// frontier that wide saturates the prediction anyway.
const BELL: [u64; 26] = [
    1,
    1,
    2,
    5,
    15,
    52,
    203,
    877,
    4_140,
    21_147,
    115_975,
    678_570,
    4_213_597,
    27_644_437,
    190_899_322,
    1_382_958_545,
    10_480_142_147,
    82_864_869_804,
    682_076_806_159,
    5_832_742_205_057,
    51_724_158_235_372,
    474_869_816_156_751,
    4_506_715_738_447_323,
    44_152_005_855_084_346,
    445_958_869_294_805_289,
    4_638_590_332_229_999_353,
];

/// Cost-model estimate of the distinct frontier states a layer of `w`
/// vertices can hold: the Bell number `B(w)`, the count of set partitions
/// of the frontier. Saturates at `usize::MAX` for `w > 25`.
///
/// This is a *heuristic* cap, not a proof: for two-terminal queries the
/// state is the partition alone (terminal membership is fixed), but with
/// `k ≥ 3` terminals a departed terminal's component assignment adds a
/// (small) multiplicity on top of `B(w)`, so the real layer can exceed it.
/// The planner tolerates under-prediction by construction — the exact
/// route carries the node-cap safety net, which degrades a mispredicted
/// part to a bounds-plus-CI answer instead of a blow-up.
pub fn states_upper_bound(w: usize) -> usize {
    match BELL.get(w) {
        Some(&b) => usize::try_from(b).unwrap_or(usize::MAX),
        None => usize::MAX,
    }
}

/// Run the cost model on one part: build the [`FrontierPlan`] the solver
/// itself would use (ordering seeded from the smallest terminal, exactly as
/// `FrontierMachine::new` does) and sum per-layer state bounds.
pub fn estimate_part(
    graph: &UncertainGraph,
    terminals: &[VertexId],
    order: netrel_ugraph::ordering::EdgeOrder,
) -> CostEstimate {
    let start = terminals.iter().copied().min().unwrap_or(0);
    let plan = FrontierPlan::for_strategy(graph, order, start);
    let predicted_nodes = plan
        .layer_widths()
        .fold(0usize, |acc, w| acc.saturating_add(states_upper_bound(w)));
    CostEstimate {
        frontier_width: plan.max_width,
        layers: plan.layers(),
        predicted_nodes,
    }
}

/// Route one semantics part under `budget`, dispatching on the part's
/// [`PartComputation`]: connectivity parts go through the S2BDD cost model
/// ([`estimate_part`]), d-hop parts through the enumeration cost model
/// ([`estimate_dhop_part`]).
///
/// `base` supplies the knobs the planner does not decide (estimator, edge
/// order, merge rule, seed, trajectory recording); width, samples, and node
/// cap are overridden per route. `part_index` feeds the same seed
/// derivation `pro_reliability` uses, so exact-routed parts are
/// bit-interchangeable with one-shot solves.
pub fn plan_part(
    part: &SemPart,
    base: S2BddConfig,
    part_index: usize,
    budget: &PlanBudget,
) -> PartPlan {
    match part.computation {
        PartComputation::Connectivity => {
            plan_connectivity_part(&part.graph, &part.terminals, base, part_index, budget)
        }
        PartComputation::DHop { .. } => plan_dhop_part(part, base, part_index, budget),
    }
}

/// The sampling fallback for a part no exact or bounded route can serve:
/// the bit-parallel packed sampler when the configured estimator is Monte
/// Carlo (the default — one BFS pass answers 64 worlds), flat sampling when
/// it is Horvitz–Thompson (HT needs per-world occurrence probabilities the
/// packed kernel does not track). Both carry the per-part seed, so routing
/// is still a pure function of `(part, config, budget)`.
fn sampling_fallback(part_cfg: S2BddConfig, samples: usize, estimate: CostEstimate) -> PartPlan {
    match part_cfg.estimator {
        EstimatorKind::MonteCarlo => PartPlan {
            route: Route::BitSampling,
            solver: PartSolver::BitSampling {
                samples,
                seed: part_cfg.seed,
            },
            estimate,
        },
        EstimatorKind::HorvitzThompson => PartPlan {
            route: Route::Sampling,
            solver: PartSolver::Sampling {
                samples,
                estimator: part_cfg.estimator,
                seed: part_cfg.seed,
            },
            estimate,
        },
    }
}

/// Cost model for a d-hop part: recursive edge conditioning visits at most
/// `2^|E|` leaves (the BFS bounds prune most in practice, but the planner
/// budgets for the worst case), so the predicted "node" count is
/// `2^layers`, saturating. The frontier width is reported as 0 — no
/// decision diagram is built.
pub fn estimate_dhop_part(graph: &UncertainGraph) -> CostEstimate {
    let layers = graph.num_edges();
    let predicted_nodes = if layers >= usize::BITS as usize {
        usize::MAX
    } else {
        1usize << layers
    };
    CostEstimate {
        frontier_width: 0,
        layers,
        predicted_nodes,
    }
}

/// Route one d-hop part: exact recursive conditioning
/// ([`PartSolver::Enumeration`]) if the worst-case `2^|E|` leaf count fits
/// the node budget, else hop-bounded sampling (bit-parallel for MC, flat
/// for HT — see [`sampling_fallback`]). There is no bounded middle route —
/// the width-bounded S2BDD cannot express the hop-count indicator.
fn plan_dhop_part(
    part: &SemPart,
    base: S2BddConfig,
    part_index: usize,
    budget: &PlanBudget,
) -> PartPlan {
    let estimate = estimate_dhop_part(&part.graph);
    let part_cfg = part_s2bdd_config(base, part_index);
    if estimate.predicted_nodes <= budget.effective_node_budget() {
        PartPlan {
            route: Route::Exact,
            solver: PartSolver::Enumeration,
            estimate,
        }
    } else {
        sampling_fallback(part_cfg, budget.effective_sample_budget(), estimate)
    }
}

fn plan_connectivity_part(
    graph: &UncertainGraph,
    terminals: &[VertexId],
    base: S2BddConfig,
    part_index: usize,
    budget: &PlanBudget,
) -> PartPlan {
    let estimate = estimate_part(graph, terminals, base.order);
    let part_cfg = part_s2bdd_config(base, part_index);
    let node_budget = budget.effective_node_budget();
    let sample_budget = budget.effective_sample_budget();

    if estimate.predicted_nodes <= node_budget {
        // Predicted to fit: solve exactly, with the cap as the safety net
        // and the sample budget funding the fallback stratum if it trips.
        // `reduce_samples` is off so the budget early exit cannot fire on a
        // run that never deletes (it would spuriously de-exactify).
        let solver = PartSolver::S2Bdd(S2BddConfig {
            max_width: usize::MAX,
            samples: sample_budget,
            reduce_samples: false,
            node_cap: node_budget,
            ..part_cfg
        });
        PartPlan {
            route: Route::Exact,
            solver,
            estimate,
        }
    } else if estimate.frontier_width <= BOUNDED_WIDTH_LIMIT {
        // Too big to finish exactly, narrow enough that a width-bounded
        // diagram still proves useful mass: the paper's solver, with the
        // width chosen so `width · layers` stays near the node budget. The
        // node cap stays armed: the width floor means a long-enough part
        // could otherwise create `MIN_BOUNDED_WIDTH · layers` nodes and
        // silently blow the budget the caller asked for.
        let width = (node_budget / estimate.layers.max(1)).clamp(MIN_BOUNDED_WIDTH, 10_000);
        let solver = PartSolver::S2Bdd(S2BddConfig {
            max_width: width,
            samples: sample_budget,
            reduce_samples: true,
            node_cap: node_budget,
            ..part_cfg
        });
        PartPlan {
            route: Route::Bounded,
            solver,
            estimate,
        }
    } else {
        // Frontier too wide for any useful diagram: sampling (bit-parallel
        // for MC, flat for HT).
        sampling_fallback(part_cfg, sample_budget, estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_ugraph::ordering::EdgeOrder;

    fn path(n: usize) -> UncertainGraph {
        UncertainGraph::new(n, (0..n - 1).map(|i| (i, i + 1, 0.5))).unwrap()
    }

    fn clique(n: usize) -> UncertainGraph {
        netrel_datasets::clique_uniform(n, 0.5)
    }

    fn conn(g: &UncertainGraph, t: &[VertexId]) -> SemPart {
        SemPart::connectivity(g.clone(), t.to_vec())
    }

    fn dhop(g: &UncertainGraph, t: &[VertexId], d: u32) -> SemPart {
        SemPart {
            graph: g.clone(),
            terminals: t.to_vec(),
            computation: PartComputation::DHop { d },
        }
    }

    #[test]
    fn bell_table_and_saturation() {
        assert_eq!(states_upper_bound(0), 1);
        assert_eq!(states_upper_bound(3), 5);
        assert_eq!(states_upper_bound(10), 115_975);
        assert_eq!(states_upper_bound(26), usize::MAX);
        assert_eq!(states_upper_bound(1000), usize::MAX);
    }

    #[test]
    fn path_graph_predicts_tiny_and_routes_exact() {
        let g = path(50);
        let est = estimate_part(&g, &[0, 49], EdgeOrder::Bfs);
        assert_eq!(est.frontier_width, 2);
        assert!(est.predicted_nodes <= 2 * est.layers);
        let plan = plan_part(
            &conn(&g, &[0, 49]),
            S2BddConfig::default(),
            0,
            &PlanBudget::default(),
        );
        assert_eq!(plan.route, Route::Exact);
        match plan.solver {
            PartSolver::S2Bdd(cfg) => {
                assert_eq!(cfg.max_width, usize::MAX);
                assert_eq!(cfg.node_cap, PlanBudget::default().node_budget);
                assert!(!cfg.reduce_samples);
            }
            other => panic!("expected S2BDD solver, got {other:?}"),
        }
    }

    #[test]
    fn wide_clique_routes_to_bit_sampling() {
        let g = clique(60); // frontier width 60 > BOUNDED_WIDTH_LIMIT
        let est = estimate_part(&g, &[0, 59], EdgeOrder::Bfs);
        assert!(est.frontier_width > BOUNDED_WIDTH_LIMIT);
        assert_eq!(est.predicted_nodes, usize::MAX);
        // Default estimator is Monte Carlo → the packed kernel.
        let plan = plan_part(
            &conn(&g, &[0, 59]),
            S2BddConfig::default(),
            0,
            &PlanBudget::default(),
        );
        assert_eq!(plan.route, Route::BitSampling);
        match plan.solver {
            PartSolver::BitSampling { samples, .. } => {
                assert_eq!(samples, PlanBudget::default().sample_budget);
            }
            other => panic!("expected bit-sampling solver, got {other:?}"),
        }
    }

    #[test]
    fn horvitz_thompson_parts_keep_the_flat_sampling_route() {
        // HT needs per-world occurrence probabilities the packed kernel
        // does not track, so the estimator knob steers the fallback.
        let g = clique(60);
        let base = S2BddConfig {
            estimator: EstimatorKind::HorvitzThompson,
            ..S2BddConfig::default()
        };
        let plan = plan_part(&conn(&g, &[0, 59]), base, 0, &PlanBudget::default());
        assert_eq!(plan.route, Route::Sampling);
        match plan.solver {
            PartSolver::Sampling { estimator, .. } => {
                assert_eq!(estimator, EstimatorKind::HorvitzThompson);
            }
            other => panic!("expected flat sampling solver, got {other:?}"),
        }
        // Same for oversized d-hop parts.
        let plan = plan_part(&dhop(&g, &[0, 59], 2), base, 0, &PlanBudget::default());
        assert_eq!(plan.route, Route::Sampling);
    }

    #[test]
    fn small_dhop_part_routes_to_enumeration() {
        let g = path(10); // 9 edges → 512 predicted leaves
        let plan = plan_part(
            &dhop(&g, &[0, 9], 9),
            S2BddConfig::default(),
            0,
            &PlanBudget::default(),
        );
        assert_eq!(plan.route, Route::Exact);
        assert_eq!(plan.solver, PartSolver::Enumeration);
        assert_eq!(plan.estimate.predicted_nodes, 512);
        assert_eq!(plan.estimate.frontier_width, 0);
    }

    #[test]
    fn wide_dhop_part_routes_to_bit_sampling_with_part_seed() {
        let g = clique(30); // 435 edges → 2^435 saturates
        let base = S2BddConfig::default();
        let plan = plan_part(&dhop(&g, &[0, 29], 2), base, 4, &PlanBudget::default());
        assert_eq!(plan.route, Route::BitSampling);
        assert_eq!(plan.estimate.predicted_nodes, usize::MAX);
        match plan.solver {
            PartSolver::BitSampling { samples, seed } => {
                assert_eq!(samples, PlanBudget::default().sample_budget);
                assert_eq!(seed, part_s2bdd_config(base, 4).seed);
            }
            other => panic!("expected bit-sampling solver, got {other:?}"),
        }
    }

    #[test]
    fn dhop_node_budget_gates_enumeration() {
        let g = path(10); // 9 edges → 512 leaves
        let tight = PlanBudget::with_nodes(511);
        let plan = plan_part(&dhop(&g, &[0, 9], 9), S2BddConfig::default(), 0, &tight);
        assert_eq!(plan.route, Route::BitSampling);
        let roomy = PlanBudget::with_nodes(512);
        let plan = plan_part(&dhop(&g, &[0, 9], 9), S2BddConfig::default(), 0, &roomy);
        assert_eq!(plan.solver, PartSolver::Enumeration);
    }

    #[test]
    fn moderate_width_routes_bounded() {
        // A 12-wide, 60-long grid: frontier width ~13 (B(13) ≈ 2.7e7 per
        // layer blows the default budget) but far below the sampling limit.
        let (w, l) = (12usize, 60usize);
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| y * w + x;
        for y in 0..l {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y), 0.5));
                }
                if y + 1 < l {
                    edges.push((id(x, y), id(x, y + 1), 0.5));
                }
            }
        }
        let g = UncertainGraph::new(w * l, edges).unwrap();
        let t = vec![0, w * l - 1];
        let est = estimate_part(&g, &t, EdgeOrder::Bfs);
        assert!(est.frontier_width > 2 && est.frontier_width <= BOUNDED_WIDTH_LIMIT);
        let budget = PlanBudget::default();
        assert!(est.predicted_nodes > budget.node_budget);
        let plan = plan_part(&conn(&g, &t), S2BddConfig::default(), 0, &budget);
        assert_eq!(plan.route, Route::Bounded);
        match plan.solver {
            PartSolver::S2Bdd(cfg) => {
                assert!(cfg.max_width >= MIN_BOUNDED_WIDTH && cfg.max_width <= 10_000);
                assert!(cfg.reduce_samples);
            }
            other => panic!("expected S2BDD solver, got {other:?}"),
        }
    }

    #[test]
    fn time_hint_tightens_budgets_deterministically() {
        let b = PlanBudget {
            time_hint_ms: Some(2),
            ..Default::default()
        };
        assert_eq!(b.effective_node_budget(), 2 * NODES_PER_MS);
        assert_eq!(b.effective_sample_budget(), 4_000);
        // A generous hint never loosens beyond the explicit budgets.
        let roomy = PlanBudget {
            time_hint_ms: Some(1_000_000),
            ..Default::default()
        };
        assert_eq!(roomy.effective_node_budget(), roomy.node_budget);
        assert_eq!(roomy.effective_sample_budget(), roomy.sample_budget);
    }

    #[test]
    fn time_hint_is_apportioned_across_parts() {
        let b = PlanBudget {
            time_hint_ms: Some(10),
            ..Default::default()
        };
        // A 5-part query gives each part a fifth of the hinted allowance.
        let per_part = b.for_parts(5);
        assert_eq!(per_part.effective_node_budget(), 2 * NODES_PER_MS);
        assert_eq!(per_part.effective_sample_budget(), 4_000);
        // No hint: the per-part budgets pass through untouched.
        let unhinted = PlanBudget::default().for_parts(5);
        assert_eq!(unhinted, PlanBudget::default());
        // Degenerate inputs stay sane.
        assert_eq!(
            b.for_parts(0).effective_node_budget(),
            b.effective_node_budget()
        );
        assert!(b.for_parts(1_000_000).effective_sample_budget() >= 1);
    }

    #[test]
    fn seed_derivation_matches_pro() {
        let g = path(5);
        let base = S2BddConfig::default();
        let plan = plan_part(&conn(&g, &[0, 4]), base, 3, &PlanBudget::default());
        let PartSolver::S2Bdd(cfg) = plan.solver else {
            panic!("exact route expected");
        };
        assert_eq!(cfg.seed, part_s2bdd_config(base, 3).seed);
    }

    #[test]
    fn routes_serialize_as_names() {
        use serde::Serialize;
        assert_eq!(Route::Exact.to_value(), serde::Value::Str("exact".into()));
        assert_eq!(Route::Sampling.name(), "sampling");
        assert_eq!(
            Route::BitSampling.to_value(),
            serde::Value::Str("bit_sampling".into())
        );
    }
}
