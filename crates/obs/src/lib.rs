//! # netrel-obs — the in-tree observability substrate
//!
//! Every later engineering item on the roadmap (incremental mutations,
//! multi-tenant serving, perf-regression gating) needs to *see* what the
//! query pipeline did: which route the planner picked per part, how far the
//! cost model missed, whether the plan cache thrashed, where a slow query's
//! time went. This crate is that substrate, built under two hard
//! constraints:
//!
//! 1. **Bit-invariance** — instrumentation may read clocks and bump
//!    counters, but it must never touch an RNG, reorder work, or change a
//!    single answer bit. Everything here is passive: atomic counters,
//!    fixed-bucket histograms, and span builders that record monotonic
//!    timestamps ([`std::time::Instant`], never wall clocks).
//! 2. **Near-free when disabled** — the no-op [`Recorder`] is an `Option`
//!    that is `None`; every record site is an inlined `if let Some` on an
//!    `Arc`, and the thread-local trace hook ([`trace::span`]) is a
//!    single thread-local read when no trace is installed.
//!
//! Three layers:
//!
//! * [`metrics`] — [`Counter`] (saturating atomic), [`Histogram`]
//!   (fixed exponential bucket edges, Prometheus cumulative-`le`
//!   semantics), the fixed [`Metrics`] catalogue, and
//!   [`MetricsSnapshot`] with both JSON (serde) and Prometheus-text
//!   ([`MetricsSnapshot::to_prometheus`]) exposition.
//! * [`trace`] — bounded per-query span trees: [`TraceBuilder`] accumulates
//!   [`TraceSpan`]s against one monotonic anchor; [`QueryTrace`] is the
//!   serializable (and round-trippable) result. A thread-local hook lets
//!   deep layers (preprocessing, semantics planning) emit spans without
//!   threading a builder through every signature.
//! * [`report`] — the unified benchmark report schema ([`BenchReport`])
//!   shared by the throughput bins and the `bench-diff` tolerance checker.
//!
//! The metric catalogue, span taxonomy, and exposition formats are
//! documented in `docs/observability.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod metrics;
pub mod report;
pub mod trace;

pub use metrics::{
    Counter, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot, Recorder, RouteCountsSnapshot,
};
pub use report::{BenchReport, BenchRow, CacheCounts, DiffViolation, RouteCounts};
pub use trace::{QueryTrace, SpanGuard, TraceBuilder, TraceSpan};
