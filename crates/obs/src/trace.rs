//! Bounded per-query span traces.
//!
//! A [`TraceBuilder`] accumulates [`TraceSpan`]s against a single monotonic
//! anchor ([`std::time::Instant`] captured at builder creation), so span
//! timestamps are nanosecond offsets that serialize portably and never
//! consult a wall clock. The span count is capped ([`SPAN_CAP`]): past the
//! cap new spans are counted in [`QueryTrace::dropped`] rather than
//! allocated, so a pathological query cannot balloon its own answer.
//!
//! Deep layers (preprocessing, semantics planning) emit spans through a
//! thread-local hook — [`install`] a builder, run the pipeline, [`take`] it
//! back — so instrumentation does not thread a builder through every
//! signature. When no builder is installed, [`span`] is a single
//! thread-local read returning a no-op guard.

use std::cell::RefCell;
use std::time::Instant;

/// Maximum spans retained per trace; further opens only bump `dropped`.
pub const SPAN_CAP: usize = 256;

/// Maximum attributes retained per span.
const ATTR_CAP: usize = 16;

/// One timed region of a query, as a closed interval of nanosecond offsets
/// from the trace anchor, with an optional parent forming the span tree.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TraceSpan {
    /// Span name from the fixed taxonomy (e.g. `"plan"`, `"part.solve"`).
    pub name: String,
    /// Start offset from the trace anchor, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace anchor, nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Index of the parent span in [`QueryTrace::spans`]; `None` for root.
    pub parent: Option<u32>,
    /// Small key/value annotations (route names, part indices, cache
    /// outcomes); capped per span.
    pub attrs: Vec<(String, String)>,
}

/// A finished span tree, returned alongside an answer when tracing was
/// requested. Round-trips through serde.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct QueryTrace {
    /// All retained spans; index 0 is the root `"query"` span, and every
    /// `parent` index points earlier in the vector.
    pub spans: Vec<TraceSpan>,
    /// Spans discarded after [`SPAN_CAP`] was reached.
    pub dropped: u64,
}

impl QueryTrace {
    /// Total traced duration: the root span's extent (0 when empty).
    pub fn total_ns(&self) -> u64 {
        self.spans
            .first()
            .map(|s| s.end_ns.saturating_sub(s.start_ns))
            .unwrap_or(0)
    }

    /// The first span with this name, if any.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Accumulates spans for one query. Creation opens the root `"query"` span;
/// [`TraceBuilder::finish`] closes whatever is still open and yields the
/// [`QueryTrace`].
#[derive(Debug)]
pub struct TraceBuilder {
    anchor: Instant,
    spans: Vec<TraceSpan>,
    /// Stack of open span indices; the top is the parent of the next open.
    stack: Vec<u32>,
    dropped: u64,
    cap: usize,
}

impl TraceBuilder {
    /// A builder anchored at "now", with the root span already open.
    pub fn new() -> Self {
        Self::with_cap(SPAN_CAP)
    }

    /// A builder with an explicit span cap (testing hook).
    pub fn with_cap(cap: usize) -> Self {
        let mut b = TraceBuilder {
            anchor: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
            dropped: 0,
            cap: cap.max(1),
        };
        let root = b.push_span("query", 0, None);
        debug_assert_eq!(root, Some(0));
        if let Some(id) = root {
            b.stack.push(id);
        }
        b
    }

    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of query time.
        self.anchor.elapsed().as_nanos() as u64
    }

    fn push_span(&mut self, name: &str, start_ns: u64, parent: Option<u32>) -> Option<u32> {
        if self.spans.len() >= self.cap {
            self.dropped += 1;
            return None;
        }
        let id = self.spans.len() as u32;
        self.spans.push(TraceSpan {
            name: name.to_string(),
            start_ns,
            end_ns: start_ns,
            parent,
            attrs: Vec::new(),
        });
        Some(id)
    }

    /// Open a child of the innermost open span. Returns `None` (and counts
    /// a drop) past the cap; children opened under a dropped span attach to
    /// the nearest retained ancestor.
    pub fn open(&mut self, name: &str) -> Option<u32> {
        let start = self.now_ns();
        let parent = self.stack.last().copied();
        let id = self.push_span(name, start, parent)?;
        self.stack.push(id);
        Some(id)
    }

    /// Close an open span, stamping its end. Tolerates out-of-order closes:
    /// anything opened after `id` and still open is closed with it.
    pub fn close(&mut self, id: u32) {
        let end = self.now_ns();
        if let Some(pos) = self.stack.iter().rposition(|&s| s == id) {
            for &open in &self.stack[pos..] {
                if let Some(span) = self.spans.get_mut(open as usize) {
                    span.end_ns = end;
                }
            }
            self.stack.truncate(pos);
        }
    }

    /// Record an already-measured interval as a child of the innermost open
    /// span — used when work ran elsewhere (e.g. on a pool worker) and its
    /// `Instant` pair is rebased onto this trace's anchor.
    pub fn add_timed(&mut self, name: &str, start: Instant, end: Instant) -> Option<u32> {
        let start_ns = start.saturating_duration_since(self.anchor).as_nanos() as u64;
        let end_ns = end.saturating_duration_since(self.anchor).as_nanos() as u64;
        let parent = self.stack.last().copied();
        let id = self.push_span(name, start_ns, parent)?;
        if let Some(span) = self.spans.get_mut(id as usize) {
            span.end_ns = end_ns.max(start_ns);
        }
        Some(id)
    }

    /// Attach a key/value attribute to a span (dropped past the per-span
    /// attribute cap).
    pub fn attr(&mut self, id: u32, key: &str, value: impl Into<String>) {
        if let Some(span) = self.spans.get_mut(id as usize) {
            if span.attrs.len() < ATTR_CAP {
                span.attrs.push((key.to_string(), value.into()));
            }
        }
    }

    /// Close every open span (root included) and yield the trace.
    pub fn finish(mut self) -> QueryTrace {
        let end = self.now_ns();
        for &open in &self.stack {
            if let Some(span) = self.spans.get_mut(open as usize) {
                span.end_ns = end;
            }
        }
        QueryTrace {
            spans: self.spans,
            dropped: self.dropped,
        }
    }
}

impl Default for TraceBuilder {
    fn default() -> Self {
        TraceBuilder::new()
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<TraceBuilder>> = const { RefCell::new(None) };
}

/// Install a builder as this thread's active trace. Returns the previously
/// installed builder, if any (callers re-installing around nested phases
/// should restore it).
pub fn install(builder: TraceBuilder) -> Option<TraceBuilder> {
    ACTIVE.with(|a| a.borrow_mut().replace(builder))
}

/// Remove and return this thread's active trace builder.
pub fn take() -> Option<TraceBuilder> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Run `f` against the active builder, if one is installed. The single
/// thread-local read is the entire disabled-path cost.
pub fn with_active<R>(f: impl FnOnce(&mut TraceBuilder) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(f))
}

/// Open a named span on the active trace (no-op when none is installed);
/// the returned guard closes it on drop.
pub fn span(name: &str) -> SpanGuard {
    SpanGuard {
        id: with_active(|b| b.open(name)).flatten(),
    }
}

/// Closes its span when dropped. Obtained from [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    id: Option<u32>,
}

impl SpanGuard {
    /// Attach an attribute to the guarded span (no-op for a no-op guard).
    pub fn attr(&self, key: &str, value: impl Into<String>) {
        if let Some(id) = self.id {
            let value = value.into();
            with_active(|b| b.attr(id, key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            with_active(|b| b.close(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_opens_root_and_nests_children() {
        let mut b = TraceBuilder::new();
        let plan = b.open("plan").unwrap();
        let prune = b.open("preprocess.prune").unwrap();
        b.close(prune);
        b.close(plan);
        let t = b.finish();
        assert_eq!(t.spans[0].name, "query");
        assert_eq!(t.spans[0].parent, None);
        assert_eq!(t.spans[plan as usize].parent, Some(0));
        assert_eq!(t.spans[prune as usize].parent, Some(plan));
        assert_eq!(t.dropped, 0);
        for s in &t.spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn cap_drops_spans_but_keeps_counting() {
        let mut b = TraceBuilder::with_cap(2);
        let a = b.open("kept").unwrap();
        assert!(b.open("dropped").is_none());
        assert!(b.open("also-dropped").is_none());
        b.close(a);
        let t = b.finish();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.dropped, 2);
    }

    #[test]
    fn dropped_opens_leave_the_open_stack_untouched() {
        let mut b = TraceBuilder::with_cap(3);
        let plan = b.open("plan").unwrap();
        let inner = b.open("inner").unwrap(); // fills the cap
        assert!(b.open("dropped").is_none());
        // The dropped span never joined the stack: `inner` is still the
        // innermost open span and closes normally.
        b.close(inner);
        b.close(plan);
        let t = b.finish();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.spans[inner as usize].parent, Some(plan));
    }

    #[test]
    fn out_of_order_close_closes_inner_spans() {
        let mut b = TraceBuilder::new();
        let outer = b.open("outer").unwrap();
        let inner = b.open("inner").unwrap();
        b.close(outer); // also closes `inner`
        let next = b.open("next").unwrap();
        let t = b.finish();
        assert_eq!(t.spans[next as usize].parent, Some(0));
        assert!(t.spans[inner as usize].end_ns >= t.spans[inner as usize].start_ns);
    }

    #[test]
    fn add_timed_rebases_onto_anchor() {
        let mut b = TraceBuilder::new();
        let start = Instant::now();
        let end = start + std::time::Duration::from_micros(50);
        let id = b.add_timed("part.solve", start, end).unwrap();
        b.attr(id, "route", "exact");
        let t = b.finish();
        let s = &t.spans[id as usize];
        assert_eq!(s.end_ns - s.start_ns, 50_000);
        assert_eq!(s.attrs, vec![("route".to_string(), "exact".to_string())]);
    }

    #[test]
    fn attrs_cap_per_span() {
        let mut b = TraceBuilder::new();
        let id = b.open("busy").unwrap();
        for i in 0..40 {
            b.attr(id, "k", format!("{i}"));
        }
        b.close(id);
        assert_eq!(b.finish().spans[id as usize].attrs.len(), super::ATTR_CAP);
    }

    #[test]
    fn thread_local_hook_is_noop_without_install() {
        {
            let g = span("orphan");
            g.attr("k", "v");
        } // must not panic, must not record anywhere
        assert!(take().is_none());
    }

    #[test]
    fn thread_local_hook_records_into_installed_builder() {
        assert!(install(TraceBuilder::new()).is_none());
        {
            let g = span("preprocess.decompose");
            g.attr("parts", "3");
        }
        let t = take().unwrap().finish();
        let s = t.find("preprocess.decompose").unwrap();
        assert_eq!(s.parent, Some(0));
        assert_eq!(s.attrs[0], ("parts".to_string(), "3".to_string()));
    }

    #[test]
    fn trace_round_trips_through_serde() {
        use serde::Serialize as _;
        let mut b = TraceBuilder::new();
        let id = b.open("plan").unwrap();
        b.attr(id, "semantics", "k-terminal");
        b.close(id);
        let t = b.finish();
        let json = serde_json::to_string(&t.to_value()).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spans.len(), t.spans.len());
        assert_eq!(back.dropped, t.dropped);
        for (a, b) in back.spans.iter().zip(&t.spans) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.start_ns, b.start_ns);
            assert_eq!(a.end_ns, b.end_ns);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.attrs, b.attrs);
        }
    }
}
