//! Counters, histograms, the fixed metric catalogue, and its snapshots.
//!
//! The catalogue is a *fixed struct*, not a dynamic registry: every family
//! the stack records is a named field of [`Metrics`], so a metric cannot be
//! misspelled at a record site, snapshotting is a plain field walk, and the
//! disabled path has no map lookups. Families follow Prometheus naming
//! (`netrel_<subsystem>_<name>[_total|_seconds]`) and the text exposition
//! renders the standard `_bucket{le=…}` / `_sum` / `_count` triple per
//! histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotone event counter. `add` saturates at `u64::MAX` instead of
/// wrapping, so a (pathologically) overflowed counter pins at the ceiling
/// rather than appearing to reset.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        // `fetch_update` with a total function never yields `Err`.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                Some(c.saturating_add(n))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket upper bounds (seconds) for latency histograms: 1µs to 60s in a
/// coarse exponential ladder. The final implicit bucket is `+Inf`.
pub const TIME_EDGES_SECONDS: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 2.5e-1, 1.0, 5.0, 15.0, 60.0,
];

/// Bucket upper bounds for size/count histograms (node counts, cache ages,
/// parts per query): powers of ten from 1 to 1e9, `+Inf` beyond.
pub const COUNT_EDGES: [f64; 10] = [1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];

/// Bucket upper bounds for percentage histograms (lane utilization): a
/// decile ladder up to 100. Everything a well-formed percentage can be
/// lands in an explicit bucket; `+Inf` only catches bad inputs.
pub const PERCENT_EDGES: [f64; 10] = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];

/// A fixed-bucket histogram with atomic bucket counts and a lock-free sum.
///
/// Bucket edges are `'static` upper bounds; an observation lands in the
/// first bucket whose edge is `>= v` (the last, implicit bucket is `+Inf`,
/// which also absorbs NaN). Counts saturate like [`Counter`]; the sum is an
/// `f64` updated by a compare-exchange loop on its bit pattern.
#[derive(Debug)]
pub struct Histogram {
    edges: &'static [f64],
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit `'static` bucket edges (ascending).
    pub fn with_edges(edges: &'static [f64]) -> Self {
        Histogram {
            edges,
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// A latency histogram over [`TIME_EDGES_SECONDS`].
    pub fn time() -> Self {
        Self::with_edges(&TIME_EDGES_SECONDS)
    }

    /// A size/count histogram over [`COUNT_EDGES`].
    pub fn count() -> Self {
        Self::with_edges(&COUNT_EDGES)
    }

    /// A percentage histogram over [`PERCENT_EDGES`].
    pub fn percent() -> Self {
        Self::with_edges(&PERCENT_EDGES)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let i = self
            .edges
            .iter()
            .position(|&e| v <= e)
            .unwrap_or(self.edges.len());
        let _ = self.buckets[i].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.saturating_add(1))
        });
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Record a count (histograms over [`COUNT_EDGES`]). Saturating cast.
    #[inline]
    pub fn observe_count(&self, n: usize) {
        self.observe(n as f64);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().fold(0u64, |a, &c| a.saturating_add(c));
        HistogramSnapshot {
            edges: self.edges.to_vec(),
            counts,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count,
        }
    }
}

/// Frozen histogram state: per-bucket counts (the last entry is the
/// implicit `+Inf` bucket, so `counts.len() == edges.len() + 1`), the sum
/// of observations, and the total count.
#[derive(Clone, Debug, serde::Serialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds, ascending.
    pub edges: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; one longer than
    /// `edges` for the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `q`-quantile via [`netrel_numeric::histogram_quantile`]
    /// (linear interpolation within the containing bucket, Prometheus
    /// style).
    pub fn quantile(&self, q: f64) -> f64 {
        netrel_numeric::histogram_quantile(&self.edges, &self.counts, q)
    }
}

/// The fixed metric catalogue for the whole stack. Record sites live in
/// `netrel-engine` (and its service); the catalogue itself is
/// engine-agnostic so lower layers can stay dependency-light.
#[derive(Debug)]
pub struct Metrics {
    // -- engine --------------------------------------------------------
    /// Queries answered through the classic (non-planned) path.
    pub queries_classic: Counter,
    /// Queries answered through the adaptive planner.
    pub queries_planned: Counter,
    /// Queries that failed planning or solving.
    pub query_errors: Counter,
    /// Batches executed (a single `run` counts as a one-query batch).
    pub batches: Counter,
    /// Per-query semantics-planning latency (preprocess + routing).
    pub plan_seconds: Histogram,
    /// Per-query recombination latency.
    pub combine_seconds: Histogram,
    /// Decomposed parts per query.
    pub parts_per_query: Histogram,
    /// `GraphIndex` build latency at registration.
    pub index_build_seconds: Histogram,
    // -- mutations -----------------------------------------------------
    /// `update_edge_prob` mutations committed.
    pub mutations_update_prob: Counter,
    /// `add_edge` mutations committed.
    pub mutations_add_edge: Counter,
    /// `remove_edge` mutations committed.
    pub mutations_remove_edge: Counter,
    /// Mutations whose `GraphIndex` was patched in place.
    pub index_patched: Counter,
    /// Mutations that fell back to a full `GraphIndex` rebuild.
    pub index_rebuilt: Counter,
    /// Plan-cache entries invalidated by mutations.
    pub invalidated_plans: Counter,
    /// World-bank entries invalidated by mutations.
    pub invalidated_worlds: Counter,
    /// What-if evaluations (`evaluate_with`, including maximizer probes).
    pub whatif_queries: Counter,
    // -- planner -------------------------------------------------------
    /// Parts routed to the unbounded-width exact S2BDD.
    pub route_exact: Counter,
    /// Parts routed to the width-bounded S2BDD.
    pub route_bounded: Counter,
    /// Parts routed to flat possible-world sampling.
    pub route_sampling: Counter,
    /// Parts routed to the bit-parallel (64 worlds per `u64`) sampler.
    pub route_bit_sampling: Counter,
    /// Parts routed to exact d-hop enumeration.
    pub route_enumeration: Counter,
    /// Lane utilization (percent of the final 64-lane block used) per
    /// bit-sampling-routed part. 100 means `samples` was a multiple of 64;
    /// low values flag budgets wasting most of their last packed word.
    pub bit_lane_utilization_percent: Histogram,
    /// Solves whose in-solver node cap tripped (cost-model underestimate).
    pub node_cap_hits: Counter,
    /// Cost-model predicted S2BDD node counts, one observation per planned
    /// part (saturated predictions land in `+Inf`).
    pub predicted_nodes: Histogram,
    /// Actual S2BDD nodes created, one observation per fresh S2BDD solve.
    pub actual_nodes: Histogram,
    // -- plan cache ----------------------------------------------------
    /// Part lookups served from the plan cache.
    pub cache_hits: Counter,
    /// Part lookups that required a solve (or joined an in-batch job).
    pub cache_misses: Counter,
    /// Results published to the cache.
    pub cache_insertions: Counter,
    /// Entries evicted to make room.
    pub cache_evictions: Counter,
    /// Age (in cache ticks since last use) of evicted entries.
    pub cache_eviction_age: Histogram,
    // -- executor ------------------------------------------------------
    /// Deduplicated part-solve jobs dispatched to the worker pool.
    pub jobs: Counter,
    /// Per-job solve latency.
    pub part_solve_seconds: Histogram,
    /// Per-job queue wait: batch dispatch to job start.
    pub queue_wait_seconds: Histogram,
    /// Per-worker busy time per batch (sum of its job durations).
    pub worker_busy_seconds: Histogram,
    // -- service -------------------------------------------------------
    /// `register` requests handled.
    pub requests_register: Counter,
    /// `query` requests handled.
    pub requests_query: Counter,
    /// `batch` requests handled.
    pub requests_batch: Counter,
    /// `stats` requests handled.
    pub requests_stats: Counter,
    /// `metrics` requests handled.
    pub requests_metrics: Counter,
    /// `mutate` requests handled.
    pub requests_mutate: Counter,
    /// `whatif` requests handled.
    pub requests_whatif: Counter,
    /// `maximize` requests handled.
    pub requests_maximize: Counter,
    /// Requests answered with `"ok": false`.
    pub request_errors: Counter,
    /// Per-request handling latency.
    pub request_seconds: Histogram,
}

impl Metrics {
    /// A zeroed catalogue.
    pub fn new() -> Self {
        Metrics {
            queries_classic: Counter::new(),
            queries_planned: Counter::new(),
            query_errors: Counter::new(),
            batches: Counter::new(),
            plan_seconds: Histogram::time(),
            combine_seconds: Histogram::time(),
            parts_per_query: Histogram::count(),
            index_build_seconds: Histogram::time(),
            mutations_update_prob: Counter::new(),
            mutations_add_edge: Counter::new(),
            mutations_remove_edge: Counter::new(),
            index_patched: Counter::new(),
            index_rebuilt: Counter::new(),
            invalidated_plans: Counter::new(),
            invalidated_worlds: Counter::new(),
            whatif_queries: Counter::new(),
            route_exact: Counter::new(),
            route_bounded: Counter::new(),
            route_sampling: Counter::new(),
            route_bit_sampling: Counter::new(),
            route_enumeration: Counter::new(),
            bit_lane_utilization_percent: Histogram::percent(),
            node_cap_hits: Counter::new(),
            predicted_nodes: Histogram::count(),
            actual_nodes: Histogram::count(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_insertions: Counter::new(),
            cache_evictions: Counter::new(),
            cache_eviction_age: Histogram::count(),
            jobs: Counter::new(),
            part_solve_seconds: Histogram::time(),
            queue_wait_seconds: Histogram::time(),
            worker_busy_seconds: Histogram::time(),
            requests_register: Counter::new(),
            requests_query: Counter::new(),
            requests_batch: Counter::new(),
            requests_stats: Counter::new(),
            requests_metrics: Counter::new(),
            requests_mutate: Counter::new(),
            requests_whatif: Counter::new(),
            requests_maximize: Counter::new(),
            request_errors: Counter::new(),
            request_seconds: Histogram::time(),
        }
    }

    /// Freeze the catalogue into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_classic: self.queries_classic.get(),
            queries_planned: self.queries_planned.get(),
            query_errors: self.query_errors.get(),
            batches: self.batches.get(),
            plan_seconds: self.plan_seconds.snapshot(),
            combine_seconds: self.combine_seconds.snapshot(),
            parts_per_query: self.parts_per_query.snapshot(),
            index_build_seconds: self.index_build_seconds.snapshot(),
            mutations_update_prob: self.mutations_update_prob.get(),
            mutations_add_edge: self.mutations_add_edge.get(),
            mutations_remove_edge: self.mutations_remove_edge.get(),
            index_patched: self.index_patched.get(),
            index_rebuilt: self.index_rebuilt.get(),
            invalidated_plans: self.invalidated_plans.get(),
            invalidated_worlds: self.invalidated_worlds.get(),
            whatif_queries: self.whatif_queries.get(),
            routes: RouteCountsSnapshot {
                exact: self.route_exact.get(),
                bounded: self.route_bounded.get(),
                sampling: self.route_sampling.get(),
                bit_sampling: self.route_bit_sampling.get(),
                enumeration: self.route_enumeration.get(),
            },
            bit_lane_utilization_percent: self.bit_lane_utilization_percent.snapshot(),
            node_cap_hits: self.node_cap_hits.get(),
            predicted_nodes: self.predicted_nodes.snapshot(),
            actual_nodes: self.actual_nodes.snapshot(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_insertions: self.cache_insertions.get(),
            cache_evictions: self.cache_evictions.get(),
            cache_eviction_age: self.cache_eviction_age.snapshot(),
            jobs: self.jobs.get(),
            part_solve_seconds: self.part_solve_seconds.snapshot(),
            queue_wait_seconds: self.queue_wait_seconds.snapshot(),
            worker_busy_seconds: self.worker_busy_seconds.snapshot(),
            requests_register: self.requests_register.get(),
            requests_query: self.requests_query.get(),
            requests_batch: self.requests_batch.get(),
            requests_stats: self.requests_stats.get(),
            requests_metrics: self.requests_metrics.get(),
            requests_mutate: self.requests_mutate.get(),
            requests_whatif: self.requests_whatif.get(),
            requests_maximize: self.requests_maximize.get(),
            request_errors: self.request_errors.get(),
            request_seconds: self.request_seconds.snapshot(),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Planner route decisions, frozen.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct RouteCountsSnapshot {
    /// Exact unbounded-width S2BDD route.
    pub exact: u64,
    /// Width-bounded S2BDD route.
    pub bounded: u64,
    /// Flat-sampling route.
    pub sampling: u64,
    /// Bit-parallel sampling route.
    pub bit_sampling: u64,
    /// Exact d-hop enumeration route.
    pub enumeration: u64,
}

/// A frozen, serializable copy of the whole [`Metrics`] catalogue — the
/// JSON side of the `metrics` exposition; [`MetricsSnapshot::to_prometheus`]
/// renders the text side from the same data.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MetricsSnapshot {
    /// Queries answered through the classic path.
    pub queries_classic: u64,
    /// Queries answered through the adaptive planner.
    pub queries_planned: u64,
    /// Queries that failed planning or solving.
    pub query_errors: u64,
    /// Batches executed.
    pub batches: u64,
    /// Per-query semantics-planning latency.
    pub plan_seconds: HistogramSnapshot,
    /// Per-query recombination latency.
    pub combine_seconds: HistogramSnapshot,
    /// Decomposed parts per query.
    pub parts_per_query: HistogramSnapshot,
    /// `GraphIndex` build latency.
    pub index_build_seconds: HistogramSnapshot,
    /// `update_edge_prob` mutations committed.
    pub mutations_update_prob: u64,
    /// `add_edge` mutations committed.
    pub mutations_add_edge: u64,
    /// `remove_edge` mutations committed.
    pub mutations_remove_edge: u64,
    /// Mutations whose `GraphIndex` was patched in place.
    pub index_patched: u64,
    /// Mutations that fell back to a full `GraphIndex` rebuild.
    pub index_rebuilt: u64,
    /// Plan-cache entries invalidated by mutations.
    pub invalidated_plans: u64,
    /// World-bank entries invalidated by mutations.
    pub invalidated_worlds: u64,
    /// What-if evaluations (including maximizer probes).
    pub whatif_queries: u64,
    /// Planner route decisions.
    pub routes: RouteCountsSnapshot,
    /// Final-block lane utilization per bit-sampling-routed part.
    pub bit_lane_utilization_percent: HistogramSnapshot,
    /// Node-cap safety-net trips.
    pub node_cap_hits: u64,
    /// Cost-model node predictions.
    pub predicted_nodes: HistogramSnapshot,
    /// Actual S2BDD nodes created.
    pub actual_nodes: HistogramSnapshot,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache insertions.
    pub cache_insertions: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Tick age of evicted entries.
    pub cache_eviction_age: HistogramSnapshot,
    /// Part-solve jobs dispatched.
    pub jobs: u64,
    /// Per-job solve latency.
    pub part_solve_seconds: HistogramSnapshot,
    /// Per-job queue wait.
    pub queue_wait_seconds: HistogramSnapshot,
    /// Per-worker busy time per batch.
    pub worker_busy_seconds: HistogramSnapshot,
    /// `register` requests handled.
    pub requests_register: u64,
    /// `query` requests handled.
    pub requests_query: u64,
    /// `batch` requests handled.
    pub requests_batch: u64,
    /// `stats` requests handled.
    pub requests_stats: u64,
    /// `metrics` requests handled.
    pub requests_metrics: u64,
    /// `mutate` requests handled.
    pub requests_mutate: u64,
    /// `whatif` requests handled.
    pub requests_whatif: u64,
    /// `maximize` requests handled.
    pub requests_maximize: u64,
    /// Requests answered with an error.
    pub request_errors: u64,
    /// Per-request handling latency.
    pub request_seconds: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Render the snapshot in the Prometheus text exposition format
    /// (`# TYPE` headers, `_total` counters, cumulative `_bucket{le=…}` /
    /// `_sum` / `_count` triples per histogram).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        push_counter_family(
            &mut out,
            "netrel_queries_total",
            &[
                ("path", "classic", self.queries_classic),
                ("path", "planned", self.queries_planned),
            ],
        );
        push_counter(&mut out, "netrel_query_errors_total", self.query_errors);
        push_counter(&mut out, "netrel_batches_total", self.batches);
        push_histogram(&mut out, "netrel_plan_seconds", &self.plan_seconds);
        push_histogram(&mut out, "netrel_combine_seconds", &self.combine_seconds);
        push_histogram(&mut out, "netrel_parts_per_query", &self.parts_per_query);
        push_histogram(
            &mut out,
            "netrel_index_build_seconds",
            &self.index_build_seconds,
        );
        push_counter_family(
            &mut out,
            "netrel_mutations_total",
            &[
                ("op", "update_prob", self.mutations_update_prob),
                ("op", "add_edge", self.mutations_add_edge),
                ("op", "remove_edge", self.mutations_remove_edge),
            ],
        );
        push_counter_family(
            &mut out,
            "netrel_index_maintenance_total",
            &[
                ("kind", "patched", self.index_patched),
                ("kind", "rebuilt", self.index_rebuilt),
            ],
        );
        push_counter_family(
            &mut out,
            "netrel_invalidations_total",
            &[
                ("target", "plans", self.invalidated_plans),
                ("target", "worlds", self.invalidated_worlds),
            ],
        );
        push_counter(&mut out, "netrel_whatif_queries_total", self.whatif_queries);
        push_counter_family(
            &mut out,
            "netrel_planner_route_total",
            &[
                ("route", "exact", self.routes.exact),
                ("route", "bounded", self.routes.bounded),
                ("route", "sampling", self.routes.sampling),
                ("route", "bit_sampling", self.routes.bit_sampling),
                ("route", "enumeration", self.routes.enumeration),
            ],
        );
        push_histogram(
            &mut out,
            "netrel_bit_lane_utilization_percent",
            &self.bit_lane_utilization_percent,
        );
        push_counter(
            &mut out,
            "netrel_planner_node_cap_hits_total",
            self.node_cap_hits,
        );
        push_histogram(
            &mut out,
            "netrel_planner_predicted_nodes",
            &self.predicted_nodes,
        );
        push_histogram(&mut out, "netrel_planner_actual_nodes", &self.actual_nodes);
        push_counter(&mut out, "netrel_cache_hits_total", self.cache_hits);
        push_counter(&mut out, "netrel_cache_misses_total", self.cache_misses);
        push_counter(
            &mut out,
            "netrel_cache_insertions_total",
            self.cache_insertions,
        );
        push_counter(
            &mut out,
            "netrel_cache_evictions_total",
            self.cache_evictions,
        );
        push_histogram(
            &mut out,
            "netrel_cache_eviction_age_ticks",
            &self.cache_eviction_age,
        );
        push_counter(&mut out, "netrel_executor_jobs_total", self.jobs);
        push_histogram(
            &mut out,
            "netrel_part_solve_seconds",
            &self.part_solve_seconds,
        );
        push_histogram(
            &mut out,
            "netrel_queue_wait_seconds",
            &self.queue_wait_seconds,
        );
        push_histogram(
            &mut out,
            "netrel_worker_busy_seconds",
            &self.worker_busy_seconds,
        );
        push_counter_family(
            &mut out,
            "netrel_requests_total",
            &[
                ("op", "register", self.requests_register),
                ("op", "query", self.requests_query),
                ("op", "batch", self.requests_batch),
                ("op", "stats", self.requests_stats),
                ("op", "metrics", self.requests_metrics),
                ("op", "mutate", self.requests_mutate),
                ("op", "whatif", self.requests_whatif),
                ("op", "maximize", self.requests_maximize),
            ],
        );
        push_counter(&mut out, "netrel_request_errors_total", self.request_errors);
        push_histogram(&mut out, "netrel_request_seconds", &self.request_seconds);
        out
    }
}

fn push_counter(out: &mut String, name: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn push_counter_family(out: &mut String, name: &str, series: &[(&str, &str, u64)]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} counter");
    for (label, value, count) in series {
        let _ = writeln!(out, "{name}{{{label}=\"{value}\"}} {count}");
    }
}

fn push_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (edge, count) in h.edges.iter().zip(&h.counts) {
        cumulative = cumulative.saturating_add(*count);
        let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// A cloneable handle to a shared [`Metrics`] catalogue — or the no-op.
///
/// The disabled recorder is a `None`; every record site compiles to one
/// branch on the option, so the uninstrumented hot path pays (near) nothing
/// and, critically, *cannot* change behavior: the recorder owns no RNG and
/// no scheduling decision, only counters and clocks.
#[derive(Clone, Debug, Default)]
pub struct Recorder(Option<Arc<Metrics>>);

impl Recorder {
    /// The static no-op recorder: records nothing, costs one branch.
    pub fn noop() -> Self {
        Recorder(None)
    }

    /// A live recorder over a fresh catalogue.
    pub fn enabled() -> Self {
        Recorder(Some(Arc::new(Metrics::new())))
    }

    /// A recorder sharing an existing catalogue.
    pub fn with_metrics(metrics: Arc<Metrics>) -> Self {
        Recorder(Some(metrics))
    }

    /// The catalogue, if recording.
    #[inline]
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.0.as_ref()
    }

    /// Whether this recorder records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Snapshot the catalogue (`None` for the no-op recorder).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(|m| m.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::with_edges(&[1.0, 10.0, 100.0]);
        // Exactly on an edge lands in that edge's bucket (le semantics).
        h.observe(1.0);
        h.observe(10.0);
        h.observe(100.0);
        // Strictly above the last edge lands in +Inf.
        h.observe(100.5);
        // Below the first edge lands in the first bucket.
        h.observe(0.0);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 211.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_absorbs_nan_and_infinity_in_the_overflow_bucket() {
        let h = Histogram::with_edges(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.counts[1], 2);
    }

    #[test]
    fn time_and_count_ladders_are_ascending() {
        for w in TIME_EDGES_SECONDS.windows(2) {
            assert!(w[0] < w[1]);
        }
        for w in COUNT_EDGES.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn snapshot_quantiles_interpolate() {
        let h = Histogram::with_edges(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(3.0);
        }
        let s = h.snapshot();
        let p25 = s.quantile(0.25);
        let p75 = s.quantile(0.75);
        assert!(p25 <= 1.0, "{p25}");
        assert!((2.0..=4.0).contains(&p75), "{p75}");
        assert!((s.mean() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn prometheus_text_renders_required_families() {
        let m = Metrics::new();
        m.queries_classic.inc();
        m.route_sampling.add(3);
        m.route_bit_sampling.add(4);
        m.bit_lane_utilization_percent.observe(62.5);
        m.cache_hits.add(2);
        m.part_solve_seconds.observe(0.002);
        m.mutations_update_prob.add(5);
        m.index_rebuilt.add(2);
        m.invalidated_worlds.add(9);
        m.whatif_queries.add(6);
        m.requests_mutate.add(8);
        let text = m.snapshot().to_prometheus();
        for family in [
            "# TYPE netrel_queries_total counter",
            "netrel_queries_total{path=\"classic\"} 1",
            "netrel_planner_route_total{route=\"sampling\"} 3",
            "netrel_planner_route_total{route=\"bit_sampling\"} 4",
            "# TYPE netrel_bit_lane_utilization_percent histogram",
            "netrel_bit_lane_utilization_percent_bucket{le=\"70\"} 1",
            "netrel_cache_hits_total 2",
            "# TYPE netrel_part_solve_seconds histogram",
            "netrel_part_solve_seconds_bucket{le=\"+Inf\"} 1",
            "netrel_part_solve_seconds_count 1",
            "netrel_mutations_total{op=\"update_prob\"} 5",
            "netrel_mutations_total{op=\"add_edge\"} 0",
            "netrel_index_maintenance_total{kind=\"rebuilt\"} 2",
            "netrel_invalidations_total{target=\"worlds\"} 9",
            "netrel_whatif_queries_total 6",
            "netrel_requests_total{op=\"mutate\"} 8",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let h = Histogram::with_edges(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(5.0);
        let m = Metrics::new();
        // Render through a snapshot wearing this histogram's data.
        let mut snap = m.snapshot();
        snap.part_solve_seconds = h.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("netrel_part_solve_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("netrel_part_solve_seconds_bucket{le=\"2\"} 2"));
        assert!(text.contains("netrel_part_solve_seconds_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn snapshot_serializes_to_json() {
        use serde::Serialize as _;
        let m = Metrics::new();
        m.cache_misses.add(7);
        let v = m.snapshot().to_value();
        assert_eq!(v.get("cache_misses"), Some(&serde::Value::U64(7)));
        assert!(v
            .get("plan_seconds")
            .and_then(|h| h.get("counts"))
            .is_some());
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        assert!(!Recorder::noop().is_enabled());
        assert!(Recorder::noop().snapshot().is_none());
        let r = Recorder::enabled();
        assert!(r.is_enabled());
        if let Some(m) = r.metrics() {
            m.jobs.inc();
        }
        assert_eq!(r.snapshot().unwrap().jobs, 1);
    }
}
