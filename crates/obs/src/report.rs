//! The unified benchmark report schema and its tolerance-band differ.
//!
//! The `netrel-testrunner` throughput suites emit a
//! [`BenchReport`] — one schema, versioned by [`SCHEMA`], carrying workload
//! parameters, per-workload timing, planner route counts, and cache
//! counters — so the committed `BENCH_*.json` baselines are mutually
//! comparable and machine-checkable. [`diff_reports`] compares a fresh run
//! against a committed baseline: deterministic fields (route and cache
//! counts, row sets) must match exactly; timing fields get a relative
//! tolerance band, since baselines travel across machines.

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "netrel-bench-report/v1";

/// Planner route decisions accumulated over a workload.
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct RouteCounts {
    /// Parts routed to the unbounded-width exact S2BDD.
    pub exact: u64,
    /// Parts routed to the width-bounded S2BDD.
    pub bounded: u64,
    /// Parts routed to flat possible-world sampling.
    pub sampling: u64,
    /// Parts routed to the bit-parallel (64 worlds per `u64`) sampler.
    pub bit_sampling: u64,
    /// Parts routed to exact d-hop enumeration.
    pub enumeration: u64,
}

impl RouteCounts {
    /// Sum over all routes.
    pub fn total(&self) -> u64 {
        self.exact + self.bounded + self.sampling + self.bit_sampling + self.enumeration
    }
}

/// Plan-cache counters accumulated over a workload.
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheCounts {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a solve.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Live entries at the end of the workload.
    pub entries: u64,
}

/// One workload's results within a report.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchRow {
    /// Workload name, unique within the report (diff join key).
    pub name: String,
    /// Query semantics exercised (e.g. `"two-terminal"`).
    pub semantics: String,
    /// Vertices in the workload graph.
    pub vertices: u64,
    /// Edges in the workload graph.
    pub edges: u64,
    /// Queries executed.
    pub queries: u64,
    /// Wall-clock seconds for the workload.
    pub secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// Planner route decisions (all-zero for classic-path workloads).
    pub routes: RouteCounts,
    /// Plan-cache counters.
    pub cache: CacheCounts,
    /// Bin-specific numeric extras (e.g. `("speedup_vs_cold", 1.8)`);
    /// compared with the timing tolerance.
    pub extra: Vec<(String, f64)>,
}

/// A full benchmark report: the unit committed as `BENCH_*.json`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`]; the differ refuses mismatched schemas.
    pub schema: String,
    /// Emitting runner (e.g. `"netrel-testrunner/planner"`); informational,
    /// never diffed.
    pub bench: String,
    /// `rustc --version` of the emitting build (informational; never
    /// diffed).
    pub toolchain: String,
    /// Workload scale multiplier the bin was invoked with.
    pub scale: f64,
    /// Base RNG seed of the workload.
    pub seed: u64,
    /// Per-workload results.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for `bench`, stamped with schema and toolchain.
    pub fn new(bench: &str, scale: f64, seed: u64) -> Self {
        BenchReport {
            schema: SCHEMA.to_string(),
            bench: bench.to_string(),
            toolchain: toolchain(),
            scale,
            seed,
            rows: Vec::new(),
        }
    }
}

/// One field that fell outside the tolerance band (or a structural
/// mismatch, reported with `ratio = f64::INFINITY`).
#[derive(Clone, Debug, serde::Serialize)]
pub struct DiffViolation {
    /// Row name (`"<report>"` for report-level mismatches).
    pub row: String,
    /// Field that diverged.
    pub field: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub fresh: f64,
    /// `|fresh - baseline| / max(|baseline|, eps)`.
    pub ratio: f64,
}

fn rel(baseline: f64, fresh: f64) -> f64 {
    (fresh - baseline).abs() / baseline.abs().max(1e-12)
}

fn check_timing(out: &mut Vec<DiffViolation>, row: &str, field: &str, b: f64, f: f64, tol: f64) {
    let ratio = rel(b, f);
    if !ratio.is_finite() || ratio > tol {
        out.push(DiffViolation {
            row: row.to_string(),
            field: field.to_string(),
            baseline: b,
            fresh: f,
            ratio,
        });
    }
}

fn check_exact(out: &mut Vec<DiffViolation>, row: &str, field: &str, b: u64, f: u64) {
    if b != f {
        out.push(DiffViolation {
            row: row.to_string(),
            field: field.to_string(),
            baseline: b as f64,
            fresh: f as f64,
            ratio: f64::INFINITY,
        });
    }
}

/// Compare a fresh report against a committed baseline.
///
/// Deterministic fields — the row set, per-row workload shape (semantics,
/// vertices, edges, queries), route counts, and cache counters — must match
/// exactly. Timing fields (`secs`, `qps`, `extra`) pass when within the
/// relative tolerance `tol` (e.g. `0.5` = ±50%). The toolchain string is
/// informational and never compared. Returns the (possibly empty) violation
/// list.
pub fn diff_reports(baseline: &BenchReport, fresh: &BenchReport, tol: f64) -> Vec<DiffViolation> {
    let mut out = Vec::new();
    let report = "<report>";
    if baseline.schema != fresh.schema || baseline.schema != SCHEMA {
        out.push(DiffViolation {
            row: report.to_string(),
            field: "schema".to_string(),
            baseline: 0.0,
            fresh: 0.0,
            ratio: f64::INFINITY,
        });
        return out;
    }
    check_timing(&mut out, report, "scale", baseline.scale, fresh.scale, 0.0);
    check_exact(&mut out, report, "seed", baseline.seed, fresh.seed);
    for base_row in &baseline.rows {
        let Some(fresh_row) = fresh.rows.iter().find(|r| r.name == base_row.name) else {
            out.push(DiffViolation {
                row: base_row.name.clone(),
                field: "missing_row".to_string(),
                baseline: 1.0,
                fresh: 0.0,
                ratio: f64::INFINITY,
            });
            continue;
        };
        let n = &base_row.name;
        if base_row.semantics != fresh_row.semantics {
            out.push(DiffViolation {
                row: n.clone(),
                field: "semantics".to_string(),
                baseline: 0.0,
                fresh: 0.0,
                ratio: f64::INFINITY,
            });
        }
        check_exact(
            &mut out,
            n,
            "vertices",
            base_row.vertices,
            fresh_row.vertices,
        );
        check_exact(&mut out, n, "edges", base_row.edges, fresh_row.edges);
        check_exact(&mut out, n, "queries", base_row.queries, fresh_row.queries);
        check_exact(
            &mut out,
            n,
            "routes.exact",
            base_row.routes.exact,
            fresh_row.routes.exact,
        );
        check_exact(
            &mut out,
            n,
            "routes.bounded",
            base_row.routes.bounded,
            fresh_row.routes.bounded,
        );
        check_exact(
            &mut out,
            n,
            "routes.sampling",
            base_row.routes.sampling,
            fresh_row.routes.sampling,
        );
        check_exact(
            &mut out,
            n,
            "routes.bit_sampling",
            base_row.routes.bit_sampling,
            fresh_row.routes.bit_sampling,
        );
        check_exact(
            &mut out,
            n,
            "routes.enumeration",
            base_row.routes.enumeration,
            fresh_row.routes.enumeration,
        );
        check_exact(
            &mut out,
            n,
            "cache.hits",
            base_row.cache.hits,
            fresh_row.cache.hits,
        );
        check_exact(
            &mut out,
            n,
            "cache.misses",
            base_row.cache.misses,
            fresh_row.cache.misses,
        );
        check_exact(
            &mut out,
            n,
            "cache.evictions",
            base_row.cache.evictions,
            fresh_row.cache.evictions,
        );
        check_exact(
            &mut out,
            n,
            "cache.entries",
            base_row.cache.entries,
            fresh_row.cache.entries,
        );
        check_timing(&mut out, n, "secs", base_row.secs, fresh_row.secs, tol);
        check_timing(&mut out, n, "qps", base_row.qps, fresh_row.qps, tol);
        for (key, base_val) in &base_row.extra {
            match fresh_row.extra.iter().find(|(k, _)| k == key) {
                Some((_, fresh_val)) => check_timing(
                    &mut out,
                    n,
                    &format!("extra.{key}"),
                    *base_val,
                    *fresh_val,
                    tol,
                ),
                None => out.push(DiffViolation {
                    row: n.clone(),
                    field: format!("extra.{key}"),
                    baseline: *base_val,
                    fresh: 0.0,
                    ratio: f64::INFINITY,
                }),
            }
        }
        // Keys only the fresh run carries are just as much a schema drift
        // as keys only the baseline carries.
        for (key, fresh_val) in &fresh_row.extra {
            if !base_row.extra.iter().any(|(k, _)| k == key) {
                out.push(DiffViolation {
                    row: n.clone(),
                    field: format!("extra.{key}"),
                    baseline: 0.0,
                    fresh: *fresh_val,
                    ratio: f64::INFINITY,
                });
            }
        }
    }
    for fresh_row in &fresh.rows {
        if !baseline.rows.iter().any(|r| r.name == fresh_row.name) {
            out.push(DiffViolation {
                row: fresh_row.name.clone(),
                field: "unexpected_row".to_string(),
                baseline: 0.0,
                fresh: 1.0,
                ratio: f64::INFINITY,
            });
        }
    }
    out
}

/// `rustc --version` of the ambient toolchain, `"unknown"` if unavailable.
pub fn toolchain() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, secs: f64) -> BenchRow {
        BenchRow {
            name: name.to_string(),
            semantics: "two-terminal".to_string(),
            vertices: 100,
            edges: 300,
            queries: 64,
            secs,
            qps: 64.0 / secs,
            routes: RouteCounts {
                exact: 40,
                bounded: 4,
                sampling: 20,
                bit_sampling: 0,
                enumeration: 0,
            },
            cache: CacheCounts {
                hits: 10,
                misses: 54,
                evictions: 0,
                entries: 54,
            },
            extra: vec![("warm_qps".to_string(), 200.0)],
        }
    }

    fn report(secs: f64) -> BenchReport {
        let mut r = BenchReport::new("engine_throughput", 1.0, 42);
        r.rows.push(row("grid", secs));
        r
    }

    #[test]
    fn identical_reports_diff_clean() {
        let base = report(0.5);
        assert!(diff_reports(&base, &base.clone(), 0.25).is_empty());
    }

    #[test]
    fn timing_within_band_passes_outside_fails() {
        let base = report(0.5);
        let mut fresh = report(0.55);
        fresh.rows[0].qps = base.rows[0].qps; // isolate `secs`
        fresh.rows[0].extra = base.rows[0].extra.clone();
        assert!(diff_reports(&base, &fresh, 0.25).is_empty());
        fresh.rows[0].secs = 1.0;
        let v = diff_reports(&base, &fresh, 0.25);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].field, "secs");
        assert!(v[0].ratio > 0.25);
    }

    #[test]
    fn deterministic_counts_must_match_exactly() {
        let base = report(0.5);
        let mut fresh = base.clone();
        fresh.rows[0].routes.sampling += 1;
        fresh.rows[0].cache.hits += 1;
        let v = diff_reports(&base, &fresh, 10.0);
        let fields: Vec<&str> = v.iter().map(|d| d.field.as_str()).collect();
        assert!(fields.contains(&"routes.sampling"));
        assert!(fields.contains(&"cache.hits"));
    }

    #[test]
    fn missing_and_unexpected_rows_are_violations() {
        let base = report(0.5);
        let mut fresh = base.clone();
        fresh.rows[0].name = "renamed".to_string();
        let v = diff_reports(&base, &fresh, 10.0);
        let fields: Vec<&str> = v.iter().map(|d| d.field.as_str()).collect();
        assert!(fields.contains(&"missing_row"));
        assert!(fields.contains(&"unexpected_row"));
    }

    #[test]
    fn every_regression_is_reported_not_just_the_first() {
        // Two rows, each with its own out-of-tolerance field: the differ
        // must surface both, so a multi-row regression is visible at once.
        let mut base = report(0.5);
        base.rows.push(row("clique", 0.25));
        let mut fresh = base.clone();
        fresh.rows[0].qps = base.rows[0].qps * 10.0; // grid: qps regression
        fresh.rows[1].routes.bit_sampling = 7; // clique: route drift
        let v = diff_reports(&base, &fresh, 0.25);
        assert_eq!(v.len(), 2, "expected both violations, got {v:?}");
        let fields: Vec<(&str, &str)> = v
            .iter()
            .map(|d| (d.row.as_str(), d.field.as_str()))
            .collect();
        assert!(fields.contains(&("grid", "qps")));
        assert!(fields.contains(&("clique", "routes.bit_sampling")));
    }

    #[test]
    fn fresh_only_extra_keys_are_violations() {
        let base = report(0.5);
        let mut fresh = base.clone();
        fresh.rows[0].extra.push(("surprise_qps".to_string(), 1.0));
        let v = diff_reports(&base, &fresh, 10.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].field, "extra.surprise_qps");
        assert!(v[0].ratio.is_infinite());
    }

    #[test]
    fn toolchain_differences_are_ignored() {
        let base = report(0.5);
        let mut fresh = base.clone();
        fresh.toolchain = "rustc 999.0.0".to_string();
        assert!(diff_reports(&base, &fresh, 0.25).is_empty());
    }

    #[test]
    fn report_round_trips_through_serde() {
        use serde::Serialize as _;
        let base = report(0.5);
        let json = serde_json::to_string_pretty(&base.to_value()).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert!(diff_reports(&base, &back, 1e-9).is_empty());
        assert_eq!(back.toolchain, base.toolchain);
    }
}
