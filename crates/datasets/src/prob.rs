//! Edge-probability assignment models used by the paper.

use netrel_ugraph::UncertainGraph;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How existence probabilities are derived from (weighted) edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbModel {
    /// i.i.d. uniform on `[lo, hi]` (the paper's small datasets; probabilities
    /// must stay strictly positive, so `lo > 0`).
    Uniform {
        /// Lower bound (exclusive of zero).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// The paper's weight model `p = log(α + 1) / log(α_M + 2)` where `α` is
    /// the edge weight (co-author count, road length, …) and `α_M` the maximum
    /// weight in the dataset (paper §7.1, after \[6\]).
    LogWeight,
    /// The same model with a *nominal* maximum weight instead of the realized
    /// one. Scaled-down synthetic datasets under-sample the weight tail, which
    /// would inflate every probability; pinning `α_M` keeps the probability
    /// distribution scale-invariant.
    LogWeightMax {
        /// Nominal maximum weight `α_M`.
        alpha_max: f64,
    },
    /// Interaction-score model: `Beta(a, b)`-distributed scores in `(0, 1]`
    /// (the HINT protein dataset ships scores; we sample them).
    Score {
        /// Beta shape `a`.
        a: f64,
        /// Beta shape `b`.
        b: f64,
    },
    /// Every edge gets probability `p`.
    Fixed(
        /// The shared probability.
        f64,
    ),
}

impl ProbModel {
    /// Assign probabilities to weighted edges `(u, v, weight)` and build the
    /// graph. Deterministic for a given `seed`.
    pub fn build_graph(
        &self,
        n: usize,
        weighted: &[(usize, usize, f64)],
        seed: u64,
    ) -> UncertainGraph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let probs = self.assign(weighted.iter().map(|&(_, _, w)| w), &mut rng);
        UncertainGraph::new(
            n,
            weighted.iter().zip(probs).map(|(&(u, v, _), p)| (u, v, p)),
        )
        .expect("generator produced an invalid edge list")
    }

    /// Probabilities for a weight sequence.
    pub fn assign<R: Rng + ?Sized>(
        &self,
        weights: impl IntoIterator<Item = f64>,
        rng: &mut R,
    ) -> Vec<f64> {
        let ws: Vec<f64> = weights.into_iter().collect();
        match *self {
            ProbModel::Uniform { lo, hi } => {
                assert!(lo > 0.0 && hi <= 1.0 && lo <= hi, "invalid uniform range");
                ws.iter().map(|_| rng.gen_range(lo..=hi)).collect()
            }
            ProbModel::LogWeight => {
                let wm = ws.iter().copied().fold(0.0f64, f64::max);
                ws.iter()
                    .map(|&w| ((w + 1.0).ln() / (wm + 2.0).ln()).clamp(1e-9, 1.0))
                    .collect()
            }
            ProbModel::LogWeightMax { alpha_max } => ws
                .iter()
                .map(|&w| ((w + 1.0).ln() / (alpha_max + 2.0).ln()).clamp(1e-9, 1.0))
                .collect(),
            ProbModel::Score { a, b } => ws
                .iter()
                .map(|_| sample_beta(a, b, rng).clamp(1e-9, 1.0))
                .collect(),
            ProbModel::Fixed(p) => {
                assert!(p > 0.0 && p <= 1.0);
                vec![p; ws.len()]
            }
        }
    }
}

/// Sample `Beta(a, b)` via two gamma draws (Marsaglia–Tsang).
fn sample_beta<R: Rng + ?Sized>(a: f64, b: f64, rng: &mut R) -> f64 {
    let x = sample_gamma(a, rng);
    let y = sample_gamma(b, rng);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Marsaglia–Tsang gamma sampler for shape `k > 0`, scale 1.
fn sample_gamma<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
    if k < 1.0 {
        // Boost low shapes: Gamma(k) = Gamma(k+1) * U^(1/k).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(k + 1.0, rng) * u.powf(1.0 / k);
    }
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let z: f64 = rand::distributions::Standard.sample(rng);
        // Box-Muller style normal from two uniforms.
        let u1: f64 = z.max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let norm = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * norm).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u.ln() < 0.5 * norm * norm + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let ps = ProbModel::Uniform { lo: 0.2, hi: 0.8 }.assign((0..1000).map(|_| 1.0), &mut rng);
        assert!(ps.iter().all(|&p| (0.2..=0.8).contains(&p)));
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn log_weight_matches_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let ps = ProbModel::LogWeight.assign([1.0, 3.0, 7.0], &mut rng);
        let wm: f64 = 7.0;
        for (p, w) in ps.iter().zip([1.0f64, 3.0, 7.0]) {
            assert!((p - (w + 1.0).ln() / (wm + 2.0).ln()).abs() < 1e-12);
        }
        // Maximum weight maps below 1; all strictly positive.
        assert!(ps.iter().all(|&p| p > 0.0 && p <= 1.0));
    }

    #[test]
    fn score_model_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let ps = ProbModel::Score { a: 2.0, b: 2.2 }.assign((0..2000).map(|_| 1.0), &mut rng);
        assert!(ps.iter().all(|&p| p > 0.0 && p <= 1.0));
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        // Beta(2, 2.2) mean = 2/4.2 ≈ 0.476 (the paper's Hit-d avg is 0.470).
        assert!((mean - 0.476).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn log_weight_fixed_max_scale_invariant() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = ProbModel::LogWeightMax { alpha_max: 100.0 };
        let few = m.assign([5.0, 9.0], &mut rng);
        let many = m.assign([5.0, 9.0, 50.0, 99.0], &mut rng);
        // The probability of a given weight does not depend on the sample.
        assert_eq!(few[0], many[0]);
        assert_eq!(few[1], many[1]);
        assert!((few[0] - 6.0f64.ln() / 102.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn fixed_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let ps = ProbModel::Fixed(0.7).assign([1.0, 2.0], &mut rng);
        assert_eq!(ps, vec![0.7, 0.7]);
    }

    #[test]
    fn build_graph_deterministic() {
        let w = vec![(0usize, 1usize, 2.0f64), (1, 2, 5.0)];
        let m = ProbModel::Uniform { lo: 0.1, hi: 0.9 };
        let a = m.build_graph(3, &w, 3);
        let b = m.build_graph(3, &w, 3);
        assert_eq!(a.edges(), b.edges());
    }
}
