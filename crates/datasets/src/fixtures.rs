//! Deterministic dense fixtures shared by tests and benchmarks.
//!
//! Cliques are the canonical "exact path cannot finish" workload for the
//! engine's adaptive planner: maximal frontier width, no bridges for the
//! extension technique to exploit. Keeping the builders here (rather than
//! copied into every test/bench) pins one shape for the dense fixture
//! across the workspace.

use netrel_ugraph::UncertainGraph;

/// Complete graph on `n` vertices with per-edge probabilities spread
/// deterministically over `[0.4, 0.6)` (`p = 0.4 + ((31u + v) mod 20)/100`),
/// so parts derived from different terminal pairs stay structurally
/// distinct in cache keys.
pub fn clique(n: usize) -> UncertainGraph {
    complete(n, |u, v| 0.4 + ((u * 31 + v) % 20) as f64 / 100.0)
}

/// Complete graph on `n` vertices with uniform edge probability `p`.
pub fn clique_uniform(n: usize, p: f64) -> UncertainGraph {
    complete(n, |_, _| p)
}

fn complete(n: usize, p: impl Fn(usize, usize) -> f64) -> UncertainGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v, p(u, v)));
        }
    }
    UncertainGraph::new(n, edges).expect("clique probabilities are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_shape_and_determinism() {
        let g = clique(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 45);
        let again = clique(10);
        assert_eq!(g.edges(), again.edges());
        for e in g.edges() {
            assert!((0.4..0.6).contains(&e.p));
        }
    }

    #[test]
    fn uniform_clique_probability() {
        let g = clique_uniform(6, 0.95);
        assert_eq!(g.num_edges(), 15);
        assert!(g.edges().iter().all(|e| e.p == 0.95));
    }
}
