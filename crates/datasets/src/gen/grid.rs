//! Road-network generator: a perturbed grid (stand-in for the paper's
//! OpenStreetMap Tokyo / New York City datasets).
//!
//! Road networks are near-planar with average degree ≈ 2.3–2.45 (Table 2).
//! We build a random spanning tree of a `w × h` grid (guaranteeing
//! connectivity and planarity) and add grid chords until the edge budget is
//! reached. Edge weights are synthetic road lengths (log-normal), which the
//! `LogWeight` probability model maps to the paper's probability range.

use super::WeightedEdges;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A connected near-planar road network on a `w × h` grid with approximately
/// `avg_degree` average degree. Weights are synthetic road lengths in metres.
pub fn road_grid(w: usize, h: usize, avg_degree: f64, seed: u64) -> WeightedEdges {
    assert!(w >= 2 && h >= 2);
    let n = w * h;
    let mut rng = StdRng::seed_from_u64(seed);
    let vid = |r: usize, c: usize| r * w + c;

    // All candidate grid edges (right + down neighbours).
    let mut candidates: Vec<(usize, usize)> = Vec::with_capacity(2 * n);
    for r in 0..h {
        for c in 0..w {
            if c + 1 < w {
                candidates.push((vid(r, c), vid(r, c + 1)));
            }
            if r + 1 < h {
                candidates.push((vid(r, c), vid(r + 1, c)));
            }
        }
    }

    // Randomized spanning tree: shuffle candidates, Kruskal-accept.
    for i in (1..candidates.len()).rev() {
        let j = rng.gen_range(0..=i);
        candidates.swap(i, j);
    }
    let mut dsu = netrel_ugraph::Dsu::new(n);
    let mut edges: WeightedEdges = Vec::with_capacity(n);
    let mut leftovers = Vec::new();
    for &(u, v) in &candidates {
        if dsu.union(u, v).is_some() {
            edges.push((u, v, road_length(&mut rng)));
        } else {
            leftovers.push((u, v));
        }
    }

    // Add chords until the degree budget is met.
    let target_edges = ((avg_degree * n as f64) / 2.0).round() as usize;
    let mut li = 0usize;
    while edges.len() < target_edges && li < leftovers.len() {
        let (u, v) = leftovers[li];
        li += 1;
        edges.push((u, v, road_length(&mut rng)));
    }
    edges
}

/// Log-normal road length: median ≈ 36 m, clamped to [1 m, 10 km]. Chosen so
/// the `LogWeight` model reproduces Table 2's road-network average
/// probability (≈ 0.29–0.39).
fn road_length<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (3.6 + normal).exp().clamp(1.0, 10_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::assert_connected_simple;

    #[test]
    fn connected_planar_shape() {
        let e = road_grid(20, 15, 2.4, 1);
        assert_connected_simple(300, &e);
        let avg = 2.0 * e.len() as f64 / 300.0;
        assert!((avg - 2.4).abs() < 0.1, "avg degree {avg}");
    }

    #[test]
    fn spanning_tree_floor() {
        // Requesting degree below tree level still yields a connected graph.
        let e = road_grid(5, 5, 1.0, 2);
        assert_eq!(e.len(), 24); // n - 1
        assert_connected_simple(25, &e);
    }

    #[test]
    fn weights_are_plausible_lengths() {
        let e = road_grid(10, 10, 2.4, 3);
        assert!(e.iter().all(|&(_, _, w)| (1.0..=10_000.0).contains(&w)));
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_grid(8, 8, 2.3, 4), road_grid(8, 8, 2.3, 4));
    }
}
