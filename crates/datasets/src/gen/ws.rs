//! Watts–Strogatz small-world ring.

use super::{dedup_simple, WeightedEdges};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ring lattice on `n` vertices where each vertex links to its `k_half`
/// clockwise neighbors, with each edge rewired to a random endpoint with
/// probability `beta`. The base ring is kept intact (only chords rewire), so
/// the result stays connected. Weights are 1.
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, seed: u64) -> WeightedEdges {
    assert!(n >= 3 && k_half >= 1);
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: WeightedEdges = Vec::with_capacity(n * k_half);
    for v in 0..n {
        for d in 1..=k_half {
            let w = (v + d) % n;
            // The d == 1 ring is the connectivity backbone: never rewire it.
            if d > 1 && rng.gen::<f64>() < beta {
                let t = rng.gen_range(0..n);
                edges.push((v, t, 1.0));
            } else {
                edges.push((v, w, 1.0));
            }
        }
    }
    dedup_simple(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::assert_connected_simple;

    #[test]
    fn no_rewiring_gives_lattice() {
        let e = watts_strogatz(10, 2, 0.0, 1);
        assert_eq!(e.len(), 20);
        assert_connected_simple(10, &e);
    }

    #[test]
    fn rewired_stays_connected() {
        for seed in 0..5 {
            let e = watts_strogatz(60, 3, 0.4, seed);
            assert_connected_simple(60, &e);
        }
    }

    #[test]
    fn full_rewiring_still_has_ring() {
        let e = watts_strogatz(20, 2, 1.0, 3);
        // Every (v, v+1) ring edge must be present.
        for v in 0..20 {
            let w = (v + 1) % 20;
            let key = (v.min(w), v.max(w));
            assert!(
                e.iter().any(|&(a, b, _)| (a, b) == key),
                "missing ring edge {key:?}"
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(30, 2, 0.3, 5), watts_strogatz(30, 2, 0.3, 5));
    }
}
