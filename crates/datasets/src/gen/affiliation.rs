//! Bipartite affiliation generator (stand-in for KONECT American-Revolution).
//!
//! The American-Revolution graph links 141 vertices (people and
//! organizations) with 160 memberships — average degree 2.27, i.e. barely
//! above a tree. Its role in the paper is to show that the S2BDD computes the
//! *exact* reliability on sparse, bridge-heavy graphs (Table 4); what matters
//! is the tree-like bipartite structure, which this generator reproduces.

use super::{connect_components, dedup_simple, WeightedEdges};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bipartite affiliation graph: `actors` person-vertices (`0..actors`) and
/// `events` organization-vertices (`actors..actors+events`), with `m`
/// memberships assigned by preferential attachment on the organization side.
/// Connected; weights are 1.
pub fn affiliation(actors: usize, events: usize, m: usize, seed: u64) -> WeightedEdges {
    assert!(actors >= 1 && events >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = actors + events;
    let mut urn: Vec<usize> = (actors..n).collect(); // every org starts with weight 1
    let mut edges: WeightedEdges = Vec::with_capacity(m);
    for i in 0..m {
        let person = i % actors; // round-robin so most people appear
        let org = urn[rng.gen_range(0..urn.len())];
        edges.push((person, org, 1.0));
        urn.push(org);
    }
    let mut edges = dedup_simple(edges);
    connect_components(n, &mut edges, 1.0, &mut rng);
    dedup_simple(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::assert_connected_simple;

    #[test]
    fn bipartite_and_connected() {
        let actors = 125;
        let events = 16;
        let e = affiliation(actors, events, 170, 1);
        assert_connected_simple(actors + events, &e);
        // Bipartite check: every edge crosses the partition. Bridging edges
        // from connect_components may violate this only between components,
        // which in practice link a person to an org or person; allow either
        // side but require the bulk to be bipartite.
        let crossing = e
            .iter()
            .filter(|&&(u, v, _)| (u < actors) != (v < actors))
            .count();
        assert!(crossing * 10 >= e.len() * 9, "{crossing}/{}", e.len());
    }

    #[test]
    fn near_tree_density() {
        let e = affiliation(125, 16, 165, 2);
        let n = 141.0;
        let avg = 2.0 * e.len() as f64 / n;
        assert!((2.0..2.6).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(affiliation(50, 8, 70, 3), affiliation(50, 8, 70, 3));
    }
}
