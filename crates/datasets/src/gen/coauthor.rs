//! Community-based co-authorship generator (stand-in for the DBLP snapshots).
//!
//! DBLP co-authorship graphs are sparse, clustered, and heavy-tailed; edge
//! weights are co-author counts `α`, mapped to probabilities by
//! `log(α+1)/log(α_M+2)` (paper §7.1). We emulate the structure with
//! power-law-sized research groups: members of a group form a sparse random
//! subgraph, and weights count repeated collaborations.

use super::{connect_components, WeightedEdges};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Community co-authorship graph on `n` vertices targeting roughly
/// `avg_degree`. Weights are synthetic co-paper counts (≥ 1).
pub fn coauthor(n: usize, avg_degree: f64, seed: u64) -> WeightedEdges {
    assert!(n >= 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let target_edges = ((avg_degree * n as f64) / 2.0).round() as usize;

    // Power-law community sizes in [3, 30].
    let mut membership: Vec<Vec<usize>> = Vec::new();
    let mut covered = 0usize;
    while covered < 2 * n {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let size = (3.0 * (1.0 - u).powf(-0.6)).round().min(30.0) as usize;
        let group: Vec<usize> = (0..size).map(|_| rng.gen_range(0..n)).collect();
        covered += size;
        membership.push(group);
    }

    // Within each group, sample pairs; repeats bump the weight (more joint
    // papers), matching DBLP's weighted edges.
    let mut weight: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    let mut guard = 0usize;
    while weight.len() < target_edges && guard < 50 * target_edges + 1000 {
        guard += 1;
        let group = &membership[rng.gen_range(0..membership.len())];
        if group.len() < 2 {
            continue;
        }
        let a = group[rng.gen_range(0..group.len())];
        let b = group[rng.gen_range(0..group.len())];
        if a == b {
            continue;
        }
        *weight.entry((a.min(b), a.max(b))).or_insert(0.0) += 1.0;
    }

    let mut edges: WeightedEdges = weight.into_iter().map(|((u, v), w)| (u, v, w)).collect();
    edges.sort_unstable_by_key(|e| (e.0, e.1)); // determinism
    connect_components(n, &mut edges, 1.0, &mut rng);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::assert_connected_simple;

    #[test]
    fn connected_and_near_target_degree() {
        let n = 500;
        let e = coauthor(n, 8.0, 1);
        assert_connected_simple(n, &e);
        let avg = 2.0 * e.len() as f64 / n as f64;
        assert!((6.5..9.5).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn weights_count_collaborations() {
        let e = coauthor(200, 6.0, 2);
        assert!(e.iter().all(|&(_, _, w)| w >= 1.0));
        // Some pair should collaborate more than once.
        assert!(e.iter().any(|&(_, _, w)| w >= 2.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(coauthor(150, 5.0, 3), coauthor(150, 5.0, 3));
    }

    #[test]
    fn clustered_structure() {
        // A community graph should have many triangles; count wedges closed.
        let n = 300;
        let e = coauthor(n, 8.0, 4);
        let mut adj = vec![std::collections::HashSet::new(); n];
        for &(u, v, _) in &e {
            adj[u].insert(v);
            adj[v].insert(u);
        }
        let mut triangles = 0usize;
        for &(u, v, _) in &e {
            triangles += adj[u].intersection(&adj[v]).count();
        }
        assert!(triangles > 0, "expected triangles in a community graph");
    }
}
