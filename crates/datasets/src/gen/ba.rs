//! Barabási–Albert preferential attachment.

use super::WeightedEdges;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Preferential-attachment graph: each new vertex attaches to `m_per`
/// distinct existing vertices chosen proportionally to degree. Connected by
/// construction; weights are 1.
pub fn barabasi_albert(n: usize, m_per: usize, seed: u64) -> WeightedEdges {
    assert!(n >= 2 && m_per >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: WeightedEdges = Vec::with_capacity(n * m_per);
    // Repeated-endpoint urn: sampling an index uniformly from `urn` is
    // degree-proportional sampling.
    let mut urn: Vec<usize> = vec![0, 1];
    edges.push((0, 1, 1.0));
    for v in 2..n {
        // BTreeSet: deterministic iteration order for a deterministic graph.
        let mut targets = std::collections::BTreeSet::new();
        let want = m_per.min(v);
        let mut guard = 0;
        while targets.len() < want && guard < 1000 {
            guard += 1;
            let t = urn[rng.gen_range(0..urn.len())];
            targets.insert(t);
        }
        // Fallback for pathological urns: fill with arbitrary vertices.
        let mut u = 0;
        while targets.len() < want {
            targets.insert(u);
            u += 1;
        }
        for &t in &targets {
            edges.push((t.min(v), t.max(v), 1.0));
            urn.push(t);
            urn.push(v);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::assert_connected_simple;

    #[test]
    fn connected_and_sized() {
        let e = barabasi_albert(100, 2, 5);
        assert_connected_simple(100, &e);
        // 1 seed edge + 2 per vertex for v=2..100 (v=2 can only take 2).
        assert_eq!(e.len(), 1 + 2 * 98);
    }

    #[test]
    fn heavy_tail_emerges() {
        let n = 400;
        let e = barabasi_albert(n, 2, 7);
        let mut deg = vec![0usize; n];
        for &(u, v, _) in &e {
            deg[u] += 1;
            deg[v] += 1;
        }
        let max_deg = *deg.iter().max().unwrap();
        let avg = 2.0 * e.len() as f64 / n as f64;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "expected a hub: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(50, 3, 1), barabasi_albert(50, 3, 1));
    }

    #[test]
    fn minimal_sizes() {
        let e = barabasi_albert(2, 1, 1);
        assert_eq!(e, vec![(0, 1, 1.0)]);
    }
}
