//! Connected Erdős–Rényi-style `G(n, m)` generator.

use super::WeightedEdges;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A connected uniform random graph with `n` vertices and (about) `m` edges:
/// a uniform random spanning tree skeleton plus uniformly sampled extras.
/// All weights are 1.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> WeightedEdges {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut edges: WeightedEdges = Vec::with_capacity(m);
    // Random attachment tree: vertex i links to a uniform earlier vertex.
    for v in 1..n {
        let u = rng.gen_range(0..v);
        seen.insert((u, v));
        edges.push((u, v, 1.0));
    }
    let max_m = n * (n - 1) / 2;
    let target = m.min(max_m);
    let mut guard = 0usize;
    while edges.len() < target && guard < 100 * target + 1000 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push((key.0, key.1, 1.0));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::assert_connected_simple;

    #[test]
    fn connected_with_exact_edges() {
        let e = erdos_renyi(50, 120, 3);
        assert_eq!(e.len(), 120);
        assert_connected_simple(50, &e);
    }

    #[test]
    fn tree_when_m_below_spanning() {
        let e = erdos_renyi(10, 5, 1);
        // The spanning skeleton alone needs n-1 = 9 edges.
        assert_eq!(e.len(), 9);
        assert_connected_simple(10, &e);
    }

    #[test]
    fn caps_at_complete_graph() {
        let e = erdos_renyi(5, 1000, 2);
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(30, 60, 9), erdos_renyi(30, 60, 9));
        assert_ne!(erdos_renyi(30, 60, 9), erdos_renyi(30, 60, 10));
    }

    #[test]
    fn single_vertex() {
        let e = erdos_renyi(1, 5, 1);
        assert!(e.is_empty());
    }
}
