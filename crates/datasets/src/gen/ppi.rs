//! Protein-interaction-like generator (stand-in for HINT Hit-direct).
//!
//! Hit-direct is the paper's stress case: average degree 27.25, so the
//! S2BDD's frontier grows quickly and the bounds stay loose (§7.3). The
//! generator mixes dense overlapping complexes (cliques of interacting
//! proteins) with random background interactions to reach the same density
//! regime. Weights are 1; the `Score` probability model supplies
//! interaction-score probabilities.

use super::{connect_components, WeightedEdges};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense protein-interaction-like graph on `n` vertices targeting roughly
/// `avg_degree`. Connected; weights are 1.
pub fn protein_interaction(n: usize, avg_degree: f64, seed: u64) -> WeightedEdges {
    assert!(n >= 8);
    let mut rng = StdRng::seed_from_u64(seed);
    let target_edges = ((avg_degree * n as f64) / 2.0).round() as usize;
    let mut seen = std::collections::HashSet::new();
    let mut edges: WeightedEdges = Vec::with_capacity(target_edges);

    // 60% of edges from protein complexes (small dense neighborhoods).
    let complex_budget = (0.6 * target_edges as f64) as usize;
    while edges.len() < complex_budget {
        let size = rng.gen_range(4..=12usize);
        let anchor = rng.gen_range(0..n);
        let members: Vec<usize> = std::iter::once(anchor)
            .chain((0..size - 1).map(|_| {
                // complexes are locality-biased so they overlap
                let off = rng.gen_range(0..n / 10 + 2);
                (anchor + off) % n
            }))
            .collect();
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                let (a, b) = (members[i].min(members[j]), members[i].max(members[j]));
                if a != b && seen.insert((a, b)) {
                    edges.push((a, b, 1.0));
                }
            }
        }
    }

    // Remainder: uniform background interactions.
    let mut guard = 0usize;
    while edges.len() < target_edges && guard < 50 * target_edges + 1000 {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            edges.push((key.0, key.1, 1.0));
        }
    }

    connect_components(n, &mut edges, 1.0, &mut rng);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::assert_connected_simple;

    #[test]
    fn dense_and_connected() {
        let n = 400;
        let e = protein_interaction(n, 27.0, 1);
        assert_connected_simple(n, &e);
        let avg = 2.0 * e.len() as f64 / n as f64;
        assert!((24.0..30.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            protein_interaction(100, 12.0, 2),
            protein_interaction(100, 12.0, 2)
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let e = protein_interaction(150, 15.0, 3);
        let mut seen = std::collections::HashSet::new();
        for &(u, v, _) in &e {
            assert_ne!(u, v);
            assert!(seen.insert((u.min(v), u.max(v))));
        }
    }
}
