//! Seeded synthetic graph generators.
//!
//! Every generator emits a *weighted* edge list `(u, v, weight)` over `n`
//! vertices — weights feed the probability models in [`crate::prob`] — and
//! guarantees the result is connected and simple (no loops, no parallels).

pub mod affiliation;
pub mod ba;
pub mod coauthor;
pub mod er;
pub mod grid;
pub mod ppi;
pub mod ws;

pub use affiliation::affiliation;
pub use ba::barabasi_albert;
pub use coauthor::coauthor;
pub use er::erdos_renyi;
pub use grid::road_grid;
pub use ppi::protein_interaction;
pub use ws::watts_strogatz;

use netrel_ugraph::Dsu;
use rand::Rng;

/// A weighted edge list over `n` vertices.
pub type WeightedEdges = Vec<(usize, usize, f64)>;

/// Deduplicate (normalizing endpoint order) and drop self-loops.
pub(crate) fn dedup_simple(edges: WeightedEdges) -> WeightedEdges {
    let mut seen = std::collections::HashSet::new();
    edges
        .into_iter()
        .filter_map(|(u, v, w)| {
            if u == v {
                return None;
            }
            let key = (u.min(v), u.max(v));
            seen.insert(key).then_some((key.0, key.1, w))
        })
        .collect()
}

/// Append minimum-count bridging edges (weight `w`) so the graph on
/// `0..n` becomes connected.
pub(crate) fn connect_components<R: Rng + ?Sized>(
    n: usize,
    edges: &mut WeightedEdges,
    w: f64,
    rng: &mut R,
) {
    if n == 0 {
        return;
    }
    let mut dsu = Dsu::new(n);
    for &(u, v, _) in edges.iter() {
        dsu.union(u, v);
    }
    // Collect one representative per component, then chain them randomly.
    let mut reps = Vec::new();
    let mut seen_root = std::collections::HashSet::new();
    for v in 0..n {
        let r = dsu.find(v);
        if seen_root.insert(r) {
            reps.push(v);
        }
    }
    for pair in reps.windows(2) {
        // Wire a random member near each representative to avoid always
        // touching vertex 0; representatives themselves are fine too.
        let (a, b) = (pair[0], pair[1]);
        let _ = rng.gen::<u64>(); // keep the stream moving for reproducibility
        edges.push((a.min(b), a.max(b), w));
        dsu.union(a, b);
    }
    debug_assert_eq!(dsu.components(), 1);
}

#[cfg(test)]
pub(crate) fn assert_connected_simple(n: usize, edges: &WeightedEdges) {
    let g = netrel_ugraph::UncertainGraph::new(n, edges.iter().map(|&(u, v, _)| (u, v, 0.5)))
        .expect("generator must emit a simple graph");
    assert!(g.is_connected(), "generator must emit a connected graph");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dedup_normalizes_and_drops_loops() {
        let edges = vec![(1, 0, 1.0), (0, 1, 2.0), (2, 2, 3.0), (1, 2, 4.0)];
        let out = dedup_simple(edges);
        assert_eq!(out, vec![(0, 1, 1.0), (1, 2, 4.0)]);
    }

    #[test]
    fn connect_components_joins_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut edges = vec![(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)];
        connect_components(6, &mut edges, 1.0, &mut rng);
        assert_connected_simple(6, &dedup_simple(edges));
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut edges = vec![(0, 1, 1.0), (1, 2, 1.0)];
        let before = edges.len();
        connect_components(3, &mut edges, 1.0, &mut rng);
        assert_eq!(edges.len(), before);
    }
}
