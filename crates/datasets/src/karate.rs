//! The Zachary karate club graph (34 vertices, 78 edges), embedded verbatim.
//!
//! W. W. Zachary, "An information flow model for conflict and fission in
//! small groups", Journal of Anthropological Research 33(4), 1977. This is
//! the paper's exact small-accuracy dataset; probabilities are assigned
//! uniformly at random as in the paper ("We randomly assign probabilities
//! based on the uniform distribution").

use crate::prob::ProbModel;
use netrel_ugraph::UncertainGraph;

/// The 78 undirected edges of the karate club graph, 0-indexed.
pub const KARATE_EDGES: [(usize, usize); 78] = [
    (0, 1),
    (0, 2),
    (1, 2),
    (0, 3),
    (1, 3),
    (2, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (4, 6),
    (5, 6),
    (0, 7),
    (1, 7),
    (2, 7),
    (3, 7),
    (0, 8),
    (2, 8),
    (2, 9),
    (0, 10),
    (4, 10),
    (5, 10),
    (0, 11),
    (0, 12),
    (3, 12),
    (0, 13),
    (1, 13),
    (2, 13),
    (3, 13),
    (5, 16),
    (6, 16),
    (0, 17),
    (1, 17),
    (0, 19),
    (1, 19),
    (0, 21),
    (1, 21),
    (23, 25),
    (24, 25),
    (2, 27),
    (23, 27),
    (24, 27),
    (2, 28),
    (23, 29),
    (26, 29),
    (1, 30),
    (8, 30),
    (0, 31),
    (24, 31),
    (25, 31),
    (28, 31),
    (2, 32),
    (8, 32),
    (14, 32),
    (15, 32),
    (18, 32),
    (20, 32),
    (22, 32),
    (23, 32),
    (29, 32),
    (30, 32),
    (31, 32),
    (8, 33),
    (9, 33),
    (13, 33),
    (14, 33),
    (15, 33),
    (18, 33),
    (19, 33),
    (20, 33),
    (22, 33),
    (23, 33),
    (26, 33),
    (27, 33),
    (28, 33),
    (29, 33),
    (30, 33),
    (31, 33),
    (32, 33),
];

/// Number of vertices in the karate club graph.
pub const KARATE_VERTICES: usize = 34;

/// The karate club graph with uniformly random edge probabilities (as in the
/// paper's accuracy experiments). Deterministic for a given `seed`.
pub fn karate(seed: u64) -> UncertainGraph {
    let weighted: Vec<(usize, usize, f64)> =
        KARATE_EDGES.iter().map(|&(u, v)| (u, v, 1.0)).collect();
    ProbModel::Uniform { lo: 0.05, hi: 1.0 }.build_graph(KARATE_VERTICES, &weighted, seed)
}

/// The karate club graph with every edge at probability `p`.
pub fn karate_fixed(p: f64) -> UncertainGraph {
    UncertainGraph::new(
        KARATE_VERTICES,
        KARATE_EDGES.iter().map(|&(u, v)| (u, v, p)),
    )
    .expect("embedded karate edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_ugraph::GraphStats;

    #[test]
    fn matches_table2_shape() {
        let g = karate(1);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 34);
        assert_eq!(s.edges, 78);
        // Table 2: avg degree 4.59.
        assert!(
            (s.avg_degree - 4.59).abs() < 0.01,
            "avg_degree {}",
            s.avg_degree
        );
        assert!(g.is_connected());
    }

    #[test]
    fn avg_prob_near_paper_value() {
        // Table 2 reports 0.527 under U(0,1)-style assignment; our seeded
        // U(0.05, 1) draw lands near 0.52 as well.
        let g = karate(1);
        let s = GraphStats::compute(&g);
        assert!((s.avg_prob - 0.527).abs() < 0.08, "avg_prob {}", s.avg_prob);
    }

    #[test]
    fn seeded_reproducibility() {
        let a = karate(7);
        let b = karate(7);
        assert_eq!(a.edges(), b.edges());
        let c = karate(8);
        assert!(a.edges().iter().zip(c.edges()).any(|(x, y)| x.p != y.p));
    }

    #[test]
    fn no_duplicate_edges_embedded() {
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in KARATE_EDGES.iter() {
            assert!(u < v, "({u},{v}) not normalized");
            assert!(seen.insert((u, v)), "duplicate ({u},{v})");
        }
    }

    #[test]
    fn fixed_probability_variant() {
        let g = karate_fixed(0.7);
        assert!(g.edges().iter().all(|e| e.p == 0.7));
    }
}
