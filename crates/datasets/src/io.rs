//! Edge-list I/O for uncertain graphs.
//!
//! Plain-text format, one edge per line: `u v p`, preceded by a header line
//! `# vertices <n>`. Lines starting with `#` are otherwise comments. A
//! serde-serializable mirror type is provided for structured storage.

use netrel_ugraph::{GraphError, UncertainGraph};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// Serde-friendly uncertain-graph representation.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct EdgeListFile {
    /// Vertex count.
    pub vertices: usize,
    /// `(u, v, p)` triples.
    pub edges: Vec<(usize, usize, f64)>,
}

impl EdgeListFile {
    /// Capture a graph.
    pub fn from_graph(g: &UncertainGraph) -> Self {
        EdgeListFile {
            vertices: g.num_vertices(),
            edges: g.edges().iter().map(|e| (e.u, e.v, e.p)).collect(),
        }
    }

    /// Rebuild the graph.
    pub fn to_graph(&self) -> Result<UncertainGraph, GraphError> {
        UncertainGraph::new(self.vertices, self.edges.iter().copied())
    }
}

/// Write the plain-text edge-list format.
pub fn write_edge_list<W: Write>(g: &UncertainGraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# vertices {}", g.num_vertices())?;
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.p)?;
    }
    Ok(())
}

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and content).
    Parse(usize, String),
    /// Structural problem in the described graph.
    Graph(GraphError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(line, text) => write!(f, "parse error at line {line}: {text:?}"),
            ReadError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read the plain-text edge-list format.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<UncertainGraph, ReadError> {
    let mut vertices: Option<usize> = None;
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("vertices") {
                let n = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ReadError::Parse(idx + 1, line.clone()))?;
                vertices = Some(n);
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |t: Option<&str>| t.and_then(|s| s.parse::<usize>().ok());
        let u = parse(parts.next()).ok_or_else(|| ReadError::Parse(idx + 1, line.clone()))?;
        let v = parse(parts.next()).ok_or_else(|| ReadError::Parse(idx + 1, line.clone()))?;
        let p = parts
            .next()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| ReadError::Parse(idx + 1, line.clone()))?;
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v, p));
    }
    let n = vertices.unwrap_or(if edges.is_empty() { 0 } else { max_vertex + 1 });
    UncertainGraph::new(n, edges).map_err(ReadError::Graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UncertainGraph {
        UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn header_optional() {
        let text = "0 1 0.5\n1 2 0.25\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\n# vertices 5\n0 4 0.9\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_errors_reported_with_line() {
        let text = "0 1 not-a-prob\n";
        match read_edge_list(text.as_bytes()) {
            Err(ReadError::Parse(1, _)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn graph_errors_propagate() {
        let text = "0 0 0.5\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ReadError::Graph(_))
        ));
    }

    #[test]
    fn serde_mirror_roundtrip() {
        let g = sample();
        let file = EdgeListFile::from_graph(&g);
        let g2 = file.to_graph().unwrap();
        assert_eq!(g.edges(), g2.edges());
    }
}
