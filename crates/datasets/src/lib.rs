//! Datasets mirroring the paper's evaluation corpora (Table 2).
//!
//! The paper evaluates on seven graphs: two small KONECT graphs
//! (Zachary-karate-club, American-Revolution), two DBLP co-authorship
//! snapshots, two OpenStreetMap road networks (Tokyo, New York City), and the
//! HINT Hit-direct protein-interaction network. The karate club is embedded
//! verbatim (it is a 34-vertex public-domain graph); the other six are
//! reproduced by seeded synthetic generators that match the column statistics
//! of Table 2 — vertex/edge counts, average degree, and average probability —
//! and, more importantly, the *structural* property each dataset contributes
//! to the evaluation (tree-likeness, planarity, heavy-tailed degrees, high
//! density). See `DESIGN.md` §6 for the substitution rationale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fixtures;
pub mod gen;
pub mod io;
pub mod karate;
pub mod prob;
pub mod registry;

pub use fixtures::{clique, clique_uniform};
pub use prob::ProbModel;
pub use registry::{Dataset, DatasetSpec};
