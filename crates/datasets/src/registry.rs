//! The dataset registry mirroring the paper's Table 2.

use crate::gen;
use crate::karate;
use crate::prob::ProbModel;
use netrel_ugraph::UncertainGraph;

/// The seven evaluation datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Zachary-karate-club (social, embedded verbatim).
    Karate,
    /// American-Revolution (affiliation).
    AmRv,
    /// DBLP before 2000 (co-authorship).
    Dblp1,
    /// DBLP after 2000 (co-authorship).
    Dblp2,
    /// Tokyo (road network).
    Tokyo,
    /// New York City (road network).
    Nyc,
    /// Hit-direct (protein interaction).
    HitD,
}

/// Target statistics from the paper's Table 2.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Full dataset name.
    pub name: &'static str,
    /// Paper abbreviation.
    pub abbr: &'static str,
    /// Graph type.
    pub kind: &'static str,
    /// Vertex count reported in Table 2.
    pub vertices: usize,
    /// Edge count reported in Table 2.
    pub edges: usize,
    /// Average degree reported in Table 2.
    pub avg_degree: f64,
    /// Average probability reported in Table 2.
    pub avg_prob: f64,
}

impl Dataset {
    /// All datasets, small then large, in the paper's Table 2 order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Karate,
        Dataset::AmRv,
        Dataset::Dblp1,
        Dataset::Dblp2,
        Dataset::Tokyo,
        Dataset::Nyc,
        Dataset::HitD,
    ];

    /// The five large datasets (efficiency experiments, Figures 3–5).
    pub const LARGE: [Dataset; 5] = [
        Dataset::Dblp1,
        Dataset::Dblp2,
        Dataset::Tokyo,
        Dataset::Nyc,
        Dataset::HitD,
    ];

    /// The two small datasets (accuracy experiments, Tables 3–4).
    pub const SMALL: [Dataset; 2] = [Dataset::Karate, Dataset::AmRv];

    /// Paper-reported statistics.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Karate => DatasetSpec {
                name: "Zachary-karate-club",
                abbr: "Karate",
                kind: "Social",
                vertices: 34,
                edges: 78,
                avg_degree: 4.59,
                avg_prob: 0.527,
            },
            Dataset::AmRv => DatasetSpec {
                name: "American-Revolution",
                abbr: "Am-Rv",
                kind: "Affiliation",
                vertices: 141,
                edges: 160,
                avg_degree: 2.27,
                avg_prob: 0.528,
            },
            Dataset::Dblp1 => DatasetSpec {
                name: "DBLP before 2000",
                abbr: "DBLP1",
                kind: "Coauthorship",
                vertices: 25_871,
                edges: 108_459,
                avg_degree: 8.38,
                avg_prob: 0.222,
            },
            Dataset::Dblp2 => DatasetSpec {
                name: "DBLP after 2000",
                abbr: "DBLP2",
                kind: "Coauthorship",
                vertices: 48_938,
                edges: 136_034,
                avg_degree: 5.56,
                avg_prob: 0.203,
            },
            Dataset::Tokyo => DatasetSpec {
                name: "Tokyo",
                abbr: "Tokyo",
                kind: "Road network",
                vertices: 26_370,
                edges: 32_298,
                avg_degree: 2.45,
                avg_prob: 0.391,
            },
            Dataset::Nyc => DatasetSpec {
                name: "New York City",
                abbr: "NYC",
                kind: "Road network",
                vertices: 180_188,
                edges: 208_441,
                avg_degree: 2.31,
                avg_prob: 0.294,
            },
            Dataset::HitD => DatasetSpec {
                name: "Hit-direct",
                abbr: "Hit-d",
                kind: "Protein",
                vertices: 18_256,
                edges: 248_770,
                avg_degree: 27.25,
                avg_prob: 0.470,
            },
        }
    }

    /// Whether this is one of the five large efficiency datasets.
    pub fn is_large(self) -> bool {
        Dataset::LARGE.contains(&self)
    }

    /// Instantiate the dataset. The two small datasets ignore `scale`; the
    /// five large synthetic stand-ins scale their vertex counts by `scale`
    /// (e.g. `0.05` for quick laptop runs, `1.0` for full Table 2 size).
    /// Deterministic for a given `(scale, seed)`.
    pub fn generate(self, scale: f64, seed: u64) -> UncertainGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = self.spec();
        let scaled = |v: usize| ((v as f64 * scale).round() as usize).max(32);
        match self {
            Dataset::Karate => karate::karate(seed),
            Dataset::AmRv => {
                // KONECT brunson_revolution: 141 vertices = 136 persons + 5
                // organizations, 160 memberships. The small organization side
                // matters: it is what keeps the 2-edge-connected cores tiny
                // after preprocessing, which is the property Table 4 exercises
                // (Pro resolves Am-Rv *exactly* at the default width).
                let w = gen::affiliation(136, 5, 160, seed);
                ProbModel::Uniform { lo: 0.05, hi: 1.0 }.build_graph(141, &w, seed)
            }
            Dataset::Dblp1 => {
                // α_M = 180 calibrates the paper's avg prob 0.222 against the
                // generator's co-paper weight distribution.
                let n = scaled(spec.vertices);
                let w = gen::coauthor(n, spec.avg_degree, seed);
                ProbModel::LogWeightMax { alpha_max: 180.0 }.build_graph(n, &w, seed)
            }
            Dataset::Dblp2 => {
                let n = scaled(spec.vertices);
                let w = gen::coauthor(n, spec.avg_degree, seed);
                ProbModel::LogWeightMax { alpha_max: 290.0 }.build_graph(n, &w, seed)
            }
            Dataset::Tokyo => {
                // α_M = 10 km roads reproduce avg prob ≈ 0.39 (Table 2).
                let n = scaled(spec.vertices);
                let side = (n as f64).sqrt().round() as usize;
                let w = gen::road_grid(side.max(2), side.max(2), spec.avg_degree, seed);
                ProbModel::LogWeightMax {
                    alpha_max: 10_000.0,
                }
                .build_graph(side.max(2) * side.max(2), &w, seed)
            }
            Dataset::Nyc => {
                // Longer maximum segments push NYC's avg prob down to ≈ 0.29.
                let n = scaled(spec.vertices);
                let side = (n as f64).sqrt().round() as usize;
                let w = gen::road_grid(side.max(2), side.max(2), spec.avg_degree, seed);
                ProbModel::LogWeightMax {
                    alpha_max: 244_000.0,
                }
                .build_graph(side.max(2) * side.max(2), &w, seed)
            }
            Dataset::HitD => {
                let n = scaled(spec.vertices);
                let w = gen::protein_interaction(n, spec.avg_degree, seed);
                // Beta(2, 2.26) has mean 0.470 = Table 2's Hit-d average.
                ProbModel::Score { a: 2.0, b: 2.26 }.build_graph(n, &w, seed)
            }
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec().abbr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_ugraph::GraphStats;

    #[test]
    fn all_datasets_generate_connected_graphs() {
        for ds in Dataset::ALL {
            let g = ds.generate(0.02_f64.max(0.02), 1);
            assert!(g.is_connected(), "{ds} disconnected");
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn small_datasets_exact_sizes() {
        let karate = Dataset::Karate.generate(1.0, 1);
        assert_eq!(karate.num_vertices(), 34);
        assert_eq!(karate.num_edges(), 78);
        let amrv = Dataset::AmRv.generate(1.0, 1);
        assert_eq!(amrv.num_vertices(), 141);
        let s = GraphStats::compute(&amrv);
        assert!(
            (s.avg_degree - 2.27).abs() < 0.35,
            "avg deg {}",
            s.avg_degree
        );
    }

    #[test]
    fn scaled_large_dataset_tracks_spec_density() {
        let g = Dataset::Dblp1.generate(0.05, 1);
        let s = GraphStats::compute(&g);
        let spec = Dataset::Dblp1.spec();
        assert!(
            (s.avg_degree - spec.avg_degree).abs() < 1.6,
            "avg deg {} vs {}",
            s.avg_degree,
            spec.avg_degree
        );
        // Calibrated log-weight probabilities land in the paper's low range.
        assert!((s.avg_prob - 0.222).abs() < 0.06, "avg prob {}", s.avg_prob);
    }

    #[test]
    fn road_networks_sparse() {
        let g = Dataset::Tokyo.generate(0.05, 2);
        let s = GraphStats::compute(&g);
        assert!(
            (2.0..2.7).contains(&s.avg_degree),
            "avg deg {}",
            s.avg_degree
        );
    }

    #[test]
    fn hitd_dense_with_scores() {
        let g = Dataset::HitD.generate(0.02, 3);
        let s = GraphStats::compute(&g);
        assert!(s.avg_degree > 20.0, "avg deg {}", s.avg_degree);
        assert!((s.avg_prob - 0.470).abs() < 0.05, "avg prob {}", s.avg_prob);
    }

    #[test]
    fn deterministic_generation() {
        let a = Dataset::Dblp2.generate(0.02, 5);
        let b = Dataset::Dblp2.generate(0.02, 5);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn display_uses_abbreviation() {
        assert_eq!(Dataset::Nyc.to_string(), "NYC");
        assert_eq!(Dataset::HitD.to_string(), "Hit-d");
    }
}
