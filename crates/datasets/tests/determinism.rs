//! Regression tests: every generator must be bit-for-bit deterministic for a
//! fixed seed. The whole evaluation pipeline (Tables 3–5, Figures 3–5) and
//! the cross-solver integration tests assume that `generate(scale, seed)`
//! names one specific graph forever; a generator that silently consults an
//! unseeded source of randomness (or iterates a `HashMap`) would invalidate
//! every recorded number.

use netrel_datasets::gen;
use netrel_datasets::io::write_edge_list;
use netrel_datasets::karate::karate;
use netrel_datasets::Dataset;
use netrel_ugraph::UncertainGraph;

type NamedEdgeLists = Vec<(&'static str, Vec<(usize, usize, f64)>)>;

/// Render a graph into the canonical edge-list byte format.
fn graph_bytes(g: &UncertainGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("in-memory write cannot fail");
    buf
}

/// A raw weighted edge list rendered to bytes with full `f64` round-trip
/// precision (`{:?}` prints the shortest exact representation).
fn edges_bytes(edges: &[(usize, usize, f64)]) -> Vec<u8> {
    let mut buf = Vec::new();
    for (u, v, w) in edges {
        buf.extend_from_slice(format!("{u} {v} {w:?}\n").as_bytes());
    }
    buf
}

#[test]
fn raw_generators_byte_identical_across_invocations() {
    for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
        let cases: NamedEdgeLists = vec![
            ("er", gen::erdos_renyi(64, 150, seed)),
            ("ba", gen::barabasi_albert(64, 3, seed)),
            ("grid", gen::road_grid(8, 8, 2.4, seed)),
            ("ws", gen::watts_strogatz(64, 2, 0.1, seed)),
            ("coauthor", gen::coauthor(96, 6.0, seed)),
            ("affiliation", gen::affiliation(70, 10, 90, seed)),
            ("ppi", gen::protein_interaction(96, 8.0, seed)),
        ];
        let replay: Vec<Vec<(usize, usize, f64)>> = vec![
            gen::erdos_renyi(64, 150, seed),
            gen::barabasi_albert(64, 3, seed),
            gen::road_grid(8, 8, 2.4, seed),
            gen::watts_strogatz(64, 2, 0.1, seed),
            gen::coauthor(96, 6.0, seed),
            gen::affiliation(70, 10, 90, seed),
            gen::protein_interaction(96, 8.0, seed),
        ];
        for ((name, first), second) in cases.iter().zip(&replay) {
            assert_eq!(
                edges_bytes(first),
                edges_bytes(second),
                "{name} generator diverged for seed {seed}"
            );
        }
    }
}

#[test]
fn karate_byte_identical_across_invocations() {
    for seed in [1u64, 42] {
        assert_eq!(
            graph_bytes(&karate(seed)),
            graph_bytes(&karate(seed)),
            "karate probabilities diverged for seed {seed}"
        );
    }
}

#[test]
fn dataset_registry_byte_identical_across_invocations() {
    // Small scale keeps the large synthetic stand-ins test-sized; the
    // registry path additionally covers the probability models.
    for ds in Dataset::ALL {
        let a = graph_bytes(&ds.generate(0.02, 11));
        let b = graph_bytes(&ds.generate(0.02, 11));
        assert_eq!(a, b, "{ds} registry generation diverged");
    }
}

#[test]
fn different_seeds_produce_different_graphs() {
    // Complements the identity checks: the seed must actually matter,
    // otherwise the determinism assertions above would pass vacuously.
    let a = graph_bytes(&Dataset::AmRv.generate(1.0, 1));
    let b = graph_bytes(&Dataset::AmRv.generate(1.0, 2));
    assert_ne!(a, b, "Am-Rv generation ignores its seed");
}
