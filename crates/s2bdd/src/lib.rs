//! S2BDD — the scalable and sampling BDD (paper §4).
//!
//! The S2BDD keeps **one layer** of a frontier-based reliability BDD plus the
//! two sinks. While expanding layer by layer it accumulates the probability
//! mass that provably reaches the 1-sink (`p_c`, terminals connected) and the
//! 0-sink (`p_d`, terminals disconnected), which bound the reliability:
//! `p_c ≤ R ≤ 1 − p_d`. When a layer would exceed the width bound `w`,
//! lowest-priority nodes (heuristic `h(n)`, Eq. 10) are deleted, and the
//! possible worlds they represent are estimated by *stratified sampling*
//! (§4.3.3): each deleted layer forms a stratum whose sample allocation is
//! proportional to its probability mass, with the per-sample world drawn by
//! dynamic programming from the deleted node's frontier state. The sample
//! budget itself shrinks as the bounds tighten (Theorems 1–2, [`reduce`]).
//!
//! With unbounded width the S2BDD never deletes, `p_c + p_d = 1`, and the
//! result is **exact** — that is the solver used for the paper's Tables 3–4
//! ground truth.
//!
//! ```
//! use netrel_s2bdd::{S2Bdd, S2BddConfig};
//! use netrel_ugraph::UncertainGraph;
//!
//! // The paper's Figure 1 graph: 5 vertices, 6 edges, p = 0.7 each,
//! // terminals {a, d, e} = {0, 3, 4}.
//! let g = UncertainGraph::new(5, [
//!     (0, 1, 0.7), (0, 2, 0.7), (1, 2, 0.7),
//!     (1, 3, 0.7), (2, 4, 0.7), (3, 4, 0.7),
//! ]).unwrap();
//!
//! // Exact: unbounded width, no sampling.
//! let exact = S2Bdd::solve(&g, &[0, 3, 4], S2BddConfig::exact()).unwrap();
//! assert!(exact.exact);
//!
//! // Width-bounded: proven bounds bracket the exact value.
//! let approx = S2Bdd::solve(&g, &[0, 3, 4], S2BddConfig {
//!     max_width: 2,
//!     samples: 10_000,
//!     ..Default::default()
//! }).unwrap();
//! assert!(approx.lower_bound <= exact.estimate + 1e-12);
//! assert!(approx.upper_bound >= exact.estimate - 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod config;
pub mod reduce;
pub mod result;
pub mod sampler;
pub mod strata;

pub use builder::S2Bdd;
pub use config::{EstimatorKind, S2BddConfig};
pub use reduce::reduced_samples;
pub use result::S2BddResult;
