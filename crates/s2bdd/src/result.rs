//! Result type returned by the S2BDD solver.

/// Outcome of one S2BDD run.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct S2BddResult {
    /// Approximate (or exact) network reliability `R̂[G, T]`, always within
    /// `[lower_bound, upper_bound]`.
    pub estimate: f64,
    /// Proven lower bound `p_c` (mass that reached the 1-sink).
    pub lower_bound: f64,
    /// Proven upper bound `1 − p_d` (complement of 0-sink mass).
    pub upper_bound: f64,
    /// `true` when no node was deleted and no early exit occurred — the
    /// estimate equals the exact reliability.
    pub exact: bool,
    /// The requested sample count `s`.
    pub samples_requested: usize,
    /// Samples actually drawn across all strata.
    pub samples_used: usize,
    /// Final reduced budget `s′` (Theorem 1/2).
    pub s_prime_final: usize,
    /// Number of sampling strata (deleted layers + possible live stratum).
    pub strata: usize,
    /// Total nodes deleted over all layers.
    pub deleted_nodes: usize,
    /// Estimated estimator variance `Σ mass² r̂(1−r̂)/s` over strata.
    pub variance_estimate: f64,
    /// Maximum live-layer width reached.
    pub peak_width: usize,
    /// Peak estimated bytes held by one layer (nodes + signatures).
    pub peak_memory_bytes: usize,
    /// Layers fully processed.
    pub layers_completed: usize,
    /// Total layers (= edges).
    pub layers_total: usize,
    /// Whether construction stopped early because the sample budget was
    /// exhausted (Algorithm 2, lines 26–30).
    pub early_exit: bool,
    /// Whether construction aborted because the configured
    /// [`node_cap`](crate::S2BddConfig::node_cap) was exceeded — the live
    /// layer was surfaced to the fallback stratum sampler (or, with a zero
    /// sample budget, its mass was left between the bounds).
    pub node_cap_hit: bool,
    /// Total S2BDD nodes created during construction (the actual cost the
    /// planner's `predicted_nodes` estimate is judged against); `0` for
    /// results that never built a diagram (trivial instances, flat
    /// sampling, d-hop enumeration).
    pub nodes_created: usize,
    /// Optional per-layer `(p_c, p_d)` trajectory.
    pub trajectory: Option<Vec<(f64, f64)>>,
}

impl S2BddResult {
    /// An exact result with no construction (trivial instances).
    pub(crate) fn trivial(r: f64, samples_requested: usize) -> Self {
        S2BddResult {
            estimate: r,
            lower_bound: r,
            upper_bound: r,
            exact: true,
            samples_requested,
            samples_used: 0,
            s_prime_final: 0,
            strata: 0,
            deleted_nodes: 0,
            variance_estimate: 0.0,
            peak_width: 0,
            peak_memory_bytes: 0,
            layers_completed: 0,
            layers_total: 0,
            early_exit: false,
            node_cap_hit: false,
            nodes_created: 0,
            trajectory: None,
        }
    }

    /// Width of the proven bound interval `upper − lower`.
    pub fn bound_gap(&self) -> f64 {
        (self.upper_bound - self.lower_bound).max(0.0)
    }
}

impl std::fmt::Display for S2BddResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "R̂={:.6} in [{:.6}, {:.6}]{} ({} samples, {} strata)",
            self.estimate,
            self.lower_bound,
            self.upper_bound,
            if self.exact { " exact" } else { "" },
            self.samples_used,
            self.strata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_result_shape() {
        let r = S2BddResult::trivial(1.0, 100);
        assert!(r.exact);
        assert_eq!(r.estimate, 1.0);
        assert_eq!(r.bound_gap(), 0.0);
        let txt = format!("{r}");
        assert!(txt.contains("exact"), "{txt}");
    }
}
