//! Stratum accounting for the stratified sampling procedure (paper §4.3.3).
//!
//! Each stratum is a set of possible worlds with known total probability
//! mass: either the worlds below the nodes deleted at one layer, or the
//! worlds below the nodes still live when the sample budget ran out. The
//! overall estimate is `p_c + Σ mass_i · r̂_i`, where `r̂_i` is the
//! within-stratum conditional reliability estimated by the configured
//! estimator.

use crate::config::EstimatorKind;

/// One Horvitz–Thompson sample record: world identity hash, conditional
/// log-probability, connectivity indicator.
#[derive(Clone, Copy, Debug)]
pub struct HtRecord {
    /// FNV hash of the sampled edge states (world identity).
    pub hash: u64,
    /// `ln Pr[world | stratum node]`.
    pub ln_p: f64,
    /// Whether the terminals were connected.
    pub connected: bool,
}

/// Accounting for one stratum.
#[derive(Clone, Debug, Default)]
pub struct Stratum {
    /// Layer at which the stratum's nodes were deleted (or `usize::MAX` for
    /// the live-node stratum of an early exit).
    pub layer: usize,
    /// Total probability mass of the stratum (sum of deleted nodes' `p_n`).
    pub mass: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Connected samples.
    pub hits: usize,
    /// Per-sample records (Horvitz–Thompson only).
    pub ht_records: Vec<HtRecord>,
}

impl Stratum {
    /// New stratum with known mass.
    pub fn new(layer: usize, mass: f64) -> Self {
        Stratum {
            layer,
            mass,
            ..Default::default()
        }
    }

    /// Record a Monte Carlo draw.
    pub fn record_mc(&mut self, connected: bool) {
        self.samples += 1;
        self.hits += connected as usize;
    }

    /// Record a Horvitz–Thompson draw.
    pub fn record_ht(&mut self, hash: u64, ln_p: f64, connected: bool) {
        self.samples += 1;
        self.hits += connected as usize;
        self.ht_records.push(HtRecord {
            hash,
            ln_p,
            connected,
        });
    }

    /// Estimated conditional reliability `r̂ ∈ [0, 1]` within the stratum.
    pub fn conditional_estimate(&self, kind: EstimatorKind) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        match kind {
            EstimatorKind::MonteCarlo => self.hits as f64 / self.samples as f64,
            EstimatorKind::HorvitzThompson => {
                // HT over distinct sampled worlds: R̂ = Σ q_w I_w / π_w with
                // π_w = 1 - (1 - q_w)^s (paper §4.2).
                let s = self.samples as f64;
                let mut seen = std::collections::HashSet::new();
                let mut total = 0.0f64;
                for r in &self.ht_records {
                    if !r.connected || !seen.insert(r.hash) {
                        continue;
                    }
                    let q = r.ln_p.exp();
                    // 1 - (1-q)^s computed stably for tiny q.
                    let pi = -((-q).ln_1p() * s).exp_m1();
                    if pi > 0.0 {
                        total += q / pi;
                    }
                }
                total.clamp(0.0, 1.0)
            }
        }
    }

    /// Contribution `mass · r̂` to the overall estimate.
    pub fn estimate(&self, kind: EstimatorKind) -> f64 {
        self.mass * self.conditional_estimate(kind)
    }

    /// Within-stratum variance contribution `mass² · r̂(1-r̂)/s` (the Monte
    /// Carlo form; used as a reported diagnostic for both estimators).
    pub fn variance_contrib(&self, kind: EstimatorKind) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let r = self.conditional_estimate(kind);
        self.mass * self.mass * r * (1.0 - r) / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_estimate_is_hit_rate() {
        let mut s = Stratum::new(3, 0.4);
        for i in 0..10 {
            s.record_mc(i < 3);
        }
        assert!((s.conditional_estimate(EstimatorKind::MonteCarlo) - 0.3).abs() < 1e-12);
        assert!((s.estimate(EstimatorKind::MonteCarlo) - 0.12).abs() < 1e-12);
    }

    #[test]
    fn empty_stratum_contributes_zero() {
        let s = Stratum::new(0, 0.5);
        assert_eq!(s.estimate(EstimatorKind::MonteCarlo), 0.0);
        assert_eq!(s.variance_contrib(EstimatorKind::MonteCarlo), 0.0);
    }

    #[test]
    fn variance_shrinks_with_samples() {
        let mut a = Stratum::new(0, 1.0);
        let mut b = Stratum::new(0, 1.0);
        for i in 0..10 {
            a.record_mc(i % 2 == 0);
        }
        for i in 0..1000 {
            b.record_mc(i % 2 == 0);
        }
        assert!(
            b.variance_contrib(EstimatorKind::MonteCarlo)
                < a.variance_contrib(EstimatorKind::MonteCarlo)
        );
    }

    #[test]
    fn ht_single_world_recovers_probability() {
        // One world with conditional probability 0.2, sampled 5 times
        // (same hash): HT gives q/π where π = 1-(0.8)^5.
        let mut s = Stratum::new(0, 1.0);
        for _ in 0..5 {
            s.record_ht(42, 0.2f64.ln(), true);
        }
        let pi = 1.0 - 0.8f64.powi(5);
        let expect = 0.2 / pi;
        assert!((s.conditional_estimate(EstimatorKind::HorvitzThompson) - expect).abs() < 1e-12);
    }

    #[test]
    fn ht_ignores_disconnected_and_dedups() {
        let mut s = Stratum::new(0, 1.0);
        s.record_ht(1, 0.5f64.ln(), true);
        s.record_ht(1, 0.5f64.ln(), true); // duplicate world
        s.record_ht(2, 0.5f64.ln(), false); // disconnected
        let pi = 1.0 - 0.5f64.powi(3);
        let expect = 0.5 / pi;
        assert!((s.conditional_estimate(EstimatorKind::HorvitzThompson) - expect).abs() < 1e-12);
    }

    #[test]
    fn ht_estimate_clamped_to_unit() {
        let mut s = Stratum::new(0, 1.0);
        // Pathological records cannot push the estimate above 1.
        for h in 0..10u64 {
            s.record_ht(h, 0.9f64.ln(), true);
        }
        assert!(s.conditional_estimate(EstimatorKind::HorvitzThompson) <= 1.0);
    }
}
