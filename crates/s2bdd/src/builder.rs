//! S2BDD construction (paper Algorithm 2).
//!
//! Per layer: nodes are processed in descending heuristic priority; each edge
//! decision either reaches a sink (tightening `p_c`/`p_d`), merges into an
//! existing node (probabilities aggregate), occupies a free slot (up to the
//! width bound `w`), or is *deleted* — its probability mass joins the layer's
//! stratum, to be estimated by conditional-world sampling. After every layer
//! the sample budget `s′` is recomputed from the bounds (Theorem 1), and if
//! the budget is already covered by the mass of the live nodes, construction
//! stops early and the live nodes are sampled directly (lines 26–30).

use crate::config::{EstimatorKind, S2BddConfig};
use crate::reduce::reduced_samples;
use crate::result::S2BddResult;
use crate::sampler::StratumSampler;
use crate::strata::Stratum;
use netrel_bdd::frontier::{FrontierMachine, Scratch, State, Transition};
use netrel_numeric::WideFloat;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One live S2BDD node: frontier state, path-probability mass, priority.
struct Node {
    state: State,
    pn: WideFloat,
    h: WideFloat,
}

/// The S2BDD solver.
pub struct S2Bdd;

impl S2Bdd {
    /// Approximate (or, with unbounded width, exactly compute) `R[G, T]`.
    pub fn solve(
        g: &UncertainGraph,
        terminals: &[VertexId],
        cfg: S2BddConfig,
    ) -> Result<S2BddResult, GraphError> {
        let t = g.validate_terminals(terminals)?;
        let mut machine = FrontierMachine::new(g, &t, cfg.order)?;
        if let Some(r) = machine.trivial() {
            return Ok(S2BddResult::trivial(r, cfg.samples));
        }

        let k = machine.k();
        let layers_total = machine.layers();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sampler = StratumSampler::new(g.num_vertices(), machine.terminal_mask(), k);
        let mut scratch = Scratch::default();
        let mut key = Vec::new();

        let mut nodes: Vec<Node> = vec![Node {
            state: State::root(),
            pn: WideFloat::ONE,
            h: WideFloat::ONE,
        }];
        let mut pc = WideFloat::ZERO;
        let mut pd = WideFloat::ZERO;
        let mut strata: Vec<Stratum> = Vec::new();
        let mut samples_taken = 0usize;
        let mut s_cur = cfg.samples;
        let mut deleted_nodes_total = 0usize;
        let mut created_nodes_total = 1usize; // the root
        let mut peak_width = 1usize;
        let mut peak_memory = 0usize;
        let mut layers_completed = 0usize;
        let mut early_exit = false;
        let mut node_cap_hit = false;
        let mut trajectory: Option<Vec<(f64, f64)>> = cfg.record_trajectory.then(Vec::new);

        for l in 0..layers_total {
            let e = machine.current_edge();
            // Process high-priority nodes first so that, when the width bound
            // bites, the kept nodes are the ones most likely to tighten the
            // bounds (paper §4.3.2; Algorithm 2 line 34).
            nodes.sort_unstable_by(|a, b| {
                b.h.partial_cmp(&a.h).unwrap_or(std::cmp::Ordering::Equal)
            });

            let mut index: netrel_numeric::FxHashMap<Vec<u8>, u32> =
                netrel_numeric::FxHashMap::default();
            let mut next: Vec<Node> = Vec::new();
            let mut deleted: Vec<(State, WideFloat)> = Vec::new();
            let mut deleted_mass = WideFloat::ZERO;

            for node in nodes.drain(..) {
                for (take, weight) in [(true, e.p), (false, 1.0 - e.p)] {
                    if weight <= 0.0 {
                        continue;
                    }
                    let pn = node.pn.mul_f64(weight);
                    match machine.apply(&node.state, take, &mut scratch) {
                        Transition::One => pc += pn,
                        Transition::Zero => pd += pn,
                        Transition::Next(ns) => {
                            ns.signature(cfg.merge_rule, &mut key);
                            if let Some(&i) = index.get(&key) {
                                next[i as usize].pn += pn;
                            } else if next.len() < cfg.max_width {
                                index.insert(key.clone(), next.len() as u32);
                                created_nodes_total += 1;
                                next.push(Node {
                                    state: ns,
                                    pn,
                                    h: WideFloat::ZERO,
                                });
                            } else {
                                deleted_mass += pn;
                                deleted.push((ns, pn));
                                deleted_nodes_total += 1;
                            }
                        }
                    }
                }
            }

            // Stratified sampling of this layer's deleted mass (§4.3.3).
            if !deleted.is_empty() && cfg.samples > 0 {
                let mass = deleted_mass.to_f64();
                if mass > 0.0 {
                    let mut st = Stratum::new(l, mass);
                    let quota = (((s_cur as f64) * mass).floor() as usize).max(1);
                    sample_pool(
                        &deleted,
                        deleted_mass,
                        quota,
                        &machine,
                        l,
                        cfg.estimator,
                        &mut sampler,
                        &mut st,
                        &mut rng,
                    );
                    samples_taken += quota;
                    strata.push(st);
                }
            }

            // Recompute the reduced budget from the tightened bounds.
            if cfg.reduce_samples {
                s_cur = reduced_samples(cfg.samples, pc.to_f64(), pd.to_f64());
            }
            if let Some(tr) = trajectory.as_mut() {
                tr.push((pc.to_f64(), pd.to_f64()));
            }
            peak_width = peak_width.max(next.len());
            let layer_bytes: usize = next
                .iter()
                .map(|n| n.state.heap_bytes() + std::mem::size_of::<Node>() + 48)
                .sum();
            peak_memory = peak_memory.max(layer_bytes);
            layers_completed = l + 1;

            if next.is_empty() {
                // Every path reached a sink.
                break;
            }

            // Early exit (Algorithm 2 lines 26–30): once the stratified
            // sampling has consumed the (possibly reduced) budget s′,
            // continuing the construction cannot save sampling work — sample
            // the live nodes as one final stratum and stop. (The paper's
            // literal condition `c + ⌊s′·p_Nnext⌋ ≥ s′` is trivially true at
            // layer 0 where p_Nnext = 1; we read it as budget exhaustion,
            // which matches the §4.3.3 prose.)
            //
            // The node cap rides the same mechanism: when the cumulative
            // number of live nodes created exceeds `cfg.node_cap`, the
            // still-live layer is surfaced to the conditional stratum
            // sampler instead of letting the construction blow up. With a
            // zero sample budget the live mass simply stays between the
            // proven bounds.
            let budget_exhausted = cfg.samples > 0 && samples_taken >= s_cur;
            let cap_exceeded = created_nodes_total > cfg.node_cap;
            if (budget_exhausted || cap_exceeded) && l + 1 < layers_total {
                node_cap_hit |= cap_exceeded;
                let live_mass_wf: WideFloat = next.iter().map(|n| n.pn).sum();
                let live_mass = live_mass_wf.to_f64();
                let live_quota = ((s_cur as f64) * live_mass).floor() as usize;
                if live_mass > 0.0 && cfg.samples > 0 {
                    let pool: Vec<(State, WideFloat)> =
                        next.into_iter().map(|n| (n.state, n.pn)).collect();
                    let mut st = Stratum::new(usize::MAX, live_mass);
                    let quota = live_quota.max(1);
                    sample_pool(
                        &pool,
                        live_mass_wf,
                        quota,
                        &machine,
                        l,
                        cfg.estimator,
                        &mut sampler,
                        &mut st,
                        &mut rng,
                    );
                    samples_taken += quota;
                    strata.push(st);
                    early_exit |= budget_exhausted;
                    break;
                }
                if cap_exceeded {
                    // No sampling budget: abandon the live mass; the
                    // estimate degrades to the proven lower bound.
                    break;
                }
                // (ownership: `next` was not consumed above)
                nodes = next;
            } else {
                nodes = next;
            }

            // Compute priorities for the new layer (needs post-layer future
            // degrees, so it happens before advance()).
            for n in &mut nodes {
                n.h = heuristic(&machine, &n.state, n.pn, k);
            }
            machine.advance();
        }

        // Assemble the estimate: proven mass plus per-stratum estimates.
        let pc_f = pc.to_f64();
        let pd_f = pd.to_f64();
        let mut estimate = pc_f;
        let mut variance = 0.0f64;
        for st in &strata {
            estimate += st.estimate(cfg.estimator);
            variance += st.variance_contrib(cfg.estimator);
        }
        let exact = strata.is_empty() && !early_exit && !node_cap_hit && deleted_nodes_total == 0;
        if exact {
            debug_assert!(
                (pc_f + pd_f - 1.0).abs() < 1e-9,
                "exact run must account for all mass: pc={pc_f} pd={pd_f}"
            );
        }
        // pc and 1-pd can cross by one ulp on exact runs; keep the interval sane.
        let upper = (1.0 - pd_f).max(pc_f);
        Ok(S2BddResult {
            estimate: estimate.clamp(pc_f, upper),
            lower_bound: pc_f,
            upper_bound: upper,
            exact,
            samples_requested: cfg.samples,
            samples_used: samples_taken,
            s_prime_final: s_cur,
            strata: strata.len(),
            deleted_nodes: deleted_nodes_total,
            variance_estimate: variance,
            peak_width,
            peak_memory_bytes: peak_memory,
            layers_completed,
            layers_total,
            early_exit,
            node_cap_hit,
            nodes_created: created_nodes_total,
            trajectory,
        })
    }

    /// Exact reliability via an unbounded-width S2BDD.
    pub fn exact(g: &UncertainGraph, terminals: &[VertexId]) -> Result<f64, GraphError> {
        let r = Self::solve(g, terminals, S2BddConfig::exact())?;
        debug_assert!(r.exact);
        Ok(r.estimate)
    }
}

/// Draw `quota` conditional worlds from a weighted node pool, recording them
/// into `st`. Node choice is probability-proportional (multinomial), which
/// keeps the stratum estimator unbiased.
#[allow(clippy::too_many_arguments)]
fn sample_pool(
    pool: &[(State, WideFloat)],
    pool_mass: WideFloat,
    quota: usize,
    machine: &FrontierMachine,
    layer: usize,
    estimator: EstimatorKind,
    sampler: &mut StratumSampler,
    st: &mut Stratum,
    rng: &mut StdRng,
) {
    debug_assert!(!pool.is_empty());
    // Cumulative node weights, computed in the wide domain to survive
    // underflow, then normalized into f64.
    let mut cum = Vec::with_capacity(pool.len());
    let mut acc = 0.0f64;
    for (_, pn) in pool {
        acc += (*pn / pool_mass).to_f64();
        cum.push(acc);
    }
    let frontier = machine.next_frontier();
    let rest = &machine.ordered_edges()[layer + 1..];
    for _ in 0..quota {
        let x: f64 = rng.gen_range(0.0..1.0) * acc.max(1.0);
        let i = cum.partition_point(|&c| c < x).min(pool.len() - 1);
        let (state, pn) = &pool[i];
        match estimator {
            EstimatorKind::MonteCarlo => {
                let conn = sampler.sample_connected(state, frontier, rest, rng);
                st.record_mc(conn);
            }
            EstimatorKind::HorvitzThompson => {
                let (conn, ln_suffix, hash) = sampler.sample_full(state, frontier, rest, rng);
                // World identity and probability are *within the stratum*:
                // mix the node index into the hash and add the node's pick
                // log-probability.
                let mixed = hash ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let ln_node = (*pn / pool_mass).to_f64().max(f64::MIN_POSITIVE).ln();
                st.record_ht(mixed, ln_node + ln_suffix, conn);
            }
        }
    }
}

/// The paper's deletion heuristic (Eq. 10):
/// `h(n) = p_n · max_f max(t_{n,f}/k, 1/d_{n,f})` over terminal-bearing
/// components; nodes with no terminal-bearing component get priority 0.
fn heuristic(machine: &FrontierMachine, state: &State, pn: WideFloat, k: usize) -> WideFloat {
    let ncomps = state.tcnt.len();
    if ncomps == 0 {
        return WideFloat::ZERO;
    }
    // d_{n,f}: uncertain edges incident to each component = summed future
    // degrees of its frontier members (derived, not stored — see DESIGN.md).
    let mut d = vec![0u64; ncomps];
    for (slot, &v) in machine.next_frontier().iter().enumerate() {
        d[state.comp[slot] as usize] += machine.future_degree_after_current(v) as u64;
    }
    let mut best = 0.0f64;
    for (&t, &dc) in state.tcnt.iter().zip(&d) {
        if t == 0 {
            continue;
        }
        let t_term = t as f64 / k as f64;
        let d_term = if dc > 0 { 1.0 / dc as f64 } else { 1.0 };
        best = best.max(t_term).max(d_term);
    }
    pn.mul_f64(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;
    use proptest::prelude::*;

    fn fixture() -> (UncertainGraph, Vec<usize>) {
        // The paper's Figure 1 graph: a~e with 6 edges at p = 0.7.
        let g = UncertainGraph::new(
            5,
            [
                (0, 1, 0.7), // e1 a-b
                (0, 2, 0.7), // e2 a-c
                (1, 2, 0.7), // e3 b-c
                (1, 3, 0.7), // e4 b-d
                (2, 4, 0.7), // e5 c-e
                (3, 4, 0.7), // e6 d-e
            ],
        )
        .unwrap();
        (g, vec![0, 3, 4]) // terminals a, d, e
    }

    #[test]
    fn exact_matches_brute_force_on_figure1() {
        let (g, t) = fixture();
        let expect = brute_force_reliability(&g, &t);
        let got = S2Bdd::exact(&g, &t).unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn exact_run_reports_exact_and_tight_bounds() {
        let (g, t) = fixture();
        let r = S2Bdd::solve(&g, &t, S2BddConfig::exact()).unwrap();
        assert!(r.exact);
        assert!(r.bound_gap() < 1e-12);
        assert_eq!(r.samples_used, 0);
        assert_eq!(r.strata, 0);
        assert_eq!(r.layers_total, 6);
    }

    #[test]
    fn trivial_instances() {
        let (g, _) = fixture();
        let r = S2Bdd::solve(&g, &[2], S2BddConfig::default()).unwrap();
        assert_eq!(r.estimate, 1.0);
        assert!(r.exact);
    }

    #[test]
    fn bounded_width_still_within_bounds() {
        let (g, t) = fixture();
        let exact = brute_force_reliability(&g, &t);
        for w in [1usize, 2, 3] {
            let cfg = S2BddConfig {
                max_width: w,
                samples: 4000,
                ..Default::default()
            };
            let r = S2Bdd::solve(&g, &t, cfg).unwrap();
            assert!(
                r.lower_bound <= exact + 1e-12,
                "w={w}: lb {} > {exact}",
                r.lower_bound
            );
            assert!(
                r.upper_bound >= exact - 1e-12,
                "w={w}: ub {} < {exact}",
                r.upper_bound
            );
            assert!(r.estimate >= r.lower_bound - 1e-12 && r.estimate <= r.upper_bound + 1e-12);
            // With sampling the estimate should be in the right neighborhood.
            assert!(
                (r.estimate - exact).abs() < 0.2,
                "w={w}: {} vs {exact}",
                r.estimate
            );
        }
    }

    #[test]
    fn narrow_width_estimates_converge_with_samples() {
        let (g, t) = fixture();
        let exact = brute_force_reliability(&g, &t);
        let cfg = S2BddConfig {
            max_width: 2,
            samples: 200_000,
            seed: 9,
            ..Default::default()
        };
        let r = S2Bdd::solve(&g, &t, cfg).unwrap();
        assert!(!r.exact);
        assert!(
            (r.estimate - exact).abs() < 0.02,
            "{} vs {exact}",
            r.estimate
        );
    }

    #[test]
    fn ht_estimator_also_converges() {
        let (g, t) = fixture();
        let exact = brute_force_reliability(&g, &t);
        let cfg = S2BddConfig {
            max_width: 2,
            samples: 100_000,
            estimator: EstimatorKind::HorvitzThompson,
            seed: 11,
            ..Default::default()
        };
        let r = S2Bdd::solve(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - exact).abs() < 0.05,
            "{} vs {exact}",
            r.estimate
        );
    }

    #[test]
    fn sample_reduction_engages() {
        let (g, t) = fixture();
        let cfg = S2BddConfig {
            max_width: 2,
            samples: 10_000,
            ..Default::default()
        };
        let r = S2Bdd::solve(&g, &t, cfg).unwrap();
        // Bounds tighten during construction, so the final budget is reduced.
        assert!(
            r.s_prime_final < r.samples_requested,
            "{} vs {}",
            r.s_prime_final,
            r.samples_requested
        );
    }

    #[test]
    fn early_exit_engages_when_budget_exhausted() {
        // Cycle 0-1-2-3 with terminals {0, 2}: at layer 0 both branches
        // survive; with w = 1 one node is deleted and sampled, consuming the
        // whole budget (s = 1), so the next layer boundary early-exits.
        let g =
            UncertainGraph::new(4, [(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6), (3, 0, 0.6)]).unwrap();
        let exact = brute_force_reliability(&g, &[0, 2]);
        let cfg = S2BddConfig {
            max_width: 1,
            samples: 1,
            seed: 2,
            ..Default::default()
        };
        let r = S2Bdd::solve(&g, &[0, 2], cfg).unwrap();
        assert!(r.early_exit, "budget of 1 must exhaust immediately: {r:?}");
        assert!(!r.exact);
        assert!(r.lower_bound <= exact && exact <= r.upper_bound);
        assert!(r.layers_completed < r.layers_total);
    }

    #[test]
    fn node_cap_aborts_with_valid_bounds_and_estimate() {
        let (g, t) = fixture();
        let exact = brute_force_reliability(&g, &t);
        let cfg = S2BddConfig {
            node_cap: 3,
            samples: 50_000,
            seed: 13,
            ..S2BddConfig::exact()
        };
        let r = S2Bdd::solve(&g, &t, cfg).unwrap();
        assert!(
            r.node_cap_hit,
            "cap of 3 nodes must trip on Figure 1: {r:?}"
        );
        assert!(!r.exact);
        assert!(!r.early_exit, "cap abort is not a budget early exit");
        assert!(r.layers_completed < r.layers_total);
        assert!(r.lower_bound <= exact + 1e-12 && exact - 1e-12 <= r.upper_bound);
        // The live layer was surfaced as one stratum; with a generous budget
        // the estimate lands near the truth.
        assert!(r.strata >= 1);
        assert!(
            (r.estimate - exact).abs() < 0.05,
            "{} vs {exact}",
            r.estimate
        );
    }

    #[test]
    fn node_cap_without_samples_degrades_to_lower_bound() {
        let (g, t) = fixture();
        let cfg = S2BddConfig {
            node_cap: 3,
            ..S2BddConfig::exact()
        };
        let r = S2Bdd::solve(&g, &t, cfg).unwrap();
        assert!(r.node_cap_hit);
        assert!(!r.exact);
        assert_eq!(r.samples_used, 0);
        assert_eq!(r.estimate, r.lower_bound);
    }

    #[test]
    fn unbounded_node_cap_preserves_exactness() {
        let (g, t) = fixture();
        let base = S2Bdd::solve(&g, &t, S2BddConfig::exact()).unwrap();
        assert!(base.exact && !base.node_cap_hit);
        // A cap far above the diagram size never trips.
        let roomy = S2BddConfig {
            node_cap: 1_000_000,
            ..S2BddConfig::exact()
        };
        let r = S2Bdd::solve(&g, &t, roomy).unwrap();
        assert!(r.exact && !r.node_cap_hit);
        assert_eq!(r.estimate.to_bits(), base.estimate.to_bits());
    }

    #[test]
    fn zero_samples_with_finite_width_degrades_to_lower_bound() {
        let (g, t) = fixture();
        let cfg = S2BddConfig {
            max_width: 1,
            samples: 0,
            ..Default::default()
        };
        let r = S2Bdd::solve(&g, &t, cfg).unwrap();
        assert!(!r.exact);
        assert_eq!(r.samples_used, 0);
        // With no sampling the deleted mass is unaccounted; the clamped
        // estimate equals the proven lower bound.
        assert_eq!(r.estimate, r.lower_bound);
    }

    #[test]
    fn certain_edges_take_single_branch() {
        // p = 1.0 edges must not generate a zero-probability 0-branch.
        let g = UncertainGraph::new(3, [(0, 1, 1.0), (1, 2, 0.5)]).unwrap();
        let r = S2Bdd::solve(&g, &[0, 2], S2BddConfig::exact()).unwrap();
        assert!(r.exact);
        assert!((r.estimate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trajectory_recorded_when_asked() {
        let (g, t) = fixture();
        let cfg = S2BddConfig {
            record_trajectory: true,
            ..S2BddConfig::exact()
        };
        let r = S2Bdd::solve(&g, &t, cfg).unwrap();
        let tr = r.trajectory.unwrap();
        assert_eq!(tr.len(), r.layers_completed);
        // pc and pd are monotone nondecreasing.
        for w in tr.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        let last = tr.last().unwrap();
        assert!((last.0 + last.1 - 1.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn exact_agrees_with_brute_force(
            edges in proptest::collection::vec((0usize..7, 0usize..7, 0.05f64..1.0), 1..12),
            t0 in 0usize..7,
            t1 in 0usize..7,
        ) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            prop_assume!(!list.is_empty());
            let g = UncertainGraph::new(7, list).unwrap();
            let mut t = vec![t0, t1];
            t.sort_unstable();
            t.dedup();
            let expect = brute_force_reliability(&g, &t);
            let got = S2Bdd::exact(&g, &t).unwrap();
            prop_assert!((got - expect).abs() < 1e-9, "{} vs {}", got, expect);
        }

        /// At any width, the proven bounds must bracket the true reliability.
        #[test]
        fn bounds_always_bracket_truth(
            edges in proptest::collection::vec((0usize..6, 0usize..6, 0.1f64..0.95), 2..11),
            w in 1usize..6,
        ) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            prop_assume!(list.len() >= 2);
            let g = UncertainGraph::new(6, list).unwrap();
            let t = vec![0, 5];
            let exact = brute_force_reliability(&g, &t);
            let cfg = S2BddConfig { max_width: w, samples: 200, ..Default::default() };
            let r = S2Bdd::solve(&g, &t, cfg).unwrap();
            prop_assert!(r.lower_bound <= exact + 1e-9);
            prop_assert!(r.upper_bound >= exact - 1e-9);
        }
    }
}
