//! Configuration for the S2BDD solver.

use netrel_bdd::frontier::MergeRule;
use netrel_ugraph::ordering::EdgeOrder;

/// Which estimator aggregates the stratified samples (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum EstimatorKind {
    /// Monte Carlo estimator (sample mean of the connectivity indicator).
    #[default]
    MonteCarlo,
    /// Horvitz–Thompson estimator over distinct sampled worlds with
    /// `π_i = 1 − (1 − Pr[G_pi])^s` (paper §4.2). Requires full-world draws,
    /// so it is somewhat slower per sample.
    HorvitzThompson,
}

/// S2BDD solver configuration.
///
/// `Eq`/`Hash` cover every field (there are no floats), so a configuration
/// can key a plan cache: two configs differing in any knob — width, samples,
/// estimator, order, merge rule, seed, reduction, trajectory — never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct S2BddConfig {
    /// Maximum number of nodes kept per layer (the paper's `w`).
    /// `usize::MAX` disables deletion, making the solver exact.
    pub max_width: usize,
    /// Requested number of samples `s` (before Theorem 1/2 reduction).
    pub samples: usize,
    /// Estimator for the stratified samples.
    pub estimator: EstimatorKind,
    /// Edge processing order.
    pub order: EdgeOrder,
    /// Node-merging rule (paper Lemma 4.3 by default).
    pub merge_rule: MergeRule,
    /// RNG seed for the sampling procedures (the construction itself is
    /// deterministic).
    pub seed: u64,
    /// Apply Theorem 1/2 sample-count reduction as the bounds tighten.
    /// Disable to ablate the reduction while keeping the stratification.
    pub reduce_samples: bool,
    /// Abort construction once the total number of live nodes created
    /// across all layers exceeds this cap: the still-live layer is handed to
    /// the conditional [`StratumSampler`](crate::sampler::StratumSampler) as
    /// one final stratum (the same mechanism as the budget early exit), so
    /// the run still returns proven bounds and an unbiased estimate instead
    /// of blowing up. `usize::MAX` (the default) disables the cap. Used by
    /// the engine's adaptive planner as the safety net of its exact route.
    pub node_cap: usize,
    /// Record the `(p_c, p_d)` trajectory per layer (costs `O(|E|)` memory;
    /// useful for plots and diagnostics).
    pub record_trajectory: bool,
}

impl Default for S2BddConfig {
    fn default() -> Self {
        S2BddConfig {
            max_width: 10_000,
            samples: 10_000,
            estimator: EstimatorKind::MonteCarlo,
            order: EdgeOrder::Bfs,
            merge_rule: MergeRule::Pattern,
            seed: 0x5eed,
            reduce_samples: true,
            node_cap: usize::MAX,
            record_trajectory: false,
        }
    }
}

impl S2BddConfig {
    /// Exact configuration: unbounded width, no sampling.
    pub fn exact() -> Self {
        S2BddConfig {
            max_width: usize::MAX,
            samples: 0,
            ..Default::default()
        }
    }

    /// The paper's default experimental setting (`w` = 10 000, `s` = 10 000).
    pub fn paper_default(seed: u64) -> Self {
        S2BddConfig {
            seed,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = S2BddConfig::default();
        assert_eq!(c.max_width, 10_000);
        assert_eq!(c.samples, 10_000);
        assert_eq!(c.estimator, EstimatorKind::MonteCarlo);
        assert!(c.reduce_samples);
    }

    #[test]
    fn exact_config_disables_sampling() {
        let c = S2BddConfig::exact();
        assert_eq!(c.max_width, usize::MAX);
        assert_eq!(c.samples, 0);
        assert_eq!(c.node_cap, usize::MAX);
    }
}
