//! Sample-count reduction from the bounds (paper Theorems 1 and 2).
//!
//! Given the requested sample count `s`, the lower bound `p_c`, and the upper
//! bound `1 − p_d`, the stratified estimator needs only `s′ ≤ s` samples to
//! match the variance of plain Monte Carlo with `s` samples. The same `s′`
//! applies to both the Monte Carlo and the Horvitz–Thompson estimators
//! (Theorem 2 reduces to Theorem 1 because the estimator is unbiased).

/// Compute `s′` per Theorem 1's five cases. `pc` and `pd` are clamped into
/// `[0, 1]` with `pc + pd ≤ 1`; the result is clamped into `[0, s]`.
pub fn reduced_samples(s: usize, pc: f64, pd: f64) -> usize {
    let pc = pc.clamp(0.0, 1.0);
    let pd = pd.clamp(0.0, 1.0 - pc);
    let sf = s as f64;
    let factor = if pc == 0.0 && pd == 0.0 {
        1.0
    } else if pc == 0.0 {
        1.0 - pd
    } else if pd == 0.0 {
        1.0 - pc
    } else if pc == pd {
        1.0 - 4.0 * pc * (1.0 - pc)
    } else if pc < pd {
        1.0 - 4.0 * pc * (1.0 - pd)
    } else {
        let a = 4.0 * pc * (1.0 - pc);
        let b = 4.0 * (pc * (1.0 - pd) + (pd - pc));
        1.0 - a.min(b)
    };
    ((sf * factor).floor().max(0.0) as usize).min(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_bounds_no_reduction() {
        assert_eq!(reduced_samples(10_000, 0.0, 0.0), 10_000);
    }

    #[test]
    fn pc_zero_case() {
        // s' = ⌊s (1 - pd)⌋
        assert_eq!(reduced_samples(10_000, 0.0, 0.25), 7_500);
    }

    #[test]
    fn pd_zero_case() {
        assert_eq!(reduced_samples(10_000, 0.4, 0.0), 6_000);
    }

    #[test]
    fn equal_bounds_case() {
        // s' = ⌊s (1 - 4 pc (1 - pc))⌋ with pc = 0.25: 1 - 0.75 = 0.25.
        assert_eq!(reduced_samples(10_000, 0.25, 0.25), 2_500);
    }

    #[test]
    fn pc_less_than_pd_case() {
        // 1 - 4 * 0.1 * (1 - 0.3) = 0.72
        assert_eq!(reduced_samples(10_000, 0.1, 0.3), 7_200);
    }

    #[test]
    fn pc_greater_than_pd_case() {
        // a = 4*0.3*0.7 = 0.84; b = 4*(0.3*0.9 + (0.1-0.3)) = 4*0.07 = 0.28.
        // min = 0.28 → factor 0.72; the theorem floors, and 0.72 rounds just
        // below 7200 in binary, hence 7199.
        assert_eq!(reduced_samples(10_000, 0.3, 0.1), 7_199);
    }

    #[test]
    fn tight_bounds_reduce_heavily() {
        // pc = pd = 0.5 is a fully determined instance: factor 1-4*0.25 = 0.
        assert_eq!(reduced_samples(10_000, 0.5, 0.5), 0);
    }

    #[test]
    fn out_of_range_inputs_clamped() {
        assert_eq!(
            reduced_samples(100, -0.5, 2.0),
            reduced_samples(100, 0.0, 1.0)
        );
        assert_eq!(
            reduced_samples(100, 0.9, 0.9),
            reduced_samples(100, 0.9, 0.1)
        );
    }

    proptest! {
        /// Theorem 1's guarantee: s' never exceeds s, for any valid bounds.
        #[test]
        fn never_exceeds_s(s in 0usize..1_000_000, pc in 0.0f64..=1.0, q in 0.0f64..=1.0) {
            let pd = (1.0 - pc) * q;
            let sp = reduced_samples(s, pc, pd);
            prop_assert!(sp <= s);
        }

        /// Monotonicity in the bound quality: more pc (with pd = 0) means
        /// fewer samples.
        #[test]
        fn monotone_in_pc(s in 1usize..100_000, pc1 in 0.0f64..=1.0, pc2 in 0.0f64..=1.0) {
            let (lo, hi) = if pc1 <= pc2 { (pc1, pc2) } else { (pc2, pc1) };
            prop_assert!(reduced_samples(s, hi, 0.0) <= reduced_samples(s, lo, 0.0));
        }
    }
}
