//! Conditional possible-world sampling from an S2BDD node.
//!
//! A node at layer `l` represents the set of possible worlds that share its
//! frontier state; sampling a world from it means drawing states for the
//! *remaining* edges only and checking k-terminal connectivity against the
//! node's component structure — the dynamic-programming view of §4.1:
//! sampling from an intermediate graph is a subproblem of sampling from `G`.
//!
//! The union-find is epoch-versioned (like `netrel_ugraph::sample`) so a
//! sample costs `O(|E_rest| α)` instead of `O(|V|)` reset time.

use netrel_bdd::frontier::{LayerEdge, State};
use netrel_ugraph::VertexId;
use rand::Rng;

#[derive(Clone, Copy, Debug)]
struct Slot {
    parent: u32,
    size: u32,
    tcount: u32,
    epoch: u32,
}

/// Reusable sampler of conditional worlds below a frontier state.
#[derive(Clone, Debug)]
pub struct StratumSampler {
    slots: Vec<Slot>,
    epoch: u32,
    is_terminal: Vec<bool>,
    k: u32,
}

impl StratumSampler {
    /// Sampler over a graph with `n` vertices, `terminal` mask, `k` terminals.
    pub fn new(n: usize, terminal: &[bool], k: usize) -> Self {
        assert_eq!(terminal.len(), n);
        StratumSampler {
            slots: vec![
                Slot {
                    parent: 0,
                    size: 0,
                    tcount: 0,
                    epoch: 0
                };
                n
            ],
            epoch: 0,
            is_terminal: terminal.to_vec(),
            k: k as u32,
        }
    }

    #[inline]
    fn touch(&mut self, x: usize) {
        let init_t = self.is_terminal[x] as u32;
        let s = &mut self.slots[x];
        if s.epoch != self.epoch {
            s.epoch = self.epoch;
            s.parent = x as u32;
            s.size = 1;
            s.tcount = init_t;
        }
    }

    #[inline]
    fn find(&mut self, mut x: usize) -> usize {
        self.touch(x);
        loop {
            let p = self.slots[x].parent as usize;
            if p == x {
                return x;
            }
            let gp = self.slots[p].parent;
            self.slots[x].parent = gp;
            x = gp as usize;
        }
    }

    #[inline]
    fn union_count(&mut self, u: usize, v: usize) -> u32 {
        let mut ra = self.find(u);
        let mut rb = self.find(v);
        if ra == rb {
            return self.slots[ra].tcount;
        }
        if self.slots[ra].size < self.slots[rb].size {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.slots[rb].parent = ra as u32;
        self.slots[ra].size += self.slots[rb].size;
        self.slots[ra].tcount += self.slots[rb].tcount;
        self.slots[ra].tcount
    }

    /// Initialize a fresh world from the node's component structure:
    /// members of each component are unioned and the component root carries
    /// the component's terminal count (which already includes terminals that
    /// left the frontier inside it).
    fn begin(&mut self, state: &State, frontier: &[VertexId]) -> bool {
        debug_assert_eq!(state.comp.len(), frontier.len());
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            for (i, s) in self.slots.iter_mut().enumerate() {
                *s = Slot {
                    parent: i as u32,
                    size: 1,
                    tcount: self.is_terminal[i] as u32,
                    epoch: 0,
                };
            }
        }
        // Union each component's members, then overwrite the root count with
        // the component's stored count.
        let ncomps = state.tcnt.len();
        let mut first_member = vec![usize::MAX; ncomps];
        for (slot, &v) in frontier.iter().enumerate() {
            let c = state.comp[slot] as usize;
            self.touch(v);
            if first_member[c] == usize::MAX {
                first_member[c] = v;
            } else {
                self.union_count(first_member[c], v);
            }
        }
        let mut connected = false;
        for (&fm, &tc) in first_member.iter().zip(&state.tcnt) {
            if fm != usize::MAX {
                let r = self.find(fm);
                self.slots[r].tcount = tc;
                connected |= tc >= self.k;
            }
        }
        connected
    }

    /// Draw one conditional world: Bernoulli states for `rest_edges` only.
    /// Returns whether all `k` terminals are connected. Early-exits (unbiased
    /// — the indicator does not depend on undrawn edges).
    pub fn sample_connected<R: Rng + ?Sized>(
        &mut self,
        state: &State,
        frontier: &[VertexId],
        rest_edges: &[LayerEdge],
        rng: &mut R,
    ) -> bool {
        if self.begin(state, frontier) {
            return true;
        }
        for e in rest_edges {
            if rng.gen::<f64>() < e.p && self.union_count(e.u, e.v) >= self.k {
                return true;
            }
        }
        false
    }

    /// Draw one *full* conditional world (all remaining edges) and return
    /// `(connected, ln conditional probability, state hash)` for the
    /// Horvitz–Thompson estimator.
    pub fn sample_full<R: Rng + ?Sized>(
        &mut self,
        state: &State,
        frontier: &[VertexId],
        rest_edges: &[LayerEdge],
        rng: &mut R,
    ) -> (bool, f64, u64) {
        let mut connected = self.begin(state, frontier);
        let mut ln_p = 0.0f64;
        let mut hash = 0xcbf29ce484222325u64;
        for e in rest_edges {
            let exists = rng.gen::<f64>() < e.p;
            hash ^= exists as u64 + 1;
            hash = hash.wrapping_mul(0x100000001b3);
            if exists {
                ln_p += e.p.ln();
                connected |= self.union_count(e.u, e.v) >= self.k;
            } else {
                ln_p += (1.0 - e.p).ln();
            }
        }
        (connected, ln_p, hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edge(u: usize, v: usize, p: f64) -> LayerEdge {
        LayerEdge { id: 0, u, v, p }
    }

    #[test]
    fn already_connected_state_always_hits() {
        // One component holding both terminals.
        let state = State {
            comp: vec![0, 0],
            tcnt: vec![2],
        };
        let term = vec![true, true, false];
        let mut s = StratumSampler::new(3, &term, 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert!(s.sample_connected(&state, &[0, 1], &[], &mut rng));
        }
    }

    #[test]
    fn conditional_series_probability() {
        // Frontier vertex 1 carries terminal count 1 (terminal 0 merged in and
        // left); terminal 2 still unseen; one remaining edge (1,2) at 0.5.
        let state = State {
            comp: vec![0],
            tcnt: vec![1],
        };
        let term = vec![true, false, true];
        let mut s = StratumSampler::new(3, &term, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let rest = [edge(1, 2, 0.5)];
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| s.sample_connected(&state, &[1], &rest, &mut rng))
            .count();
        let est = hits as f64 / n as f64;
        assert!((est - 0.5).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn two_components_need_bridge() {
        // Components {1} and {2}, each holding one terminal; edges (1,3),(3,2)
        // must both exist: probability 0.25.
        let state = State {
            comp: vec![0, 1],
            tcnt: vec![1, 1],
        };
        let term = vec![false, true, true, false];
        let mut s = StratumSampler::new(4, &term, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let rest = [edge(1, 3, 0.5), edge(3, 2, 0.5)];
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| s.sample_connected(&state, &[1, 2], &rest, &mut rng))
            .count();
        let est = hits as f64 / n as f64;
        assert!((est - 0.25).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn component_count_overrides_member_flags() {
        // Component {1} carries count 2 even though vertex 1 is not a
        // terminal itself (both terminals merged in and left the frontier).
        let state = State {
            comp: vec![0],
            tcnt: vec![2],
        };
        let term = vec![true, false, true, false];
        let mut s = StratumSampler::new(4, &term, 2);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(s.sample_connected(&state, &[1], &[], &mut rng));
    }

    #[test]
    fn full_sampler_reports_cond_prob() {
        let state = State {
            comp: vec![0],
            tcnt: vec![1],
        };
        let term = vec![true, false, true];
        let mut s = StratumSampler::new(3, &term, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let rest = [edge(1, 2, 0.25)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (conn, lnp, h) = s.sample_full(&state, &[1], &rest, &mut rng);
            seen.insert(h);
            if conn {
                assert!((lnp - 0.25f64.ln()).abs() < 1e-12);
            } else {
                assert!((lnp - 0.75f64.ln()).abs() < 1e-12);
            }
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn unseen_terminals_counted_lazily() {
        // Empty frontier state (root-like): terminals 0 and 1 both unseen;
        // single edge (0,1) with p=0.7 connects them.
        let state = State {
            comp: vec![],
            tcnt: vec![],
        };
        let term = vec![true, true];
        let mut s = StratumSampler::new(2, &term, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let rest = [edge(0, 1, 0.7)];
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| s.sample_connected(&state, &[], &rest, &mut rng))
            .count();
        let est = hits as f64 / n as f64;
        assert!((est - 0.7).abs() < 0.01, "estimate {est}");
    }
}
