//! Prune phase: drop vertices and edges that cannot affect reliability.
//!
//! Contract each 2-edge-connected component to a super vertex; bridges then
//! form a forest. The minimal Steiner subtree spanning the terminal-bearing
//! super vertices contains exactly the components and bridges that any
//! terminal-to-terminal path can use, so everything else is discarded
//! without changing `R[G, T]` (paper §5, Prune).

use crate::shared::GraphIndex;
use netrel_ugraph::steiner::steiner_subtree;
use netrel_ugraph::{UncertainGraph, VertexId};

/// Result of the prune phase.
#[derive(Clone, Debug)]
pub struct Pruned {
    /// The pruned graph (vertices renumbered densely).
    pub graph: UncertainGraph,
    /// Old → new vertex ids (`None` for pruned vertices).
    pub vertex_map: Vec<Option<VertexId>>,
    /// Terminals renumbered into the pruned graph.
    pub terminals: Vec<VertexId>,
    /// `true` when the terminals span multiple trees of the bridge forest —
    /// the reliability is identically zero.
    pub trivially_zero: bool,
}

/// Run the prune phase. `terminals` must be valid for `g`.
///
/// Convenience wrapper that builds the [`GraphIndex`] on the spot; workloads
/// issuing many terminal sets against one graph should build the index once
/// and call [`prune_with_index`].
pub fn prune(g: &UncertainGraph, terminals: &[VertexId]) -> Pruned {
    prune_with_index(g, &GraphIndex::build(g), terminals)
}

/// Run the prune phase against a precomputed terminal-independent
/// [`GraphIndex`] of `g`. Only the `O(#components)` Steiner step and the
/// subgraph extraction are done here; results are identical to [`prune`].
pub fn prune_with_index(g: &UncertainGraph, index: &GraphIndex, terminals: &[VertexId]) -> Pruned {
    let num_nodes = index.num_forest_nodes();
    let node_terminal = index.terminal_marks(terminals);

    // Steiner subtree over the contracted forest.
    let st = steiner_subtree(&index.forest_adj, &node_terminal);

    // Terminals in different trees stay in disjoint kept islands; detect by
    // checking that the kept terminal super-vertices form one connected
    // subtree (walk from one of them across kept forest edges).
    let kept_terminal_nodes: Vec<usize> = (0..num_nodes)
        .filter(|&c| st.keep_node[c] && node_terminal[c])
        .collect();
    let trivially_zero = if let Some(&start) = kept_terminal_nodes.first() {
        let mut seen = vec![false; num_nodes];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for &(w, _) in &index.forest_adj[v] {
                if st.keep_node[w] && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        kept_terminal_nodes.iter().any(|&c| !seen[c])
    } else {
        // No terminal-bearing super vertices: only possible with no terminals.
        false
    };

    // Keep a vertex iff its component's super vertex is kept; keep an edge
    // iff both endpoint components are kept (within a kept component all
    // edges stay; a bridge between two kept components lies on the subtree).
    let keep: Vec<bool> = (0..g.num_vertices())
        .map(|v| st.keep_node[index.ecc.comp[v]])
        .collect();
    let (graph, vertex_map) = g.induced_subgraph(&keep);
    let terminals: Vec<VertexId> = terminals
        .iter()
        .map(|&t| vertex_map[t].expect("terminal components are always kept"))
        .collect();
    Pruned {
        graph,
        vertex_map,
        terminals,
        trivially_zero,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;

    /// Triangle {0,1,2} — bridge — triangle {3,4,5} — pendant path 5-6-7.
    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
                (5, 6, 0.9),
                (6, 7, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn pendant_path_pruned() {
        let g = lollipop();
        let p = prune(&g, &[0, 4]);
        assert!(!p.trivially_zero);
        // Vertices 6, 7 are unreachable-by-need: pruned.
        assert_eq!(p.graph.num_vertices(), 6);
        assert_eq!(p.graph.num_edges(), 7);
        assert_eq!(p.vertex_map[6], None);
        assert_eq!(p.vertex_map[7], None);
    }

    #[test]
    fn prune_preserves_reliability() {
        let g = lollipop();
        for t in [vec![0, 4], vec![1, 5], vec![0, 1, 2], vec![7, 0]] {
            let before = brute_force_reliability(&g, &t);
            let p = prune(&g, &t);
            let after = brute_force_reliability(&p.graph, &p.terminals);
            assert!(
                (before - after).abs() < 1e-12,
                "terminals {t:?}: {before} vs {after}"
            );
        }
    }

    #[test]
    fn terminal_inside_pendant_keeps_it() {
        let g = lollipop();
        let p = prune(&g, &[0, 7]);
        // Nothing prunable except nothing — every vertex lies on the path.
        assert_eq!(p.graph.num_vertices(), 8);
    }

    #[test]
    fn terminals_in_disconnected_components_flagged_zero() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (2, 3, 0.5)]).unwrap();
        let p = prune(&g, &[0, 2]);
        assert!(p.trivially_zero);
    }

    #[test]
    fn all_terminals_same_component_not_zero() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (2, 3, 0.5)]).unwrap();
        let p = prune(&g, &[2, 3]);
        assert!(!p.trivially_zero);
        assert_eq!(p.graph.num_vertices(), 2);
    }

    #[test]
    fn single_terminal_prunes_to_point() {
        let g = lollipop();
        let p = prune(&g, &[6]);
        assert!(!p.trivially_zero);
        assert_eq!(p.terminals.len(), 1);
    }

    #[test]
    fn shared_index_reproduces_prune() {
        let g = lollipop();
        let idx = GraphIndex::build(&g);
        for t in [vec![0, 4], vec![1, 5], vec![0, 1, 2], vec![7, 0], vec![6]] {
            let a = prune(&g, &t);
            let b = prune_with_index(&g, &idx, &t);
            assert_eq!(a.trivially_zero, b.trivially_zero);
            assert_eq!(a.vertex_map, b.vertex_map);
            assert_eq!(a.terminals, b.terminals);
            assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        }
    }
}
