//! Transform phase: series / parallel / loop reductions (paper §5,
//! Algorithm 3 lines 8–22), plus an optional dangling-vertex rule.
//!
//! * **Series**: a non-terminal vertex `v` of degree 2 with edges `(v, x)`
//!   and `(v, y)` is contracted into a single edge `(x, y)` with probability
//!   `p · p′` (both must exist for a path through `v`).
//! * **Parallel**: edges `e, e′` between the same endpoints merge into one
//!   with probability `1 − (1 − p)(1 − p′)` (either suffices).
//! * **Loop**: self-loops never affect connectivity; deleted.
//! * **Dangling** *(addition, exactness-preserving, ablatable)*: a
//!   non-terminal vertex of degree 1 is a dead end; its edge is deleted.
//!
//! Rules run to a fixpoint; each application strictly reduces the edge
//! count, so termination is immediate.

use netrel_ugraph::{MultiGraph, UncertainGraph, VertexId};

/// Result of the transform phase.
#[derive(Clone, Debug)]
pub struct Transformed {
    /// The reduced graph (isolated vertices dropped, renumbered).
    pub graph: UncertainGraph,
    /// Terminals renumbered into the reduced graph.
    pub terminals: Vec<VertexId>,
    /// Number of rule applications (series + parallel + loop + dangling).
    pub rules_applied: usize,
}

/// Run series/parallel/loop (and optionally dangling) reductions to fixpoint.
pub fn transform(g: &UncertainGraph, terminals: &[VertexId], prune_dangling: bool) -> Transformed {
    let mut is_terminal = vec![false; g.num_vertices()];
    for &t in terminals {
        is_terminal[t] = true;
    }
    let mut mg = MultiGraph::from_uncertain(g);
    let mut rules_applied = 0usize;

    loop {
        let mut changed = false;

        // Indexed iteration is deliberate: the body mutates `mg`'s edge set
        // while walking its (fixed-count) vertices.
        #[allow(clippy::needless_range_loop)]
        for v in 0..mg.num_vertices() {
            // Loop rule: delete self-loops at v.
            let incident = mg.incident(v);
            for &(id, other) in &incident {
                if other == v {
                    mg.remove_edge(id);
                    rules_applied += 1;
                    changed = true;
                }
            }

            if is_terminal[v] {
                continue;
            }
            let incident = mg.incident(v);
            match incident.len() {
                1 if prune_dangling => {
                    // Dangling rule: dead-end edge cannot serve any terminal.
                    mg.remove_edge(incident[0].0);
                    rules_applied += 1;
                    changed = true;
                }
                2 => {
                    // Series rule: contract v.
                    let (e1, x) = incident[0];
                    let (e2, y) = incident[1];
                    let p1 = mg.edge(e1).expect("incident edge alive").p;
                    let p2 = mg.edge(e2).expect("incident edge alive").p;
                    mg.remove_edge(e1);
                    mg.remove_edge(e2);
                    // x == y creates a self-loop, removed on a later sweep.
                    mg.add_edge(x, y, p1 * p2);
                    rules_applied += 1;
                    changed = true;
                }
                _ => {}
            }
        }

        // Parallel rule: merge duplicate endpoint pairs.
        let mut by_pair: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        let live: Vec<(usize, usize, usize, f64)> = mg
            .live_edges()
            .map(|(id, e)| (id, e.u.min(e.v), e.u.max(e.v), e.p))
            .collect();
        for (id, a, b, p) in live {
            if a == b {
                continue; // loop; handled next sweep
            }
            match by_pair.entry((a, b)) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(id);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let keep = *slot.get();
                    let p0 = mg.edge(keep).expect("kept edge alive").p;
                    mg.remove_edge(keep);
                    mg.remove_edge(id);
                    let merged = 1.0 - (1.0 - p0) * (1.0 - p);
                    let new_id = mg.add_edge(a, b, merged.clamp(f64::MIN_POSITIVE, 1.0));
                    slot.insert(new_id);
                    rules_applied += 1;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    let (graph, map) = mg.to_uncertain().expect("fixpoint graph is simple");
    // Terminals with no remaining edges were dropped by `to_uncertain`; they
    // can only disappear if they became isolated, which for a valid
    // decomposition component cannot happen to a terminal that still needs
    // connecting. Map the survivors.
    let terminals: Vec<VertexId> = terminals.iter().filter_map(|&t| map[t]).collect();
    Transformed {
        graph,
        terminals,
        rules_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;

    fn check_preserves(g: &UncertainGraph, t: &[usize]) {
        let before = brute_force_reliability(g, t);
        let tr = transform(g, t, true);
        let after = if tr.terminals.len() <= 1 {
            // A transform that isolates a terminal means the instance was
            // trivial; brute force on the reduced graph would be vacuous.
            1.0
        } else {
            brute_force_reliability(&tr.graph, &tr.terminals)
        };
        assert!(
            (before - after).abs() < 1e-12,
            "terminals {t:?}: before {before} after {after}"
        );
    }

    #[test]
    fn series_contraction() {
        // 0 -0.5- 1 -0.8- 2, terminals {0, 2}: one edge at 0.4.
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8)]).unwrap();
        let tr = transform(&g, &[0, 2], true);
        assert_eq!(tr.graph.num_edges(), 1);
        assert!((tr.graph.prob(0) - 0.4).abs() < 1e-12);
        check_preserves(&g, &[0, 2]);
    }

    #[test]
    fn series_skips_terminals() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8)]).unwrap();
        let tr = transform(&g, &[0, 1, 2], true);
        assert_eq!(
            tr.graph.num_edges(),
            2,
            "terminal vertex 1 must not contract"
        );
    }

    #[test]
    fn cycle_through_nonterminals_collapses() {
        // Square 0-1-2-3-0, terminals {0, 2}: two parallel series pairs →
        // single edge with 1-(1-p²)².
        let p = 0.6f64;
        let g = UncertainGraph::new(4, [(0, 1, p), (1, 2, p), (2, 3, p), (3, 0, p)]).unwrap();
        let tr = transform(&g, &[0, 2], true);
        assert_eq!(tr.graph.num_vertices(), 2);
        assert_eq!(tr.graph.num_edges(), 1);
        let expect = 1.0 - (1.0 - p * p) * (1.0 - p * p);
        assert!((tr.graph.prob(0) - expect).abs() < 1e-12);
        check_preserves(&g, &[0, 2]);
    }

    #[test]
    fn dangling_removed_when_enabled() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (1, 3, 0.9)]).unwrap();
        let with = transform(&g, &[0, 2], true);
        assert_eq!(
            with.graph.num_edges(),
            1,
            "pendant 3 and then series 1 collapse"
        );
        let without = transform(&g, &[0, 2], false);
        assert_eq!(
            without.graph.num_edges(),
            3,
            "paper rules alone keep the pendant"
        );
        check_preserves(&g, &[0, 2]);
    }

    #[test]
    fn preserves_reliability_on_fixtures() {
        let g = UncertainGraph::new(
            6,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (2, 3, 0.7),
                (3, 4, 0.8),
                (4, 5, 0.9),
                (5, 0, 0.4),
                (1, 4, 0.3),
            ],
        )
        .unwrap();
        check_preserves(&g, &[0, 3]);
        check_preserves(&g, &[0, 2, 4]);
        check_preserves(&g, &[1, 5]);
    }

    #[test]
    fn rules_applied_counted() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8)]).unwrap();
        let tr = transform(&g, &[0, 2], true);
        assert!(tr.rules_applied >= 1);
        // Fixpoint: applying again changes nothing.
        let tr2 = transform(&tr.graph, &tr.terminals, true);
        assert_eq!(tr2.rules_applied, 0);
    }
}
