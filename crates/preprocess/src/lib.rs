//! The extension technique (paper §5): reliability-preserving graph
//! shrinking executed before S2BDD construction and sampling.
//!
//! Three phases:
//!
//! 1. **Prune** — contract 2-edge-connected components into super vertices
//!    (the bridges then form a tree), take the minimal Steiner subtree
//!    spanning the terminal-bearing super vertices, and drop everything
//!    outside it: `R[G] = R[G']`.
//! 2. **Decompose** — every remaining bridge must exist for the terminals to
//!    connect, so `R[G'] = p_b · Π_i R[G_i, T_i]` where `p_b` is the product
//!    of bridge probabilities and each component keeps its own terminals plus
//!    the bridge endpoints (Lemma 5.1).
//! 3. **Transform** — series / parallel / self-loop reductions shrink each
//!    component without changing its reliability (Algorithm 3). A dangling
//!    (degree-1 non-terminal) rule is added on top of the paper's three — it
//!    is likewise exactness-preserving and can be disabled for ablation.
//!
//! The whole pipeline preserves the exact reliability; the property tests
//! check `brute_force(G) = p_b · Π brute_force(G_i)` on random graphs.
//!
//! The pipeline is split into a **terminal-independent** phase
//! ([`GraphIndex`]: bridges, 2ECC labelling, contracted bridge forest —
//! computed once per graph) and a **terminal-dependent** phase
//! ([`preprocess_with_index`]: Steiner pruning, decomposition, transform —
//! run per query). [`preprocess`] composes the two for one-shot use;
//! multi-query engines (see the `netrel-engine` crate) hold the index and
//! amortize the structure passes across thousands of terminal sets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod decompose;
pub mod incremental;
pub mod pipeline;
pub mod prune;
pub mod shared;
pub mod transform;

pub use incremental::{patch_add_edge, patch_remove_edge, patch_update_prob, IndexPatch};
pub use pipeline::{
    preprocess, preprocess_with_index, Part, PreprocessConfig, PreprocessStats, Preprocessed,
};
pub use shared::GraphIndex;
