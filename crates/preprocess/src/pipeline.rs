//! The full preprocessing pipeline (paper Algorithm 3):
//! prune → decompose → transform, with per-phase toggles for ablation.

use crate::decompose::{decompose, decompose_with_index};
use crate::prune::prune_with_index;
use crate::shared::GraphIndex;
use crate::transform::transform;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};

/// Phase toggles.
#[derive(Clone, Copy, Debug)]
pub struct PreprocessConfig {
    /// Enable the prune phase.
    pub prune: bool,
    /// Enable bridge decomposition.
    pub decompose: bool,
    /// Enable series/parallel/loop reductions.
    pub transform: bool,
    /// Enable the extra dangling-vertex rule inside transform.
    pub prune_dangling: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            prune: true,
            decompose: true,
            transform: true,
            prune_dangling: true,
        }
    }
}

impl PreprocessConfig {
    /// Everything off — the pipeline returns the input as a single part.
    pub fn disabled() -> Self {
        PreprocessConfig {
            prune: false,
            decompose: false,
            transform: false,
            prune_dangling: false,
        }
    }
}

/// One residual subproblem.
#[derive(Clone, Debug)]
pub struct Part {
    /// Subgraph to solve.
    pub graph: UncertainGraph,
    /// Its terminal set (`|T| >= 2`).
    pub terminals: Vec<VertexId>,
}

/// Size/shape statistics of a preprocessing run (paper Table 5 columns).
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PreprocessStats {
    /// Edges in the input graph.
    pub original_edges: usize,
    /// Edges surviving the prune phase.
    pub pruned_edges: usize,
    /// Number of decomposed parts still needing computation.
    pub num_parts: usize,
    /// Edges in the largest part after transform.
    pub max_part_edges: usize,
    /// `max_part_edges / original_edges` (the paper's "reduced graph size").
    pub reduced_ratio: f64,
    /// Transform rule applications across parts.
    pub transform_rules: usize,
}

/// Pipeline output: `R[G, T] = pb · Π_i R[parts_i]` (or 0 when
/// `trivially_zero`; an empty part list means the product is just `pb`).
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// Product of bridge probabilities (Lemma 5.1), 1 when decomposition is
    /// disabled.
    pub pb: f64,
    /// Residual subproblems.
    pub parts: Vec<Part>,
    /// The terminals cannot be connected at all.
    pub trivially_zero: bool,
    /// Size statistics.
    pub stats: PreprocessStats,
}

/// Run the extension technique on `(g, terminals)`.
///
/// Convenience wrapper that computes the terminal-independent
/// [`GraphIndex`] on the spot. Multi-query workloads should build the index
/// once per graph and call [`preprocess_with_index`], which skips the
/// `O(|V| + |E|)` structure passes and runs only the terminal-dependent
/// Steiner / subgraph / transform steps.
pub fn preprocess(
    g: &UncertainGraph,
    terminals: &[VertexId],
    cfg: PreprocessConfig,
) -> Result<Preprocessed, GraphError> {
    preprocess_with_index(g, &GraphIndex::build(g), terminals, cfg)
}

/// [`preprocess`] against a precomputed terminal-independent [`GraphIndex`]
/// of `g`. Output is identical to [`preprocess`] for every configuration —
/// the index only replaces recomputation of terminal-independent structure.
pub fn preprocess_with_index(
    g: &UncertainGraph,
    index: &GraphIndex,
    terminals: &[VertexId],
    cfg: PreprocessConfig,
) -> Result<Preprocessed, GraphError> {
    let t = g.validate_terminals(terminals)?;
    let mut stats = PreprocessStats {
        original_edges: g.num_edges(),
        ..Default::default()
    };

    if t.len() <= 1 {
        stats.reduced_ratio = 0.0;
        return Ok(Preprocessed {
            pb: 1.0,
            parts: Vec::new(),
            trivially_zero: false,
            stats,
        });
    }

    // Phase 1: prune (terminal-dependent Steiner step over the shared
    // index's bridge forest).
    let (work_graph, work_terminals) = if cfg.prune {
        let _span = netrel_obs::trace::span("preprocess.prune");
        let p = prune_with_index(g, index, &t);
        if p.trivially_zero {
            return Ok(Preprocessed {
                pb: 0.0,
                parts: Vec::new(),
                trivially_zero: true,
                stats,
            });
        }
        (p.graph, p.terminals)
    } else {
        (g.clone(), t.clone())
    };
    stats.pruned_edges = work_graph.num_edges();

    // Without pruning, terminals may still be disconnected; decomposition
    // assumes relevance, so check connectivity cheaply here.
    if !netrel_ugraph::traversal::terminals_connected_certain(&work_graph, &work_terminals) {
        return Ok(Preprocessed {
            pb: 0.0,
            parts: Vec::new(),
            trivially_zero: true,
            stats,
        });
    }

    // Phase 2: decompose. After pruning the working graph is a different
    // (smaller, renumbered) graph, so the shared index no longer applies and
    // the structure passes rerun on the residual graph — usually a tiny
    // fraction of the original. Without pruning the working graph *is* the
    // input graph and the index is reused directly.
    let (pb, raw_parts) = if cfg.decompose {
        let span = netrel_obs::trace::span("preprocess.decompose");
        let d = if cfg.prune {
            decompose(&work_graph, &work_terminals)
        } else {
            decompose_with_index(&work_graph, index, &work_terminals)
        };
        span.attr("parts", d.parts.len().to_string());
        (
            d.pb,
            d.parts
                .into_iter()
                .map(|c| (c.graph, c.terminals))
                .collect::<Vec<_>>(),
        )
    } else {
        (1.0, vec![(work_graph, work_terminals)])
    };

    // Phase 3: transform each part.
    let mut parts = Vec::with_capacity(raw_parts.len());
    {
        let _span = netrel_obs::trace::span("preprocess.transform");
        for (graph, terminals) in raw_parts {
            if cfg.transform {
                let tr = transform(&graph, &terminals, cfg.prune_dangling);
                stats.transform_rules += tr.rules_applied;
                if tr.terminals.len() >= 2 {
                    parts.push(Part {
                        graph: tr.graph,
                        terminals: tr.terminals,
                    });
                }
            } else if terminals.len() >= 2 {
                parts.push(Part { graph, terminals });
            }
        }
    }

    stats.num_parts = parts.len();
    stats.max_part_edges = parts.iter().map(|p| p.graph.num_edges()).max().unwrap_or(0);
    stats.reduced_ratio = if stats.original_edges == 0 {
        0.0
    } else {
        stats.max_part_edges as f64 / stats.original_edges as f64
    };
    Ok(Preprocessed {
        pb,
        parts,
        trivially_zero: false,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;
    use proptest::prelude::*;

    /// Reference: reconstruct R from the pipeline output with brute force.
    fn pipeline_reliability(pre: &Preprocessed) -> f64 {
        if pre.trivially_zero {
            return 0.0;
        }
        pre.pb
            * pre
                .parts
                .iter()
                .map(|p| brute_force_reliability(&p.graph, &p.terminals))
                .product::<f64>()
    }

    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
                (5, 6, 0.9),
                (6, 7, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn full_pipeline_preserves_reliability() {
        let g = lollipop();
        for t in [vec![0, 4], vec![0, 7], vec![1, 4, 6], vec![0, 1]] {
            let expect = brute_force_reliability(&g, &t);
            let pre = preprocess(&g, &t, PreprocessConfig::default()).unwrap();
            let got = pipeline_reliability(&pre);
            assert!(
                (got - expect).abs() < 1e-12,
                "terminals {t:?}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn each_phase_alone_preserves_reliability() {
        let g = lollipop();
        let t = vec![0, 6];
        let expect = brute_force_reliability(&g, &t);
        for cfg in [
            PreprocessConfig {
                decompose: false,
                transform: false,
                ..Default::default()
            },
            PreprocessConfig {
                prune: false,
                transform: false,
                ..Default::default()
            },
            PreprocessConfig {
                prune: false,
                decompose: false,
                ..Default::default()
            },
            PreprocessConfig::disabled(),
        ] {
            let pre = preprocess(&g, &t, cfg).unwrap();
            let got = pipeline_reliability(&pre);
            assert!((got - expect).abs() < 1e-12, "{cfg:?}: {got} vs {expect}");
        }
    }

    #[test]
    fn stats_reflect_shrinkage() {
        let g = lollipop();
        let pre = preprocess(&g, &[0, 4], PreprocessConfig::default()).unwrap();
        assert_eq!(pre.stats.original_edges, 9);
        assert!(pre.stats.pruned_edges < 9);
        assert!(pre.stats.reduced_ratio < 1.0);
        assert!(pre.stats.num_parts >= 1);
    }

    #[test]
    fn single_terminal_trivial() {
        let g = lollipop();
        let pre = preprocess(&g, &[3], PreprocessConfig::default()).unwrap();
        assert!(!pre.trivially_zero);
        assert!(pre.parts.is_empty());
        assert_eq!(pre.pb, 1.0);
    }

    #[test]
    fn disconnected_terminals_zero_with_and_without_prune() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (2, 3, 0.5)]).unwrap();
        for cfg in [PreprocessConfig::default(), PreprocessConfig::disabled()] {
            let pre = preprocess(&g, &[0, 2], cfg).unwrap();
            assert!(pre.trivially_zero, "{cfg:?}");
        }
    }

    #[test]
    fn with_index_identical_to_oneshot_for_every_phase_mix() {
        let g = lollipop();
        let idx = GraphIndex::build(&g);
        for t in [vec![0, 4], vec![0, 7], vec![1, 4, 6], vec![3]] {
            for cfg in [
                PreprocessConfig::default(),
                PreprocessConfig {
                    prune: false,
                    ..Default::default()
                },
                PreprocessConfig {
                    decompose: false,
                    ..Default::default()
                },
                PreprocessConfig::disabled(),
            ] {
                let a = preprocess(&g, &t, cfg).unwrap();
                let b = preprocess_with_index(&g, &idx, &t, cfg).unwrap();
                assert_eq!(a.pb.to_bits(), b.pb.to_bits(), "{t:?} {cfg:?}");
                assert_eq!(a.trivially_zero, b.trivially_zero);
                assert_eq!(a.parts.len(), b.parts.len());
                for (pa, pb_) in a.parts.iter().zip(&b.parts) {
                    assert_eq!(pa.terminals, pb_.terminals);
                    assert_eq!(pa.graph.edges(), pb_.graph.edges());
                }
                assert_eq!(a.stats.num_parts, b.stats.num_parts);
                assert_eq!(a.stats.max_part_edges, b.stats.max_part_edges);
                assert_eq!(a.stats.transform_rules, b.stats.transform_rules);
            }
        }
    }

    #[test]
    fn pure_tree_fully_resolved() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7)]).unwrap();
        let pre = preprocess(&g, &[0, 3], PreprocessConfig::default()).unwrap();
        assert!(pre.parts.is_empty(), "a tree needs no sampling at all");
        assert!((pre.pb - 0.9 * 0.8 * 0.7).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        /// The headline invariant: preprocessing preserves exact reliability
        /// on arbitrary small graphs, for every phase combination.
        #[test]
        fn pipeline_preserves_reliability_on_random_graphs(
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.05f64..1.0), 1..14),
            t0 in 0usize..8,
            t1 in 0usize..8,
            t2 in 0usize..8,
            phases in 0usize..4,
        ) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            prop_assume!(!list.is_empty());
            let g = UncertainGraph::new(8, list).unwrap();
            let mut t = vec![t0, t1, t2];
            t.sort_unstable();
            t.dedup();
            prop_assume!(t.len() >= 2);
            let cfg = match phases {
                0 => PreprocessConfig::default(),
                1 => PreprocessConfig { transform: false, ..Default::default() },
                2 => PreprocessConfig { decompose: false, ..Default::default() },
                _ => PreprocessConfig { prune_dangling: false, ..Default::default() },
            };
            let expect = brute_force_reliability(&g, &t);
            let pre = preprocess(&g, &t, cfg).unwrap();
            let got = pipeline_reliability(&pre);
            prop_assert!((got - expect).abs() < 1e-9, "{} vs {}", got, expect);
        }
    }
}
