//! Incremental maintenance of a [`GraphIndex`] under single-edge mutations.
//!
//! A mutated graph could always rebuild its index from scratch, but the
//! paper's decomposition makes most mutations *local*: a probability
//! update touches no structure at all, and an edge added or removed
//! inside a 2-edge-connected component can change bridges and
//! articulation points only within that component. The patch functions
//! here exploit exactly that locality and fall back to a full rebuild
//! whenever a mutation merges or splits components (a new bridge, a
//! removed bridge, or an inter-component edge).
//!
//! The contract — enforced by the property tests below and by the
//! engine's rebuild-equivalence suite — is that a patched index is
//! **field-for-field identical** to `GraphIndex::build` on the mutated
//! graph. The key invariants making the cheap paths sound:
//!
//! * `TwoEcc` numbers components by first-seen vertex in `0..n` order, so
//!   an unchanged partition yields unchanged labels.
//! * Any cycle through an edge lies entirely inside one 2ECC (a cycle
//!   cannot cross a bridge), so bridge-ness of an edge in component `C`
//!   equals its bridge-ness in the induced subgraph `G[C]`.
//! * A vertex `v` in component `C` is an articulation point of `G` iff it
//!   is one of `G[C]` or has an incident bridge (for `|C| >= 2`), resp.
//!   iff it has two or more incident bridges (for `|C| == 1`): the bridge
//!   forest is a tree, so every path from a bridge-attached subtree into
//!   `C` runs through its attachment vertex.

use crate::shared::GraphIndex;
use netrel_ugraph::bridges::cut_structure;
use netrel_ugraph::{EdgeId, UncertainGraph, VertexId};

/// How a mutation was absorbed into the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexPatch {
    /// The index was patched in place, touching only the affected
    /// component (probability updates touch nothing at all).
    Patched,
    /// The mutation merged or split components; the index was rebuilt
    /// from scratch.
    Rebuilt,
}

/// Absorb an `update_edge_prob` mutation. The index stores topology only
/// (bridges, components, forest), so this never touches it — the function
/// exists to make the engine's mutation dispatch uniform and the
/// invariant explicit.
#[inline]
pub fn patch_update_prob(_index: &mut GraphIndex) -> IndexPatch {
    IndexPatch::Patched
}

/// Absorb an `add_edge` mutation. `g` is the graph *after* the edge with
/// id `eid` (necessarily the highest id) was appended.
///
/// If both endpoints lie in the same 2ECC the new edge cannot be a
/// bridge, cannot change any other edge's bridge-ness (every new cycle it
/// closes stays inside the component), and cannot relabel components —
/// only articulation points inside that component move, which a local
/// recompute fixes. Any inter-component edge merges forest nodes or links
/// forest trees: full rebuild.
pub fn patch_add_edge(g: &UncertainGraph, index: &mut GraphIndex, eid: EdgeId) -> IndexPatch {
    let e = g.edge(eid);
    let c = index.ecc.comp[e.u];
    if c != index.ecc.comp[e.v] {
        *index = GraphIndex::build(g);
        return IndexPatch::Rebuilt;
    }
    index.cut.is_bridge.push(false);
    patch_articulation(g, index, c);
    IndexPatch::Patched
}

/// Absorb a `remove_edge` mutation. `g` is the graph *after* edge `eid`
/// was removed; `endpoint` is either endpoint of the removed edge and
/// `was_bridge` is the edge's pre-mutation bridge flag.
///
/// Removing a bridge splits a forest tree: full rebuild. Removing a
/// non-bridge keeps its component connected (a 2-edge-connected graph
/// survives any single edge removal), so the component either stays
/// 2-edge-connected — ids shift down by one and articulation points are
/// recomputed locally — or develops internal bridges, which splits it:
/// full rebuild.
pub fn patch_remove_edge(
    g: &UncertainGraph,
    index: &mut GraphIndex,
    eid: EdgeId,
    endpoint: VertexId,
    was_bridge: bool,
) -> IndexPatch {
    if was_bridge {
        *index = GraphIndex::build(g);
        return IndexPatch::Rebuilt;
    }
    let c = index.ecc.comp[endpoint];
    let keep: Vec<bool> = index.ecc.comp.iter().map(|&cc| cc == c).collect();
    let (sub, _) = g.induced_subgraph(&keep);
    let sub_cut = cut_structure(&sub);
    if sub_cut.is_bridge.iter().any(|&b| b) {
        // The component split into two or more 2ECCs.
        *index = GraphIndex::build(g);
        return IndexPatch::Rebuilt;
    }
    // Partition unchanged; shift edge ids above the removed one down.
    index.cut.is_bridge.remove(eid);
    for id in &mut index.cut.bridge_ids {
        debug_assert_ne!(*id, eid, "a removed non-bridge cannot be in bridge_ids");
        if *id > eid {
            *id -= 1;
        }
    }
    for adj in &mut index.forest_adj {
        for (_, id) in adj.iter_mut() {
            if *id > eid {
                *id -= 1;
            }
        }
    }
    patch_articulation(g, index, c);
    IndexPatch::Patched
}

/// Recompute `is_articulation` for every vertex of component `c` from the
/// induced subgraph plus the incident-bridge rule (see the module docs).
/// Vertices outside `c` keep their flags: an intra-component mutation
/// leaves both the structure outside `c` and the bridge forest untouched.
fn patch_articulation(g: &UncertainGraph, index: &mut GraphIndex, c: usize) {
    let keep: Vec<bool> = index.ecc.comp.iter().map(|&cc| cc == c).collect();
    let members = keep.iter().filter(|&&k| k).count();
    let (sub, vmap) = g.induced_subgraph(&keep);
    let sub_cut = cut_structure(&sub);
    for (v, mapped) in vmap.iter().enumerate() {
        let Some(sv) = *mapped else { continue };
        let incident_bridges = g
            .neighbors(v)
            .iter()
            .filter(|&&(_, id)| index.cut.is_bridge[id])
            .count();
        index.cut.is_articulation[v] = if members >= 2 {
            sub_cut.is_articulation[sv] || incident_bridges >= 1
        } else {
            incident_bridges >= 2
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_index_eq(patched: &GraphIndex, fresh: &GraphIndex, what: &str) {
        assert_eq!(
            patched.cut.is_bridge, fresh.cut.is_bridge,
            "{what}: is_bridge"
        );
        assert_eq!(
            patched.cut.is_articulation, fresh.cut.is_articulation,
            "{what}: is_articulation"
        );
        assert_eq!(
            patched.cut.bridge_ids, fresh.cut.bridge_ids,
            "{what}: bridge_ids"
        );
        assert_eq!(patched.ecc.comp, fresh.ecc.comp, "{what}: ecc.comp");
        assert_eq!(
            patched.ecc.num_comps, fresh.ecc.num_comps,
            "{what}: num_comps"
        );
        assert_eq!(patched.forest_adj, fresh.forest_adj, "{what}: forest_adj");
    }

    /// Triangle {0,1,2} — bridge — triangle {3,4,5} — pendant 5-6-7.
    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
                (5, 6, 0.9),
                (6, 7, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn prob_update_needs_no_patch() {
        let mut g = lollipop();
        let mut index = GraphIndex::build(&g);
        g.update_edge_prob(3, 0.123).unwrap();
        assert_eq!(patch_update_prob(&mut index), IndexPatch::Patched);
        assert_index_eq(&index, &GraphIndex::build(&g), "prob update");
    }

    #[test]
    fn intra_component_add_is_patched() {
        let mut g = lollipop();
        let mut index = GraphIndex::build(&g);
        // Chord inside the second triangle's component? It is already a
        // triangle; instead chord the pendant path into the component by
        // hand: add 1-2? exists. Use a square fixture below for that; here
        // add an edge between two vertices of the first triangle's 2ECC
        // after growing it: 0-1-2 is complete, so extend via 5-7 (merges
        // pendant into a cycle — inter-component, rebuilt) and 3-4? exists.
        // The genuinely intra-component case: a 4-cycle with a chord.
        let mut sq = UncertainGraph::new(
            5,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (2, 3, 0.7),
                (3, 0, 0.8),
                (3, 4, 0.9),
            ],
        )
        .unwrap();
        let mut sq_index = GraphIndex::build(&sq);
        let eid = sq.add_edge(0, 2, 0.4).unwrap();
        assert_eq!(patch_add_edge(&sq, &mut sq_index, eid), IndexPatch::Patched);
        assert_index_eq(&sq_index, &GraphIndex::build(&sq), "intra add");

        // Inter-component add on the lollipop: merges components.
        let eid = g.add_edge(2, 4, 0.5).unwrap();
        assert_eq!(patch_add_edge(&g, &mut index, eid), IndexPatch::Rebuilt);
        assert_index_eq(&index, &GraphIndex::build(&g), "inter add");
    }

    #[test]
    fn chord_removal_is_patched_cycle_removal_rebuilds() {
        // 4-cycle with a chord: removing the chord keeps one 2ECC
        // (patched); removing a cycle edge afterwards splits it (rebuilt).
        let mut g = UncertainGraph::new(
            4,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (2, 3, 0.7),
                (3, 0, 0.8),
                (0, 2, 0.9),
            ],
        )
        .unwrap();
        let mut index = GraphIndex::build(&g);
        let chord = 4;
        assert!(!index.cut.is_bridge[chord]);
        let removed = g.remove_edge(chord).unwrap();
        assert_eq!(
            patch_remove_edge(&g, &mut index, chord, removed.u, false),
            IndexPatch::Patched
        );
        assert_index_eq(&index, &GraphIndex::build(&g), "chord removal");

        let removed = g.remove_edge(1).unwrap();
        assert_eq!(
            patch_remove_edge(&g, &mut index, 1, removed.u, false),
            IndexPatch::Rebuilt
        );
        assert_index_eq(&index, &GraphIndex::build(&g), "cycle-edge removal");
    }

    #[test]
    fn bridge_removal_rebuilds() {
        let mut g = lollipop();
        let mut index = GraphIndex::build(&g);
        let bridge = 3; // edge (2, 3)
        assert!(index.cut.is_bridge[bridge]);
        let removed = g.remove_edge(bridge).unwrap();
        assert_eq!(
            patch_remove_edge(&g, &mut index, bridge, removed.u, true),
            IndexPatch::Rebuilt
        );
        assert_index_eq(&index, &GraphIndex::build(&g), "bridge removal");
    }

    #[test]
    fn edge_id_shift_keeps_forest_labels_aligned() {
        // Bridges with ids above the removed edge must shift down in both
        // bridge_ids and forest_adj. Chorded square (edges 0..=4) plus a
        // pendant bridge with the highest id.
        let mut g = UncertainGraph::new(
            5,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (2, 3, 0.7),
                (3, 0, 0.8),
                (0, 2, 0.9),
                (3, 4, 0.4),
            ],
        )
        .unwrap();
        let mut index = GraphIndex::build(&g);
        assert_eq!(index.cut.bridge_ids, vec![5]);
        let removed = g.remove_edge(4).unwrap(); // the chord
        assert_eq!(
            patch_remove_edge(&g, &mut index, 4, removed.u, false),
            IndexPatch::Patched
        );
        assert_eq!(index.cut.bridge_ids, vec![4]);
        assert_index_eq(&index, &GraphIndex::build(&g), "id shift");
    }

    /// Random mutation sequences on random graphs: after every step the
    /// (patched or rebuilt) index must equal a fresh build. This is the
    /// structural half of the engine's rebuild-equivalence guarantee.
    #[test]
    fn random_mutation_sequences_match_fresh_builds() {
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(0xF00D + seed);
            let n = rng.gen_range(2..12usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.35) {
                        edges.push((u, v, rng.gen_range(0.05..=1.0f64)));
                    }
                }
            }
            let mut g = UncertainGraph::new(n, edges).unwrap();
            let mut index = GraphIndex::build(&g);
            for step in 0..25 {
                let what = format!("seed {seed} step {step}");
                match rng.gen_range(0..3u8) {
                    0 if g.num_edges() > 0 => {
                        let e = rng.gen_range(0..g.num_edges());
                        g.update_edge_prob(e, rng.gen_range(0.05..=1.0f64)).unwrap();
                        patch_update_prob(&mut index);
                    }
                    1 => {
                        let u = rng.gen_range(0..n);
                        let v = rng.gen_range(0..n);
                        if u == v || g.neighbors(u).iter().any(|&(w, _)| w == v) {
                            continue;
                        }
                        let eid = g.add_edge(u, v, rng.gen_range(0.05..=1.0f64)).unwrap();
                        patch_add_edge(&g, &mut index, eid);
                    }
                    _ if g.num_edges() > 0 => {
                        let e = rng.gen_range(0..g.num_edges());
                        let was_bridge = index.cut.is_bridge[e];
                        let removed = g.remove_edge(e).unwrap();
                        patch_remove_edge(&g, &mut index, e, removed.u, was_bridge);
                    }
                    _ => continue,
                }
                assert_index_eq(&index, &GraphIndex::build(&g), &what);
            }
        }
    }
}
