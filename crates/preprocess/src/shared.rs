//! Terminal-independent preprocessing structure, shared across queries.
//!
//! The prune and decompose phases both start from the same facts about the
//! *graph alone*: which edges are bridges, the 2-edge-connected-component
//! labelling, and the contracted bridge forest those induce. None of that
//! depends on the terminal set — only the Steiner subtree taken over the
//! forest does. [`GraphIndex`] captures the terminal-independent part once so
//! a multi-query workload (thousands of terminal sets against one graph) can
//! amortize the `O(|V| + |E|)` structure passes and pay only the
//! terminal-dependent `O(#components)` work per query.

use netrel_ugraph::bridges::{cut_structure, CutStructure};
use netrel_ugraph::twoecc::{two_edge_connected_components, TwoEcc};
use netrel_ugraph::{EdgeId, UncertainGraph, VertexId};

/// Terminal-independent preprocessing structure of one uncertain graph.
///
/// Build it once per graph with [`GraphIndex::build`], then answer any number
/// of terminal sets through [`crate::preprocess_with_index`] (or the
/// lower-level [`crate::prune::prune_with_index`] /
/// [`crate::decompose::decompose_with_index`]). The index borrows nothing:
/// it can be stored next to the graph for the lifetime of a service.
#[derive(Clone, Debug)]
pub struct GraphIndex {
    /// Bridges and articulation points of the graph.
    pub cut: CutStructure,
    /// 2-edge-connected-component labelling.
    pub ecc: TwoEcc,
    /// Adjacency of the contracted bridge forest: for each super vertex
    /// (2ECC), `(neighbor super vertex, bridge edge id)` pairs. This is the
    /// terminal-independent half of `BridgeForest`; the per-query half is
    /// just marking which super vertices contain terminals.
    pub forest_adj: Vec<Vec<(usize, EdgeId)>>,
}

impl GraphIndex {
    /// Compute the shared structure of `g` in `O(|V| + |E|)`.
    pub fn build(g: &UncertainGraph) -> Self {
        let span = netrel_obs::trace::span("index.build");
        span.attr("edges", g.num_edges().to_string());
        let cut = cut_structure(g);
        let ecc = two_edge_connected_components(g, &cut);
        let mut forest_adj = vec![Vec::new(); ecc.num_comps];
        for &eid in &cut.bridge_ids {
            let e = g.edge(eid);
            let (a, b) = (ecc.comp[e.u], ecc.comp[e.v]);
            debug_assert_ne!(a, b, "a bridge cannot be internal to a 2ECC");
            forest_adj[a].push((b, eid));
            forest_adj[b].push((a, eid));
        }
        GraphIndex {
            cut,
            ecc,
            forest_adj,
        }
    }

    /// Number of super vertices (2ECCs) in the bridge forest.
    #[inline]
    pub fn num_forest_nodes(&self) -> usize {
        self.ecc.num_comps
    }

    /// The per-query half of the bridge forest: mark which super vertices
    /// contain at least one of `terminals`.
    pub fn terminal_marks(&self, terminals: &[VertexId]) -> Vec<bool> {
        let mut node_terminal = vec![false; self.ecc.num_comps];
        for &t in terminals {
            node_terminal[self.ecc.comp[t]] = true;
        }
        node_terminal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_ugraph::twoecc::BridgeForest;

    /// Triangle {0,1,2} — bridge — triangle {3,4,5} — pendant 5-6-7.
    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
                (5, 6, 0.9),
                (6, 7, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn index_matches_bridge_forest() {
        let g = lollipop();
        let idx = GraphIndex::build(&g);
        for terminals in [vec![0, 4], vec![0, 7], vec![1, 4, 6]] {
            let forest = BridgeForest::build(&g, &idx.cut, &idx.ecc, &terminals);
            assert_eq!(forest.num_nodes, idx.num_forest_nodes());
            assert_eq!(forest.adj, idx.forest_adj);
            assert_eq!(forest.node_terminal, idx.terminal_marks(&terminals));
        }
    }

    #[test]
    fn index_is_terminal_free() {
        // Building the index never looks at terminals: two builds agree.
        let g = lollipop();
        let a = GraphIndex::build(&g);
        let b = GraphIndex::build(&g);
        assert_eq!(a.forest_adj, b.forest_adj);
        assert_eq!(a.ecc.comp, b.ecc.comp);
        assert_eq!(a.cut.bridge_ids, b.cut.bridge_ids);
    }
}
