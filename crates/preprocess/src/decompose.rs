//! Decompose phase: factor the reliability across bridges (Lemma 5.1).
//!
//! Every bridge on a terminal path must exist for the terminals to connect
//! (Factoring Theorem with `R = 0` on the contracted branch), so
//! `R[G, T] = p_b · Π_i R[G_i, T_i]` where `p_b` multiplies the bridge
//! probabilities, the `G_i` are the bridge-free components, and `T_i` adds
//! the bridge endpoints to each side's terminals.

use crate::shared::GraphIndex;
use netrel_ugraph::steiner::steiner_subtree;
use netrel_ugraph::{Dsu, UncertainGraph, VertexId};

/// One decomposed component with its terminal set.
#[derive(Clone, Debug)]
pub struct Component {
    /// The component subgraph (densely renumbered).
    pub graph: UncertainGraph,
    /// Terminals within the subgraph (original terminals plus bridge
    /// endpoints), renumbered.
    pub terminals: Vec<VertexId>,
}

/// Result of the decompose phase.
#[derive(Clone, Debug)]
pub struct Decomposed {
    /// Product of the probabilities of all bridges between kept components.
    pub pb: f64,
    /// Components that still need a reliability computation (at least two
    /// terminals each); components whose terminal set collapsed to `≤ 1`
    /// vertex contribute factor 1 and are dropped.
    pub parts: Vec<Component>,
}

/// Run the decompose phase. Only *relevant* bridges — those on the minimal
/// Steiner subtree of the bridge forest spanning the terminals — are
/// factored into `p_b`; irrelevant bridges (e.g. pendant trees) stay inside
/// their component, where they cannot affect its reliability. This makes the
/// phase correct whether or not [`crate::prune`] ran first. Terminals must
/// all lie in one connected component of `g`.
pub fn decompose(g: &UncertainGraph, terminals: &[VertexId]) -> Decomposed {
    decompose_with_index(g, &GraphIndex::build(g), terminals)
}

/// [`decompose`] against a precomputed terminal-independent [`GraphIndex`]
/// of `g`; results are identical, only the shared structure passes are
/// skipped.
pub fn decompose_with_index(
    g: &UncertainGraph,
    index: &GraphIndex,
    terminals: &[VertexId],
) -> Decomposed {
    let node_terminal = index.terminal_marks(terminals);
    let st = steiner_subtree(&index.forest_adj, &node_terminal);
    // `steiner_subtree` reports kept forest edges by their labels, which
    // `BridgeForest` sets to the original bridge edge ids.
    let relevant_bridges: Vec<usize> = st.keep_edge.clone();

    let mut pb = 1.0f64;
    let mut cut_edge = vec![false; g.num_edges()];
    for &b in &relevant_bridges {
        pb *= g.prob(b);
        cut_edge[b] = true;
    }

    // Components of the graph minus the relevant bridges.
    let mut dsu = Dsu::new(g.num_vertices());
    for (id, e) in g.edges().iter().enumerate() {
        if !cut_edge[id] {
            dsu.union(e.u, e.v);
        }
    }

    // Required vertices per component: own terminals plus relevant-bridge
    // endpoints.
    let mut is_required = vec![false; g.num_vertices()];
    for &t in terminals {
        is_required[t] = true;
    }
    for &b in &relevant_bridges {
        let e = g.edge(b);
        is_required[e.u] = true;
        is_required[e.v] = true;
    }

    // Group component members by root.
    let root_of: Vec<usize> = (0..g.num_vertices()).map(|v| dsu.find(v)).collect();
    let mut roots: Vec<usize> = root_of.clone();
    roots.sort_unstable();
    roots.dedup();
    let mut parts = Vec::new();
    for &root in &roots {
        let keep: Vec<bool> = root_of.iter().map(|&r| r == root).collect();
        let required: Vec<VertexId> = (0..g.num_vertices())
            .filter(|&v| keep[v] && is_required[v])
            .collect();
        if required.len() <= 1 {
            continue; // factor 1
        }
        let (graph, map) = g.induced_subgraph(&keep);
        let comp_terminals: Vec<VertexId> = required
            .iter()
            .map(|&v| map[v].expect("kept vertex mapped"))
            .collect();
        parts.push(Component {
            graph,
            terminals: comp_terminals,
        });
    }
    Decomposed { pb, parts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;

    /// Triangle {0,1,2} — bridge (2,3) — triangle {3,4,5}.
    fn barbell() -> UncertainGraph {
        UncertainGraph::new(
            6,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn factors_across_bridge() {
        let g = barbell();
        let t = vec![0, 4];
        let d = decompose(&g, &t);
        assert!((d.pb - 0.8).abs() < 1e-12);
        assert_eq!(d.parts.len(), 2);
        let product: f64 = d
            .parts
            .iter()
            .map(|p| brute_force_reliability(&p.graph, &p.terminals))
            .product();
        let expect = brute_force_reliability(&g, &t);
        assert!((d.pb * product - expect).abs() < 1e-12);
    }

    #[test]
    fn bridge_endpoints_become_terminals() {
        let g = barbell();
        let d = decompose(&g, &[0, 4]);
        for p in &d.parts {
            // Each triangle holds one original terminal and one bridge
            // endpoint.
            assert_eq!(p.terminals.len(), 2);
            assert_eq!(p.graph.num_edges(), 3);
        }
    }

    #[test]
    fn no_bridges_single_part() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 0, 0.5)]).unwrap();
        let d = decompose(&g, &[0, 2]);
        assert_eq!(d.pb, 1.0);
        assert_eq!(d.parts.len(), 1);
        assert_eq!(d.parts[0].terminals.len(), 2);
    }

    #[test]
    fn pure_tree_collapses_to_pb() {
        // Path 0-1-2-3 with terminals at the ends: all edges are bridges,
        // singleton components contribute factor 1.
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7)]).unwrap();
        let d = decompose(&g, &[0, 3]);
        assert!((d.pb - 0.9 * 0.8 * 0.7).abs() < 1e-12);
        assert!(d.parts.is_empty());
        let expect = brute_force_reliability(&g, &[0, 3]);
        assert!((d.pb - expect).abs() < 1e-12);
    }

    #[test]
    fn chain_of_cycles_factors_fully() {
        // Cycle(0,1,2) - bridge - cycle(3,4,5) - bridge - cycle(6,7,8),
        // terminals 0 and 7.
        let g = UncertainGraph::new(
            9,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (0, 2, 0.5),
                (2, 3, 0.9),
                (3, 4, 0.6),
                (4, 5, 0.6),
                (3, 5, 0.6),
                (5, 6, 0.8),
                (6, 7, 0.7),
                (7, 8, 0.7),
                (6, 8, 0.7),
            ],
        )
        .unwrap();
        let t = vec![0, 7];
        let d = decompose(&g, &t);
        assert_eq!(d.parts.len(), 3);
        assert!((d.pb - 0.9 * 0.8).abs() < 1e-12);
        let product: f64 = d
            .parts
            .iter()
            .map(|p| brute_force_reliability(&p.graph, &p.terminals))
            .product();
        let expect = brute_force_reliability(&g, &t);
        assert!((d.pb * product - expect).abs() < 1e-12);
    }
}
