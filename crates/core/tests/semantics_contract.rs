//! Contract suite for the pluggable reliability semantics: every
//! [`Semantics`](netrel_core::Semantics) implementation must agree with the
//! exhaustive possible-world oracle, and the k-terminal path must stay
//! bit-identical to the historical one-shot `pro_reliability`.

use netrel_core::{
    exact_semantics_value, oracle_value, pro_reliability, sample_semantics_part,
    semantics_reliability, PartComputation, ProConfig, SamplingConfig, SemPart, SemanticsSpec,
};
use netrel_preprocess::GraphIndex;
use netrel_s2bdd::{EstimatorKind, S2BddConfig};
use netrel_ugraph::UncertainGraph;
use proptest::prelude::*;

/// Small fixtures exercising bridges, cycles, chords, and dangling tails —
/// all ≤ 12 edges, well inside the oracle's range.
fn fixtures() -> Vec<UncertainGraph> {
    vec![
        // Path with a tail.
        UncertainGraph::new(4, [(0, 1, 0.8), (1, 2, 0.6), (2, 3, 0.9)]).unwrap(),
        // 4-cycle plus chord.
        UncertainGraph::new(
            4,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
                (3, 0, 0.5),
                (0, 2, 0.3),
            ],
        )
        .unwrap(),
        // Two triangles joined by a bridge (decomposition-heavy).
        UncertainGraph::new(
            6,
            [
                (0, 1, 0.7),
                (1, 2, 0.8),
                (0, 2, 0.9),
                (2, 3, 0.6),
                (3, 4, 0.7),
                (4, 5, 0.8),
                (3, 5, 0.9),
            ],
        )
        .unwrap(),
        // Dense-ish: K4 plus a pendant.
        UncertainGraph::new(
            5,
            [
                (0, 1, 0.4),
                (0, 2, 0.5),
                (0, 3, 0.6),
                (1, 2, 0.7),
                (1, 3, 0.8),
                (2, 3, 0.9),
                (3, 4, 0.5),
            ],
        )
        .unwrap(),
        // Disconnected pair of edges (trivially-zero cases).
        UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap(),
    ]
}

fn specs_for(g: &UncertainGraph) -> Vec<(SemanticsSpec, Vec<usize>)> {
    let n = g.num_vertices();
    let far = n - 1;
    let mut cases = vec![
        (SemanticsSpec::TwoTerminal, vec![0, far]),
        (SemanticsSpec::KTerminal, vec![0, far]),
        (SemanticsSpec::KTerminal, vec![0, 1, far]),
        (SemanticsSpec::AllTerminal, vec![0]),
        (SemanticsSpec::DHop { d: 1 }, vec![0, far]),
        (SemanticsSpec::DHop { d: 2 }, vec![0, far]),
        (SemanticsSpec::DHop { d: n as u32 }, vec![0, far]),
        (SemanticsSpec::ReachSet, vec![0]),
        (SemanticsSpec::ReachSet, vec![far]),
    ];
    cases.retain(|(_, t)| t.iter().all(|&v| v < n));
    cases
}

#[test]
fn exact_route_agrees_with_oracle_on_all_semantics() {
    for g in fixtures() {
        for (spec, t) in specs_for(&g) {
            let truth = oracle_value(&g, spec, &t).unwrap();
            let got = exact_semantics_value(&g, spec, &t).unwrap();
            assert!(
                (got - truth).abs() < 1e-9,
                "{spec:?} {t:?}: {got} vs oracle {truth}"
            );
        }
    }
}

#[test]
fn default_config_route_agrees_with_oracle_on_all_semantics() {
    // The default ProConfig is exact on graphs this small, so the one-shot
    // entry point must also land on the oracle.
    for g in fixtures() {
        for (spec, t) in specs_for(&g) {
            let truth = oracle_value(&g, spec, &t).unwrap();
            let r = semantics_reliability(&g, spec, &t, ProConfig::default()).unwrap();
            assert!(
                (r.estimate - truth).abs() < 1e-9,
                "{spec:?} {t:?}: {} vs oracle {truth}",
                r.estimate
            );
            assert!(
                r.lower_bound <= r.estimate + 1e-12 && r.estimate <= r.upper_bound + 1e-12,
                "{spec:?} {t:?}: bounds [{}, {}] must bracket {}",
                r.lower_bound,
                r.upper_bound,
                r.estimate
            );
        }
    }
}

#[test]
fn sampling_route_converges_to_oracle_per_part() {
    // Flat-sample every part of every plan (both estimators) and recombine:
    // the composed estimate must converge to the oracle value.
    for g in fixtures() {
        for (spec, t) in specs_for(&g) {
            let truth = oracle_value(&g, spec, &t).unwrap();
            for estimator in [EstimatorKind::MonteCarlo, EstimatorKind::HorvitzThompson] {
                let sem = spec.semantics();
                let index = GraphIndex::build(&g);
                let plan = sem.plan(&g, &index, &t, Default::default()).unwrap();
                let solved = plan
                    .parts
                    .iter()
                    .enumerate()
                    .map(|(i, part)| {
                        sample_semantics_part(
                            part,
                            SamplingConfig {
                                samples: 60_000,
                                estimator,
                                seed: 0xC0FFEE ^ i as u64,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                    })
                    .collect();
                let r = sem.combine(&plan, solved);
                let tol = 0.02 * sem.value_upper(&g).max(1.0);
                assert!(
                    (r.estimate - truth).abs() < tol,
                    "{spec:?} {t:?} {estimator:?}: {} vs oracle {truth}",
                    r.estimate
                );
            }
        }
    }
}

#[test]
fn sampling_fallback_inside_solve_is_used_for_wide_dhop_parts() {
    // K7 (21 edges): every vertex is at distance 1 from both endpoints, so
    // d = 2 prunes nothing and the part stays above DHOP_EXACT_EDGE_LIMIT —
    // the deterministic route must fall back to hop-bounded sampling and
    // still land near the oracle.
    let mut edges = Vec::new();
    for u in 0..7usize {
        for v in (u + 1)..7 {
            edges.push((u, v, 0.15 + 0.1 * ((u + v) % 5) as f64));
        }
    }
    let g = UncertainGraph::new(7, edges).unwrap();
    assert!(g.num_edges() > netrel_core::DHOP_EXACT_EDGE_LIMIT);
    let spec = SemanticsSpec::DHop { d: 2 };
    let truth = oracle_value(&g, spec, &[0, 6]).unwrap();
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            samples: 60_000,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = semantics_reliability(&g, spec, &[0, 6], cfg).unwrap();
    assert!(
        r.preprocess_stats.max_part_edges > netrel_core::DHOP_EXACT_EDGE_LIMIT,
        "the pruned part must stay above the exact-enumeration limit"
    );
    assert!(!r.exact, "oversized d-hop part must not claim exactness");
    assert!(r.samples_used > 0);
    assert!(
        (r.estimate - truth).abs() < 0.02,
        "{} vs oracle {truth}",
        r.estimate
    );
}

#[test]
fn two_terminal_is_bit_identical_to_pro_reliability() {
    // The refactor's anchor: routing two-terminal queries through the
    // semantics boundary reproduces the one-shot pipeline bit for bit, for
    // exact, width-bounded, and sampling-heavy configurations.
    let configs = [
        ProConfig::default(),
        ProConfig::paper_default(42),
        ProConfig {
            s2bdd: S2BddConfig {
                max_width: 2,
                samples: 2_000,
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        },
        ProConfig {
            s2bdd: S2BddConfig {
                max_width: 1,
                samples: 500,
                estimator: EstimatorKind::HorvitzThompson,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    ];
    for g in fixtures() {
        let far = g.num_vertices() - 1;
        for cfg in configs {
            let a = pro_reliability(&g, &[0, far], cfg).unwrap();
            for spec in [SemanticsSpec::TwoTerminal, SemanticsSpec::KTerminal] {
                let b = semantics_reliability(&g, spec, &[0, far], cfg).unwrap();
                assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{spec:?}");
                assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
                assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
                assert_eq!(a.variance_estimate.to_bits(), b.variance_estimate.to_bits());
                assert_eq!(a.samples_used, b.samples_used);
                assert_eq!(a.exact, b.exact);
                assert_eq!(a.pb.to_bits(), b.pb.to_bits());
            }
        }
    }
}

#[test]
fn dhop_part_solver_dispatch_is_size_gated() {
    // The same part solved through the deterministic route: exact (tight
    // bounds) under the edge limit.
    let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.25)]).unwrap();
    let part = SemPart {
        graph: g,
        terminals: vec![0, 2],
        computation: PartComputation::DHop { d: 1 },
    };
    let r = netrel_core::solve_semantics_part(&part, S2BddConfig::default()).unwrap();
    assert!(r.exact);
    assert!((r.estimate - 0.25).abs() < 1e-12);
}

/// Random sparse graph on up to 8 vertices with ≤ 12 edges, as an edge-list
/// strategy (may be disconnected — trivially-zero paths are part of the
/// contract).
fn random_graph() -> impl Strategy<Value = UncertainGraph> {
    proptest::collection::vec((0usize..8, 0usize..8, 0.05f64..1.0), 1..13).prop_filter_map(
        "needs at least one simple edge",
        |edges| {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v {
                        return None;
                    }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            if list.is_empty() {
                return None;
            }
            UncertainGraph::new(8, list).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every semantics, random graphs: the exact route equals the oracle.
    #[test]
    fn random_graphs_agree_with_oracle(
        g in random_graph(),
        t0 in 0usize..8,
        t1 in 0usize..8,
        d in 1u32..6,
    ) {
        prop_assume!(t0 != t1);
        let pair = vec![t0, t1];
        let mut cases = vec![
            (SemanticsSpec::TwoTerminal, pair.clone()),
            (SemanticsSpec::KTerminal, pair.clone()),
            (SemanticsSpec::AllTerminal, vec![0]),
            (SemanticsSpec::DHop { d }, pair),
            (SemanticsSpec::ReachSet, vec![t0]),
        ];
        cases.push((SemanticsSpec::KTerminal, vec![t0.min(t1), 7]));
        for (spec, t) in cases {
            let truth = oracle_value(&g, spec, &t).unwrap();
            let got = exact_semantics_value(&g, spec, &t).unwrap();
            prop_assert!(
                (got - truth).abs() < 1e-9,
                "{:?} {:?}: {} vs oracle {}", spec, t, got, truth
            );
        }
    }
}
