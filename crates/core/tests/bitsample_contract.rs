//! Contract suite for the bit-parallel sampler (DESIGN.md §12).
//!
//! A packed kernel cannot be draw-for-draw identical to the flat sampler,
//! so this suite pins the three properties that make shipping it safe:
//!
//! 1. **Statistical equivalence** — on every ≤25-edge fixture, the packed
//!    and flat Monte Carlo estimates both land within 4σ of the exhaustive
//!    possible-world oracle's truth (and within a combined band of each
//!    other), for plain connectivity and under a hop bound.
//! 2. **Lane-level exactness** — each lane of a packed reachability pass
//!    visits exactly the set a scalar BFS visits over that lane's world;
//!    bit-parallelism is an encoding, not an approximation.
//! 3. **Determinism** — the estimate is a pure function of
//!    `(samples, seed)`: byte-identical across thread counts and across
//!    independently constructed runs.

use netrel_core::bitsample::{packed_reach_from, packed_world_masks};
use netrel_core::{
    bitsample_dhop_reliability, bitsample_reliability, dhop_exact_reliability, oracle_value,
    sample_dhop_reliability, sample_reliability, BitSamplingConfig, CsrAdjacency, SamplingConfig,
    SemanticsSpec, LANES,
};
use netrel_s2bdd::EstimatorKind;
use netrel_ugraph::UncertainGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixtures spanning bridges, cycles, chords, and a dense core — all within
/// the oracle's 25-edge cap, with a terminal set per graph.
fn fixtures() -> Vec<(&'static str, UncertainGraph, Vec<usize>)> {
    let path = UncertainGraph::new(5, (0..4).map(|i| (i, i + 1, 0.85))).unwrap();
    let chorded_square = UncertainGraph::new(
        4,
        [
            (0, 1, 0.5),
            (1, 2, 0.5),
            (2, 3, 0.5),
            (3, 0, 0.5),
            (0, 2, 0.3),
        ],
    )
    .unwrap();
    let two_triangles = UncertainGraph::new(
        6,
        [
            (0, 1, 0.7),
            (1, 2, 0.8),
            (0, 2, 0.9),
            (2, 3, 0.6),
            (3, 4, 0.7),
            (4, 5, 0.8),
            (3, 5, 0.9),
        ],
    )
    .unwrap();
    // K6 on flaky edges: 15 edges, frontier as wide as the oracle allows
    // comfortably — the shape the planner actually routes to sampling.
    let mut k6 = Vec::new();
    for a in 0..6usize {
        for b in (a + 1)..6 {
            k6.push((a, b, 0.35 + 0.03 * ((a * 6 + b) % 7) as f64));
        }
    }
    let clique6 = UncertainGraph::new(6, k6).unwrap();
    vec![
        ("path", path, vec![0, 4]),
        ("chorded-square", chorded_square, vec![0, 2]),
        ("two-triangles", two_triangles, vec![0, 5]),
        ("clique6", clique6, vec![0, 3]),
        ("clique6-3term", clique6_clone(), vec![0, 2, 5]),
    ]
}

fn clique6_clone() -> UncertainGraph {
    let mut k6 = Vec::new();
    for a in 0..6usize {
        for b in (a + 1)..6 {
            k6.push((a, b, 0.35 + 0.03 * ((a * 6 + b) % 7) as f64));
        }
    }
    UncertainGraph::new(6, k6).unwrap()
}

const SAMPLES: usize = 100_000;

/// Binomial standard error at the oracle's truth.
fn sigma(truth: f64, samples: usize) -> f64 {
    (truth * (1.0 - truth) / samples as f64).sqrt()
}

#[test]
fn packed_and_flat_estimates_sit_within_4_sigma_of_the_oracle() {
    for (name, g, terminals) in fixtures() {
        let truth = oracle_value(&g, SemanticsSpec::KTerminal, &terminals).unwrap();
        let band = 4.0 * sigma(truth, SAMPLES) + 1e-12;
        let packed = bitsample_reliability(
            &g,
            &terminals,
            BitSamplingConfig {
                samples: SAMPLES,
                seed: 0xC0FFEE,
                threads: 1,
            },
        )
        .unwrap();
        let flat = sample_reliability(
            &g,
            &terminals,
            SamplingConfig {
                samples: SAMPLES,
                estimator: EstimatorKind::MonteCarlo,
                seed: 0xC0FFEE,
                threads: 1,
            },
        )
        .unwrap();
        assert!(
            (packed.estimate - truth).abs() <= band,
            "{name}: packed {} vs oracle {truth} (band {band})",
            packed.estimate
        );
        assert!(
            (flat.estimate - truth).abs() <= band,
            "{name}: flat {} vs oracle {truth} (band {band})",
            flat.estimate
        );
        // Equivalence of the estimators, not just of each to the truth:
        // two unbiased estimates differ by at most the combined band.
        assert!(
            (packed.estimate - flat.estimate).abs() <= 2.0 * band,
            "{name}: packed {} vs flat {}",
            packed.estimate,
            flat.estimate
        );
        // Identical variance formula: R̂(1−R̂)/s on both sides.
        let expect_var = packed.estimate * (1.0 - packed.estimate) / SAMPLES as f64;
        assert!((packed.variance_estimate - expect_var).abs() < 1e-15);
    }
}

#[test]
fn hop_bounded_lanes_sit_within_4_sigma_of_the_exact_dhop_value() {
    let (_, g, _) = &fixtures()[1]; // chorded square
    for d in [1, 2, 3] {
        let truth = dhop_exact_reliability(g, 0, 2, d).unwrap();
        let band = 4.0 * sigma(truth, SAMPLES) + 1e-12;
        let packed = bitsample_dhop_reliability(
            g,
            0,
            2,
            d,
            BitSamplingConfig {
                samples: SAMPLES,
                seed: 0xD0_0D,
                threads: 1,
            },
        )
        .unwrap();
        let flat = sample_dhop_reliability(
            g,
            0,
            2,
            d,
            SamplingConfig {
                samples: SAMPLES,
                estimator: EstimatorKind::MonteCarlo,
                seed: 0xD0_0D,
                threads: 1,
            },
        )
        .unwrap();
        assert!(
            (packed.estimate - truth).abs() <= band,
            "d={d}: packed {} vs exact {truth}",
            packed.estimate
        );
        assert!(
            (flat.estimate - truth).abs() <= band,
            "d={d}: flat {} vs exact {truth}",
            flat.estimate
        );
    }
}

/// Scalar BFS over one world's present-edge mask — deliberately independent
/// of the packed kernel (plain queue, per-vertex adjacency).
fn scalar_reach(g: &UncertainGraph, present: &[bool], source: usize) -> Vec<bool> {
    let mut seen = vec![false; g.num_vertices()];
    let mut queue = vec![source];
    seen[source] = true;
    while let Some(v) = queue.pop() {
        for &(w, e) in g.neighbors(v) {
            if present[e] && !seen[w] {
                seen[w] = true;
                queue.push(w);
            }
        }
    }
    seen
}

#[test]
fn every_lane_of_a_packed_pass_matches_scalar_bfs_exactly() {
    for (name, g, _) in fixtures() {
        let csr = CsrAdjacency::build(&g);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let masks = packed_world_masks(&g, &mut rng);
        let reached = packed_reach_from(&csr, &masks, 0);
        for lane in 0..LANES {
            // Lane `lane`'s world, decoded back into a scalar edge mask.
            let present: Vec<bool> = masks.iter().map(|m| (m >> lane) & 1 == 1).collect();
            let scalar = scalar_reach(&g, &present, 0);
            for v in 0..g.num_vertices() {
                let packed_bit = (reached[v] >> lane) & 1 == 1;
                assert_eq!(
                    packed_bit, scalar[v],
                    "{name}: lane {lane}, vertex {v}: packed {packed_bit} vs scalar BFS"
                );
            }
        }
    }
}

#[test]
fn packed_runs_are_byte_deterministic_across_threads_and_instances() {
    let (_, g, terminals) = &fixtures()[3]; // clique6
    let reference = bitsample_reliability(
        g,
        terminals,
        BitSamplingConfig {
            samples: 12_345, // deliberately not a multiple of 64
            seed: 99,
            threads: 1,
        },
    )
    .unwrap();
    for threads in [1, 8] {
        // A fresh call builds its own CSR and RNGs — an "instance" at the
        // core layer; the engine-level suite covers whole-engine identity.
        let again = bitsample_reliability(
            g,
            terminals,
            BitSamplingConfig {
                samples: 12_345,
                seed: 99,
                threads,
            },
        )
        .unwrap();
        assert_eq!(reference.hits, again.hits, "threads={threads}");
        assert_eq!(
            reference.estimate.to_bits(),
            again.estimate.to_bits(),
            "threads={threads}"
        );
        assert_eq!(
            reference.variance_estimate.to_bits(),
            again.variance_estimate.to_bits(),
            "threads={threads}"
        );
    }
}

/// Random ≤12-edge graphs on 8 vertices, edge probabilities clamped away
/// from the degenerate endpoints; terminals are the two corner vertices
/// (possibly disconnected — truth 0 is a case worth covering).
fn arb_graph() -> impl Strategy<Value = (UncertainGraph, Vec<usize>)> {
    proptest::collection::vec((0usize..8, 0usize..8, 0.05f64..0.95), 1..13).prop_filter_map(
        "needs at least one valid edge",
        |raw| {
            let mut seen = std::collections::BTreeSet::new();
            let mut edges = Vec::new();
            for (a, b, p) in raw {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi && seen.insert((lo, hi)) {
                    edges.push((lo, hi, p));
                }
            }
            if edges.is_empty() {
                return None;
            }
            let g = UncertainGraph::new(8, edges).ok()?;
            Some((g, vec![0, 7]))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_graphs_agree_with_the_oracle(case in arb_graph()) {
        let (g, terminals) = case;
        let truth = oracle_value(&g, SemanticsSpec::KTerminal, &terminals).unwrap();
        let samples = 40_000;
        let packed = bitsample_reliability(
            &g,
            &terminals,
            BitSamplingConfig { samples, seed: 0xABAD1DEA, threads: 1 },
        )
        .unwrap();
        // 5σ over 64 cases keeps the whole-suite false-failure odds ~1e-5;
        // the epsilon absorbs truth = 0 (disconnected pairs), where the
        // packed estimate must be exactly zero too.
        let band = 5.0 * sigma(truth, samples) + 1e-9;
        prop_assert!(
            (packed.estimate - truth).abs() <= band,
            "packed {} vs oracle {} (band {})",
            packed.estimate,
            truth,
            band
        );
    }
}
