//! Bit-parallel possible-world sampling: 64 Monte Carlo worlds per machine
//! word.
//!
//! The flat sampler ([`sample_reliability`](crate::sample_reliability))
//! draws one possible world at a time: one `f64` uniform per edge, one
//! union-find pass per world. This module packs **64 worlds into each
//! `u64`** instead — lane `j` of every word belongs to world `j` of the
//! block — so that
//!
//! * one short run of raw RNG words threshold-packs 64 Bernoulli edge
//!   states at once (see [`packed_bernoulli`]), and
//! * one breadth-first pass with bitwise AND/OR frontier propagation over a
//!   [`CsrAdjacency`] answers 64 connectivity (or hop-bounded reachability)
//!   indicators simultaneously.
//!
//! **Estimator.** The packed kernel is Monte-Carlo-only: the estimate is
//! `popcount(hits) / samples` and the variance the same `R̂(1−R̂)/s` the flat
//! MC sampler reports, so confidence intervals built from a packed part are
//! constructed exactly as before — packing changes *how* worlds are drawn,
//! not what is estimated. Horvitz–Thompson needs per-world occurrence
//! probabilities and stays on the flat sampler.
//!
//! **Determinism.** The sample budget is partitioned into 64-lane *blocks*,
//! and block `b` draws from its own `StdRng(seed ⊕ b·golden)` — the same
//! stream-partition discipline as [`RNG_STREAMS`](crate::RNG_STREAMS) in
//! the flat sampler. Worker threads only execute blocks, so the result is a
//! pure function of `(samples, seed)`: byte-identical across thread counts
//! and engine instances. A partial final block still draws all 64 lanes and
//! masks the surplus, keeping the draw sequence independent of the budget's
//! remainder modulo 64.
//!
//! **Reuse.** Determinism also makes the expensive piece — drawing the
//! edge presence masks — memoizable: the masks depend only on
//! `(edges, samples, seed)`, never on terminals, source, or hop bound, so
//! queries over the same graph share every world and a [`WorldBank`] can
//! serve them with just the (cheap) propagation pass, byte-identical by
//! construction.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::sampling::{run_streams, SamplingResult};
use crate::semantics::{PartComputation, SemPart};
use netrel_s2bdd::S2BddResult;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Worlds packed per machine word — the lane count of every mask in this
/// module.
pub const LANES: usize = 64;

/// Golden-ratio multiplier deriving per-block RNG seeds, shared with the
/// flat sampler's stream partition.
const GOLDEN: u64 = 0x9E3779B97F4A7C15;

/// Configuration for the bit-parallel sampler.
///
/// ```
/// use netrel_core::bitsample::{bitsample_reliability, BitSamplingConfig};
/// use netrel_ugraph::UncertainGraph;
///
/// let g = UncertainGraph::new(3, [(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.5)]).unwrap();
/// let cfg = BitSamplingConfig { samples: 20_000, seed: 42, ..Default::default() };
/// let r = bitsample_reliability(&g, &[0, 2], cfg).unwrap();
/// // 0-2 connects directly (0.5) or via 1 (0.72): R = 0.86.
/// assert!((r.estimate - 0.86).abs() < 0.02);
/// // Same seed, any thread count: identical draws.
/// let par = bitsample_reliability(&g, &[0, 2], BitSamplingConfig { threads: 8, ..cfg }).unwrap();
/// assert_eq!(r.hits, par.hits);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BitSamplingConfig {
    /// Number of possible worlds to draw (lanes across all blocks).
    pub samples: usize,
    /// RNG seed. For a fixed `(samples, seed)` the result is identical for
    /// every `threads` setting (blocks are pure functions of their index).
    pub seed: u64,
    /// Worker threads; `0` = all available cores, `1` = sequential
    /// (default). Only wall-clock changes with this knob, never the result.
    pub threads: usize,
}

impl Default for BitSamplingConfig {
    fn default() -> Self {
        BitSamplingConfig {
            samples: 10_000,
            seed: 0x5eed,
            threads: 1,
        }
    }
}

/// Compressed-sparse-row adjacency over an [`UncertainGraph`]: one flat
/// `(neighbor, edge-id)` array indexed by per-vertex offsets, with both ids
/// narrowed to `u32`. The packed BFS kernels walk this layout instead of
/// the graph's per-vertex vectors so the hot loop touches two dense arrays.
#[derive(Clone, Debug)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `entries` for vertex `v`.
    offsets: Vec<u32>,
    /// `(neighbor, edge id)` pairs, grouped by source vertex.
    entries: Vec<(u32, u32)>,
}

impl CsrAdjacency {
    /// Flatten `g`'s adjacency into CSR form.
    pub fn build(g: &UncertainGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for v in 0..n {
            for &(w, e) in g.neighbors(v) {
                entries.push((w as u32, e as u32));
            }
            offsets.push(entries.len() as u32);
        }
        CsrAdjacency { offsets, entries }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The `(neighbor, edge id)` slice of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[(u32, u32)] {
        &self.entries[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

/// Draw 64 independent Bernoulli(`p`) variables into one word: bit `j` is 1
/// iff world `j` contains the edge.
///
/// Works by comparing each lane's uniform `U ∈ [0, 1)` against `p` one
/// binary digit at a time: each raw RNG word contributes the next uniform
/// bit of all 64 lanes, and a lane is decided the first time its uniform
/// bit differs from the corresponding bit of `p`'s binary expansion
/// (`U`-bit 0 under a `p`-bit 1 ⇒ `U < p`, success; `U`-bit 1 under a
/// `p`-bit 0 ⇒ `U > p`, failure). Undecided lanes halve every round, so
/// the expected cost is ~7 RNG words (the maximum of 64 geometric stopping
/// times) — and just **one** word for `p = 0.5` — while the per-lane
/// success probability is **exactly** `p`: every `f64` is a dyadic
/// rational, so the expansion (and the loop) terminates, and lanes still
/// undecided when `p`'s bits run out have `U = p` to full precision and
/// fail, matching the strict `U < p` rule.
pub fn packed_bernoulli(p: f64, rng: &mut impl RngCore) -> u64 {
    if p >= 1.0 {
        return !0;
    }
    if p <= 0.0 {
        return 0;
    }
    let mut result = 0u64;
    let mut undecided = !0u64;
    let mut frac = p;
    loop {
        frac *= 2.0;
        let r = rng.next_u64();
        if frac >= 1.0 {
            frac -= 1.0;
            result |= undecided & !r;
            undecided &= r;
        } else {
            undecided &= !r;
        }
        if undecided == 0 || frac == 0.0 {
            return result;
        }
    }
}

/// Draw one 64-lane block of possible worlds: the returned vector holds one
/// presence mask per edge, in the graph's edge order (the draw order, which
/// pins the RNG sequence).
pub fn packed_world_masks(g: &UncertainGraph, rng: &mut impl RngCore) -> Vec<u64> {
    g.edges()
        .iter()
        .map(|e| packed_bernoulli(e.p, rng))
        .collect()
}

/// Word-wide reachability fixpoint: bit `j` of `reached[v]` is 1 iff `v` is
/// reachable from `source` in world `j` of `masks`. All 64 lanes start at
/// `source`; one worklist pass propagates
/// `reached[w] |= reached[v] & masks[e]` until no lane changes.
pub fn packed_reach_from(csr: &CsrAdjacency, masks: &[u64], source: VertexId) -> Vec<u64> {
    let n = csr.num_vertices();
    let mut reached = vec![0u64; n];
    let mut in_queue = vec![false; n];
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    reached[source] = !0;
    in_queue[source] = true;
    stack.push(source as u32);
    while let Some(v) = stack.pop() {
        let v = v as usize;
        in_queue[v] = false;
        let rv = reached[v];
        for &(w, e) in csr.neighbors(v) {
            let w = w as usize;
            let add = rv & masks[e as usize] & !reached[w];
            if add != 0 {
                reached[w] |= add;
                if !in_queue[w] {
                    in_queue[w] = true;
                    stack.push(w as u32);
                }
            }
        }
    }
    reached
}

/// Depth-bounded variant of [`packed_reach_from`]: bit `j` of `reached[v]`
/// is 1 iff world `j` contains a `source`–`v` path of at most `d` edges.
/// Level-synchronous — each of the `d` rounds advances every lane's
/// frontier by exactly one hop, mirroring the scalar
/// [`HopSampler`](netrel_ugraph::HopSampler) BFS.
pub fn packed_reach_within(
    csr: &CsrAdjacency,
    masks: &[u64],
    source: VertexId,
    d: u32,
) -> Vec<u64> {
    let n = csr.num_vertices();
    let mut reached = vec![0u64; n];
    let mut cur = vec![0u64; n];
    let mut nxt = vec![0u64; n];
    let mut cur_list: Vec<u32> = vec![source as u32];
    let mut nxt_list: Vec<u32> = Vec::new();
    reached[source] = !0;
    cur[source] = !0;
    for _ in 0..d {
        for &v in &cur_list {
            let v = v as usize;
            let fv = cur[v];
            for &(w, e) in csr.neighbors(v) {
                let w = w as usize;
                let add = fv & masks[e as usize] & !reached[w];
                if add != 0 {
                    if nxt[w] == 0 {
                        nxt_list.push(w as u32);
                    }
                    nxt[w] |= add;
                    reached[w] |= add;
                }
            }
        }
        for &v in &cur_list {
            cur[v as usize] = 0;
        }
        std::mem::swap(&mut cur, &mut nxt);
        std::mem::swap(&mut cur_list, &mut nxt_list);
        nxt_list.clear();
        if cur_list.is_empty() {
            break;
        }
    }
    reached
}

/// Number of 64-lane blocks a sample budget occupies.
pub fn lane_blocks(samples: usize) -> usize {
    samples.div_ceil(LANES)
}

/// Fraction of allocated lanes that carry a live sample, in percent — 100
/// when `samples` is a multiple of 64, lower when the final block is
/// partial. The engine feeds this into its lane-utilization histogram.
pub fn lane_utilization_percent(samples: usize) -> f64 {
    let blocks = lane_blocks(samples);
    if blocks == 0 {
        return 100.0;
    }
    samples as f64 / (blocks * LANES) as f64 * 100.0
}

/// Live-lane mask of block `b` out of `blocks`: all 64 lanes except in a
/// partial final block, where only the low `samples mod 64` lanes count.
fn block_lane_mask(samples: usize, b: usize, blocks: usize) -> u64 {
    let lanes = if b + 1 == blocks && samples % LANES != 0 {
        samples % LANES
    } else {
        LANES
    };
    if lanes == LANES {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

fn block_rng(seed: u64, b: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (b as u64).wrapping_mul(GOLDEN))
}

fn resolve_threads(threads: usize, blocks: usize) -> usize {
    match threads {
        // netrel-lint: allow(thread-count, reason = "worker count only picks how the seed-stable blocks are partitioned; every block's draws are identical for any thread count")
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .max(1)
    .min(blocks.max(1))
}

fn mc_result(hits: u64, samples: usize) -> SamplingResult {
    let s = samples.max(1) as f64;
    let estimate = hits as f64 / s;
    SamplingResult {
        estimate,
        samples,
        hits: hits as usize,
        variance_estimate: estimate * (1.0 - estimate) / s,
    }
}

/// Structural identity of one memoized world draw: the exact edge list
/// (endpoints + probability bits) and the draw parameters. Two parts with
/// equal keys draw bit-identical presence masks for every edge of every
/// block — the terminal set, BFS source, and hop bound play no role in the
/// draws, which is exactly what makes the masks shareable across queries.
#[derive(PartialEq, Eq, Hash)]
struct WorldKey {
    vertices: u32,
    edges: Vec<(u32, u32, u64)>,
    samples: u64,
    seed: u64,
}

impl WorldKey {
    fn of(g: &UncertainGraph, cfg: BitSamplingConfig) -> Self {
        WorldKey {
            vertices: g.num_vertices() as u32,
            edges: g
                .edges()
                .iter()
                .map(|e| (e.u as u32, e.v as u32, e.p.to_bits()))
                .collect(),
            samples: cfg.samples as u64,
            seed: cfg.seed,
        }
    }
}

/// Bank entries above this occupancy (blocks × edges words, ~8 MB) bypass
/// the cache: the mask matrix would be too large to be worth keeping
/// resident.
const BANK_MAX_WORDS: usize = 1 << 20;

/// Entry cap; reaching it drops the whole map before the next insert.
const BANK_MAX_ENTRIES: usize = 64;

/// Cross-query memo for packed world masks.
///
/// Drawing the presence masks is the expensive part of a packed run
/// (several raw RNG words per edge per block; the word-wide BFS over them
/// is cheap), and the masks are a pure function of
/// `(edges, samples, seed)` alone — terminals, source, and hop bound only
/// affect the propagation pass. A multi-query engine answering many
/// terminal pairs over one registered graph with one seed therefore
/// redraws byte-identical worlds on every query; the bank memoizes the
/// mask matrix so repeat queries skip straight to the BFS. Connectivity
/// and hop-bounded parts share the same entry.
///
/// Correctness is unconditional: an entry is the value of a pure function
/// of its key, so hitting, missing, or evicting can never change a result
/// — only wall-clock. Oversized parts (> ~8 MB of masks) skip the bank
/// entirely, and the map is dropped wholesale when it reaches
/// `BANK_MAX_ENTRIES` (64) distinct keys.
#[derive(Default)]
pub struct WorldBank {
    inner: Mutex<HashMap<WorldKey, Arc<Vec<u64>>>>,
}

impl WorldBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized mask matrices.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("world bank poisoned").len()
    }

    /// Whether the bank holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Solve one decomposed part exactly like [`bitsample_part`], reusing
    /// (or installing) the memoized world masks. Byte-identical to the
    /// uncached call in every field.
    pub fn part(&self, part: &SemPart, cfg: BitSamplingConfig) -> Result<S2BddResult, GraphError> {
        part_impl(Some(self), part, cfg)
    }

    /// Drop every memoized mask matrix whose key embeds an edge with
    /// probability bits `prob_bits`; returns how many were dropped. The
    /// mutation layer calls this after an edge update or removal: entries
    /// are values of a pure function of their key, so dropping is memory
    /// hygiene (a mutated part re-keys and can never hit a stale entry) —
    /// matching on the old probability bits over-approximates "covers the
    /// mutated edge" exactly like the plan cache's scoped invalidation.
    pub fn invalidate_prob(&self, prob_bits: u64) -> usize {
        let mut map = self.inner.lock().expect("world bank poisoned");
        let before = map.len();
        // Retain with a per-entry predicate drops the same set in any
        // iteration order, so hash-map order cannot leak into answers.
        map.retain(|key, _| key.edges.iter().all(|&(_, _, pb)| pb != prob_bits));
        before - map.len()
    }

    /// The memoized `blocks × edges` mask matrix for this key, computing
    /// and installing it on a miss.
    fn masks(&self, g: &UncertainGraph, cfg: BitSamplingConfig) -> Arc<Vec<u64>> {
        let key = WorldKey::of(g, cfg);
        if let Some(hit) = self.inner.lock().expect("world bank poisoned").get(&key) {
            return Arc::clone(hit);
        }
        // Compute outside the lock; concurrent misses on the same key do
        // redundant (but identical) work and the first insert wins.
        let fresh = Arc::new(mask_matrix(g, cfg));
        let mut map = self.inner.lock().expect("world bank poisoned");
        if map.len() >= BANK_MAX_ENTRIES {
            map.clear();
        }
        Arc::clone(map.entry(key).or_insert(fresh))
    }
}

/// The full `blocks × edges` presence-mask matrix (blocks-major): word
/// `b * edges + e` holds edge `e`'s presence bits for the 64 worlds of
/// block `b` — exactly the words [`packed_world_masks`] draws for block
/// `b`, in the same order.
fn mask_matrix(g: &UncertainGraph, cfg: BitSamplingConfig) -> Vec<u64> {
    let blocks = lane_blocks(cfg.samples);
    let threads = resolve_threads(cfg.threads, blocks);
    run_streams(blocks, threads, |b| {
        let mut rng = block_rng(cfg.seed, b);
        packed_world_masks(g, &mut rng)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Per-block propagation over a memoized mask matrix: run the early-exit
/// hit kernel on every block's mask slice and sum the lane popcounts.
fn matrix_hits(
    g: &UncertainGraph,
    masks: &[u64],
    samples: usize,
    source: VertexId,
    hops: Option<u32>,
    terminals: &[VertexId],
) -> u64 {
    let csr = CsrAdjacency::build(g);
    let m = g.num_edges();
    let blocks = lane_blocks(samples);
    let mut hits = 0u64;
    for b in 0..blocks {
        let mb = &masks[b * m..(b + 1) * m];
        let live = block_lane_mask(samples, b, blocks);
        let hit = match hops {
            None => packed_hits_from(&csr, mb, source, terminals, live),
            Some(d) => packed_hits_within(&csr, mb, source, d, terminals, live),
        };
        hits += u64::from(hit.count_ones());
    }
    hits
}

/// Hit lanes of one block: `live & ⋀_t reached[t]` — computed with the
/// same worklist fixpoint as [`packed_reach_from`] but returning as soon as
/// every live lane has connected all terminals. Hit lanes only ever grow
/// during propagation and are bounded by `live`, so stopping at `live` (or
/// at the natural fixpoint) yields exactly the full kernel's AND — on
/// dense graphs after touching a small fraction of the edges.
fn packed_hits_from(
    csr: &CsrAdjacency,
    masks: &[u64],
    source: VertexId,
    terminals: &[VertexId],
    live: u64,
) -> u64 {
    let n = csr.num_vertices();
    let mut reached = vec![0u64; n];
    let mut in_queue = vec![false; n];
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    reached[source] = !0;
    in_queue[source] = true;
    stack.push(source as u32);
    let hit_lanes = |reached: &[u64]| {
        let mut hit = live;
        for &t in terminals {
            hit &= reached[t];
        }
        hit
    };
    while let Some(v) = stack.pop() {
        let v = v as usize;
        in_queue[v] = false;
        let rv = reached[v];
        for &(w, e) in csr.neighbors(v) {
            let w = w as usize;
            let add = rv & masks[e as usize] & !reached[w];
            if add != 0 {
                reached[w] |= add;
                if !in_queue[w] {
                    in_queue[w] = true;
                    stack.push(w as u32);
                }
            }
        }
        if hit_lanes(&reached) == live {
            return live;
        }
    }
    hit_lanes(&reached)
}

/// Hop-bounded analogue of [`packed_hits_from`]: the level-synchronous
/// rounds of [`packed_reach_within`], returning as soon as every live lane
/// has a within-bound `source`–terminal path (checked after each relaxed
/// frontier vertex — hit lanes are monotone here too).
fn packed_hits_within(
    csr: &CsrAdjacency,
    masks: &[u64],
    source: VertexId,
    d: u32,
    terminals: &[VertexId],
    live: u64,
) -> u64 {
    let n = csr.num_vertices();
    let mut reached = vec![0u64; n];
    let mut cur = vec![0u64; n];
    let mut nxt = vec![0u64; n];
    let mut cur_list: Vec<u32> = vec![source as u32];
    let mut nxt_list: Vec<u32> = Vec::new();
    reached[source] = !0;
    cur[source] = !0;
    let hit_lanes = |reached: &[u64]| {
        let mut hit = live;
        for &t in terminals {
            hit &= reached[t];
        }
        hit
    };
    if hit_lanes(&reached) == live {
        return live;
    }
    for _ in 0..d {
        for &v in &cur_list {
            let v = v as usize;
            let fv = cur[v];
            for &(w, e) in csr.neighbors(v) {
                let w = w as usize;
                let add = fv & masks[e as usize] & !reached[w];
                if add != 0 {
                    if nxt[w] == 0 {
                        nxt_list.push(w as u32);
                    }
                    nxt[w] |= add;
                    reached[w] |= add;
                }
            }
            if hit_lanes(&reached) == live {
                return live;
            }
        }
        for &v in &cur_list {
            cur[v as usize] = 0;
        }
        std::mem::swap(&mut cur, &mut nxt);
        std::mem::swap(&mut cur_list, &mut nxt_list);
        nxt_list.clear();
        if cur_list.is_empty() {
            break;
        }
    }
    hit_lanes(&reached)
}

/// A bank only helps when the mask matrix is small enough to keep;
/// oversized parts fall back to the streaming (no-matrix) path.
fn usable_bank<'a>(
    bank: Option<&'a WorldBank>,
    g: &UncertainGraph,
    samples: usize,
) -> Option<&'a WorldBank> {
    bank.filter(|_| lane_blocks(samples).saturating_mul(g.num_edges()) <= BANK_MAX_WORDS)
}

/// Estimate `R[G, T]` with the bit-parallel Monte Carlo sampler.
///
/// Statistically equivalent to the flat MC sampler — same per-world edge
/// distribution, same estimator, same variance formula — but not draw-for-
/// draw identical: the packed kernel consumes raw RNG words, the flat one
/// `f64` uniforms. See the module docs for the determinism contract.
pub fn bitsample_reliability(
    g: &UncertainGraph,
    terminals: &[VertexId],
    cfg: BitSamplingConfig,
) -> Result<SamplingResult, GraphError> {
    reliability_impl(None, g, terminals, cfg)
}

fn reliability_impl(
    bank: Option<&WorldBank>,
    g: &UncertainGraph,
    terminals: &[VertexId],
    cfg: BitSamplingConfig,
) -> Result<SamplingResult, GraphError> {
    let t = g.validate_terminals(terminals)?;
    if t.len() <= 1 {
        return Ok(SamplingResult {
            estimate: 1.0,
            samples: 0,
            hits: 0,
            variance_estimate: 0.0,
        });
    }
    let start = t.iter().copied().min().expect("two or more terminals");
    let blocks = lane_blocks(cfg.samples);
    let hits: u64 = if let Some(bank) = usable_bank(bank, g, cfg.samples) {
        let masks = bank.masks(g, cfg);
        matrix_hits(g, &masks, cfg.samples, start, None, &t)
    } else {
        let csr = CsrAdjacency::build(g);
        let threads = resolve_threads(cfg.threads, blocks);
        let t = &t;
        run_streams(blocks, threads, |b| {
            let mut rng = block_rng(cfg.seed, b);
            let masks = packed_world_masks(g, &mut rng);
            let live = block_lane_mask(cfg.samples, b, blocks);
            let hit = packed_hits_from(&csr, &masks, start, t, live);
            u64::from(hit.count_ones())
        })
        .into_iter()
        .sum()
    };
    Ok(mc_result(hits, cfg.samples))
}

/// Estimate the d-hop `s`–`t` reliability with the bit-parallel sampler —
/// the packed analogue of
/// [`sample_dhop_reliability`](crate::sample_dhop_reliability), with the
/// hop bound enforced per lane by the level-synchronous
/// [`packed_reach_within`] kernel.
pub fn bitsample_dhop_reliability(
    g: &UncertainGraph,
    s: VertexId,
    t: VertexId,
    d: u32,
    cfg: BitSamplingConfig,
) -> Result<SamplingResult, GraphError> {
    dhop_impl(None, g, s, t, d, cfg)
}

fn dhop_impl(
    bank: Option<&WorldBank>,
    g: &UncertainGraph,
    s: VertexId,
    t: VertexId,
    d: u32,
    cfg: BitSamplingConfig,
) -> Result<SamplingResult, GraphError> {
    let terms = g.validate_terminals(&[s, t])?;
    if terms.len() < 2 {
        return Ok(SamplingResult {
            estimate: 1.0,
            samples: 0,
            hits: 0,
            variance_estimate: 0.0,
        });
    }
    let blocks = lane_blocks(cfg.samples);
    let hits: u64 = if let Some(bank) = usable_bank(bank, g, cfg.samples) {
        let masks = bank.masks(g, cfg);
        matrix_hits(g, &masks, cfg.samples, s, Some(d), &[t])
    } else {
        let csr = CsrAdjacency::build(g);
        let threads = resolve_threads(cfg.threads, blocks);
        run_streams(blocks, threads, |b| {
            let mut rng = block_rng(cfg.seed, b);
            let masks = packed_world_masks(g, &mut rng);
            let live = block_lane_mask(cfg.samples, b, blocks);
            let hit = packed_hits_within(&csr, &masks, s, d, &[t], live);
            u64::from(hit.count_ones())
        })
        .into_iter()
        .sum()
    };
    Ok(mc_result(hits, cfg.samples))
}

/// Solve one decomposed part with the bit-parallel sampler and shape the
/// outcome as an [`S2BddResult`] — the packed analogue of
/// [`sample_semantics_part`](crate::sample_semantics_part), dispatching on
/// the part's [`PartComputation`]. Like every sampling solver, the proven
/// bounds are the trivial `[0, 1]`, `exact` is `false`, and the statistical
/// quality lives in `variance_estimate` for the downstream CI construction.
pub fn bitsample_part(part: &SemPart, cfg: BitSamplingConfig) -> Result<S2BddResult, GraphError> {
    part_impl(None, part, cfg)
}

fn part_impl(
    bank: Option<&WorldBank>,
    part: &SemPart,
    cfg: BitSamplingConfig,
) -> Result<S2BddResult, GraphError> {
    let r = match part.computation {
        PartComputation::Connectivity => reliability_impl(bank, &part.graph, &part.terminals, cfg)?,
        PartComputation::DHop { d } => match *part.terminals.as_slice() {
            [s, t] => dhop_impl(bank, &part.graph, s, t, d, cfg)?,
            ref other => {
                return Err(GraphError::InvalidTerminals {
                    reason: format!(
                        "d-hop part needs exactly two terminals, got {}",
                        other.len()
                    ),
                })
            }
        },
    };
    Ok(S2BddResult {
        estimate: r.estimate,
        lower_bound: 0.0,
        upper_bound: 1.0,
        exact: false,
        samples_requested: cfg.samples,
        samples_used: r.samples,
        s_prime_final: cfg.samples,
        strata: 1,
        deleted_nodes: 0,
        variance_estimate: r.variance_estimate,
        peak_width: 0,
        peak_memory_bytes: 0,
        layers_completed: 0,
        layers_total: part.graph.num_edges(),
        early_exit: false,
        node_cap_hit: false,
        nodes_created: 0,
        trajectory: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bridge_graph() -> (UncertainGraph, Vec<usize>) {
        let g = UncertainGraph::new(
            4,
            [
                (0, 1, 0.8),
                (1, 2, 0.7),
                (2, 3, 0.9),
                (0, 3, 0.5),
                (1, 3, 0.6),
            ],
        )
        .unwrap();
        (g, vec![0, 2])
    }

    #[test]
    fn packed_bernoulli_frequencies_match_p() {
        // 64 lanes × 4096 words per probability: the observed frequency of
        // a fair uniform prefix test must sit within 5σ of p.
        for p in [0.015625, 0.25, 0.5, 0.61803398875, 0.9] {
            let mut rng = StdRng::seed_from_u64(99);
            let draws = 4096;
            let ones: u64 = (0..draws)
                .map(|_| u64::from(packed_bernoulli(p, &mut rng).count_ones()))
                .sum();
            let n = (draws * LANES) as f64;
            let sigma = (p * (1.0 - p) / n).sqrt();
            let freq = ones as f64 / n;
            assert!((freq - p).abs() < 5.0 * sigma, "p={p}: freq {freq}");
        }
    }

    #[test]
    fn packed_bernoulli_degenerate_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(packed_bernoulli(0.0, &mut rng), 0);
        assert_eq!(packed_bernoulli(1.0, &mut rng), !0);
        // p = 0.5 terminates after exactly one raw word: result = !r.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(packed_bernoulli(0.5, &mut a), !b.next_u64());
    }

    #[test]
    fn csr_matches_graph_adjacency() {
        let (g, _) = bridge_graph();
        let csr = CsrAdjacency::build(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        for v in 0..g.num_vertices() {
            let flat: Vec<(u32, u32)> = g
                .neighbors(v)
                .iter()
                .map(|&(w, e)| (w as u32, e as u32))
                .collect();
            assert_eq!(csr.neighbors(v), flat.as_slice(), "vertex {v}");
        }
    }

    #[test]
    fn converges_to_truth() {
        let (g, t) = bridge_graph();
        let exact = netrel_bdd::brute_force_reliability(&g, &t);
        let cfg = BitSamplingConfig {
            samples: 200_000,
            seed: 1,
            ..Default::default()
        };
        let r = bitsample_reliability(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - exact).abs() < 0.01,
            "{} vs {exact}",
            r.estimate
        );
        assert!(r.variance_estimate > 0.0);
    }

    #[test]
    fn thread_count_never_changes_the_draws() {
        let (g, t) = bridge_graph();
        let base = BitSamplingConfig {
            samples: 10_000,
            seed: 7,
            threads: 1,
        };
        let a = bitsample_reliability(&g, &t, base).unwrap();
        for threads in [0, 2, 8, 64, 1000] {
            let b = bitsample_reliability(&g, &t, BitSamplingConfig { threads, ..base }).unwrap();
            assert_eq!(a.hits, b.hits, "threads={threads}");
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.variance_estimate.to_bits(), b.variance_estimate.to_bits());
        }
    }

    #[test]
    fn partial_final_block_masks_surplus_lanes() {
        // A budget that is not a multiple of 64 must not count ghost lanes:
        // on an always-connected graph, hits == samples exactly.
        let g = UncertainGraph::new(2, [(0, 1, 1.0)]).unwrap();
        for samples in [1, 63, 64, 65, 127, 1000] {
            let r = bitsample_reliability(
                &g,
                &[0, 1],
                BitSamplingConfig {
                    samples,
                    seed: 3,
                    threads: 1,
                },
            )
            .unwrap();
            assert_eq!(r.hits, samples, "samples={samples}");
            assert_eq!(r.estimate, 1.0);
        }
    }

    #[test]
    fn disconnected_terminals_never_hit() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        let r = bitsample_reliability(&g, &[0, 2], BitSamplingConfig::default()).unwrap();
        assert_eq!(r.hits, 0);
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn trivial_terminals() {
        let (g, _) = bridge_graph();
        let r = bitsample_reliability(&g, &[2], BitSamplingConfig::default()).unwrap();
        assert_eq!(r.estimate, 1.0);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn dhop_respects_the_hop_bound() {
        // Square with a weak chord: within 1 hop only the chord connects
        // 0–2, so the estimate must approach 0.3, not the 2-hop value.
        let g = UncertainGraph::new(
            4,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
                (3, 0, 0.5),
                (0, 2, 0.3),
            ],
        )
        .unwrap();
        let cfg = BitSamplingConfig {
            samples: 100_000,
            seed: 11,
            ..Default::default()
        };
        let r1 = bitsample_dhop_reliability(&g, 0, 2, 1, cfg).unwrap();
        assert!((r1.estimate - 0.3).abs() < 0.01, "{}", r1.estimate);
        let truth2 = crate::dhop_exact_reliability(&g, 0, 2, 2).unwrap();
        let r2 = bitsample_dhop_reliability(&g, 0, 2, 2, cfg).unwrap();
        assert!((r2.estimate - truth2).abs() < 0.01, "{}", r2.estimate);
        // A generous bound recovers plain two-terminal reliability.
        let flat = netrel_bdd::brute_force_reliability(&g, &[0, 2]);
        let r4 = bitsample_dhop_reliability(&g, 0, 2, 4, cfg).unwrap();
        assert!((r4.estimate - flat).abs() < 0.01);
    }

    #[test]
    fn dhop_is_thread_invariant() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 0, 0.5)]).unwrap();
        let base = BitSamplingConfig {
            samples: 20_000,
            seed: 23,
            threads: 1,
        };
        let a = bitsample_dhop_reliability(&g, 0, 2, 2, base).unwrap();
        for threads in [0, 3, 8] {
            let b = bitsample_dhop_reliability(&g, 0, 2, 2, BitSamplingConfig { threads, ..base })
                .unwrap();
            assert_eq!(a.hits, b.hits, "threads={threads}");
        }
    }

    #[test]
    fn part_shapes_compose() {
        let (g, t) = bridge_graph();
        let exact = netrel_bdd::brute_force_reliability(&g, &t);
        let part = SemPart::connectivity(g, t);
        let r = bitsample_part(
            &part,
            BitSamplingConfig {
                samples: 100_000,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.exact);
        assert_eq!((r.lower_bound, r.upper_bound), (0.0, 1.0));
        assert!(r.variance_estimate > 0.0);
        let combined = crate::combine_part_results(1.0, Default::default(), vec![r]);
        assert!((combined.estimate - exact).abs() < 0.01);
    }

    #[test]
    fn dhop_part_requires_two_terminals() {
        let (g, _) = bridge_graph();
        let part = SemPart {
            graph: g,
            terminals: vec![0, 1, 2],
            computation: PartComputation::DHop { d: 2 },
        };
        assert!(bitsample_part(&part, BitSamplingConfig::default()).is_err());
    }

    #[test]
    fn early_exit_hit_kernels_match_the_full_fixpoint() {
        // The hit kernels may stop before the fixpoint; the hit lanes they
        // return must still equal the full kernel's per-terminal AND —
        // including lanes that never connect (disconnected pair below).
        let (bridge, _) = bridge_graph();
        let split = UncertainGraph::new(5, [(0, 1, 0.7), (2, 3, 0.6), (3, 4, 0.8)]).unwrap();
        for (g, terminals) in [
            (bridge.clone(), vec![0, 2]),
            (bridge, vec![0, 1, 3]),
            (split, vec![0, 4]),
        ] {
            let csr = CsrAdjacency::build(&g);
            for seed in [1u64, 99, 0xFEED] {
                let mut rng = StdRng::seed_from_u64(seed);
                let masks = packed_world_masks(&g, &mut rng);
                let source = terminals[0];
                let reached = packed_reach_from(&csr, &masks, source);
                for live in [!0u64, (1 << 13) - 1] {
                    let mut want = live;
                    for &t in &terminals {
                        want &= reached[t];
                    }
                    let got = packed_hits_from(&csr, &masks, source, &terminals, live);
                    assert_eq!(got, want, "seed {seed}, live {live:#x}");
                }
                for d in 1..4 {
                    let within = packed_reach_within(&csr, &masks, source, d);
                    let t = *terminals.last().unwrap();
                    let got = packed_hits_within(&csr, &masks, source, d, &[t], !0);
                    assert_eq!(got, within[t], "seed {seed}, d {d}");
                }
            }
        }
    }

    #[test]
    fn world_bank_is_byte_identical_to_the_uncached_solver() {
        let (g, t) = bridge_graph();
        let cfg = BitSamplingConfig {
            samples: 12_345,
            seed: 17,
            threads: 1,
        };
        let bank = WorldBank::new();
        let conn = SemPart::connectivity(g.clone(), t.clone());
        let plain = bitsample_part(&conn, cfg).unwrap();
        // First call installs, second call reuses; both must match the
        // uncached solver bit for bit.
        for round in 0..2 {
            let banked = bank.part(&conn, cfg).unwrap();
            assert_eq!(
                plain.estimate.to_bits(),
                banked.estimate.to_bits(),
                "round {round}"
            );
            assert_eq!(
                plain.variance_estimate.to_bits(),
                banked.variance_estimate.to_bits()
            );
            assert_eq!(plain.samples_used, banked.samples_used);
        }
        assert_eq!(bank.len(), 1);
        let dpart = SemPart {
            graph: g,
            terminals: vec![0, 2],
            computation: PartComputation::DHop { d: 2 },
        };
        let dplain = bitsample_part(&dpart, cfg).unwrap();
        let dbanked = bank.part(&dpart, cfg).unwrap();
        assert_eq!(dplain.estimate.to_bits(), dbanked.estimate.to_bits());
        assert_eq!(
            bank.len(),
            1,
            "hop-bounded parts share the connectivity masks"
        );
    }

    #[test]
    fn world_bank_shares_one_matrix_across_terminal_sets() {
        let (g, _) = bridge_graph();
        let cfg = BitSamplingConfig {
            samples: 2_000,
            seed: 5,
            threads: 1,
        };
        let bank = WorldBank::new();
        // The masks depend only on (edges, samples, seed): every terminal
        // set — any source vertex — reuses the first query's entry.
        for terminals in [vec![0, 2], vec![1, 3], vec![0, 1, 3]] {
            let part = SemPart::connectivity(g.clone(), terminals.clone());
            let banked = bank.part(&part, cfg).unwrap();
            let plain = bitsample_part(&part, cfg).unwrap();
            assert_eq!(
                plain.estimate.to_bits(),
                banked.estimate.to_bits(),
                "{terminals:?}"
            );
        }
        assert_eq!(bank.len(), 1);
        // A different seed draws different worlds: a second entry.
        let part = SemPart::connectivity(g, vec![0, 2]);
        bank.part(&part, BitSamplingConfig { seed: 6, ..cfg })
            .unwrap();
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn world_bank_stays_bounded() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let bank = WorldBank::new();
        let part = SemPart::connectivity(g, vec![0, 2]);
        for seed in 0..(2 * BANK_MAX_ENTRIES as u64 + 3) {
            let cfg = BitSamplingConfig {
                samples: 64,
                seed,
                threads: 1,
            };
            bank.part(&part, cfg).unwrap();
            assert!(
                bank.len() <= BANK_MAX_ENTRIES,
                "seed {seed}: {}",
                bank.len()
            );
        }
        assert!(!bank.is_empty());
    }

    #[test]
    fn lane_accounting() {
        assert_eq!(lane_blocks(0), 0);
        assert_eq!(lane_blocks(1), 1);
        assert_eq!(lane_blocks(64), 1);
        assert_eq!(lane_blocks(65), 2);
        assert_eq!(lane_blocks(10_000), 157);
        assert_eq!(lane_utilization_percent(64), 100.0);
        assert_eq!(lane_utilization_percent(128), 100.0);
        assert!((lane_utilization_percent(96) - 75.0).abs() < 1e-12);
        assert!(lane_utilization_percent(10_000) > 99.0);
        assert_eq!(block_lane_mask(65, 0, 2), !0);
        assert_eq!(block_lane_mask(65, 1, 2), 1);
        assert_eq!(block_lane_mask(128, 1, 2), !0);
    }
}
