//! Distance-constrained (d-hop) two-terminal reliability solvers.
//!
//! The d-hop indicator — "does a sampled world contain an `s`–`t` path of
//! at most `d` edges?" — depends on path *length*, which the S2BDD's
//! frontier-connectivity states do not track. This module provides the two
//! part-level solvers the [`DHop`](crate::semantics::DHop) semantics plugs
//! into the pipeline instead:
//!
//! * [`dhop_exact_reliability`] — exact recursive edge conditioning
//!   (factoring): condition on one undecided edge at a time, pruning whole
//!   subtrees with a pessimistic/optimistic BFS pair. Worst case `O(2^|E|)`
//!   but the bounds close most branches early; callers cap part size at
//!   [`DHOP_EXACT_EDGE_LIMIT`].
//! * [`sample_dhop_reliability`] — flat possible-world sampling of the same
//!   indicator through the crate's shared seed-stable stream driver, with
//!   both MC and Horvitz–Thompson estimators.

use crate::sampling::{estimate_indicator, SamplingConfig, SamplingResult};
use crate::semantics::SemPart;
use netrel_s2bdd::S2BddResult;
use netrel_ugraph::{GraphError, HopSampler, UncertainGraph, VertexId};

/// Largest edge count for which d-hop parts are solved by exact recursive
/// conditioning; beyond it the deterministic route falls back to hop-bounded
/// sampling (and the engine's planner routes to its sampling solver). `2^20`
/// conditioning leaves is the worst case; the BFS bounds usually close far
/// earlier.
pub const DHOP_EXACT_EDGE_LIMIT: usize = 20;

#[derive(Clone, Copy, PartialEq, Eq)]
enum EdgeState {
    Present,
    Absent,
    Undecided,
}

/// Epoch-versioned layered-BFS workspace reused across the whole
/// conditioning recursion, so a bound check costs `O(|E|)` with no
/// per-call allocation or reset.
struct HopBfs {
    visited: Vec<u32>,
    epoch: u32,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl HopBfs {
    fn new(n: usize) -> Self {
        HopBfs {
            visited: vec![0; n],
            epoch: 0,
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Whether `t` is reachable from `s` within `d` hops over the edges
    /// admitted by `states`: `Present` always counts, `Undecided` only in
    /// the optimistic direction. Pessimistic (`optimistic = false`) proves
    /// the indicator 1; a failed optimistic pass proves it 0.
    fn reaches(
        &mut self,
        g: &UncertainGraph,
        states: &[EdgeState],
        s: VertexId,
        t: VertexId,
        d: u32,
        optimistic: bool,
    ) -> bool {
        if s == t {
            return true;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
        self.visited[s] = self.epoch;
        self.frontier.clear();
        self.frontier.push(s as u32);
        for _ in 0..d {
            self.next.clear();
            for fi in 0..self.frontier.len() {
                let v = self.frontier[fi] as usize;
                for &(w, e) in g.neighbors(v) {
                    let admitted = match states[e] {
                        EdgeState::Present => true,
                        EdgeState::Undecided => optimistic,
                        EdgeState::Absent => false,
                    };
                    if admitted && self.visited[w] != self.epoch {
                        if w == t {
                            return true;
                        }
                        self.visited[w] = self.epoch;
                        self.next.push(w as u32);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            if self.frontier.is_empty() {
                return false;
            }
        }
        false
    }
}

fn condition(
    g: &UncertainGraph,
    s: VertexId,
    t: VertexId,
    d: u32,
    states: &mut [EdgeState],
    from: usize,
    bfs: &mut HopBfs,
) -> f64 {
    if bfs.reaches(g, states, s, t, d, false) {
        return 1.0;
    }
    if !bfs.reaches(g, states, s, t, d, true) {
        return 0.0;
    }
    // Neither bound closed, so at least one edge is still undecided: a fully
    // assigned state is always resolved by one of the two passes.
    let j = (from..g.num_edges())
        .find(|&j| states[j] == EdgeState::Undecided)
        .expect("undecided state survives the bound checks");
    let p = g.edges()[j].p;
    states[j] = EdgeState::Present;
    let with = condition(g, s, t, d, states, j + 1, bfs);
    states[j] = EdgeState::Absent;
    let without = condition(g, s, t, d, states, j + 1, bfs);
    states[j] = EdgeState::Undecided;
    p * with + (1.0 - p) * without
}

/// Exact probability that `g` contains an `s`–`t` path of at most `d`
/// edges, by recursive edge conditioning. Deterministic and seed-free; the
/// branch order is the graph's edge order, so the floating-point result is
/// bit-stable across runs. `s == t` is vacuously 1. Worst case `O(2^|E|)` —
/// callers bound `|E|` (see [`DHOP_EXACT_EDGE_LIMIT`]).
pub fn dhop_exact_reliability(
    g: &UncertainGraph,
    s: VertexId,
    t: VertexId,
    d: u32,
) -> Result<f64, GraphError> {
    let terms = g.validate_terminals(&[s, t])?;
    if terms.len() < 2 {
        return Ok(1.0);
    }
    let mut states = vec![EdgeState::Undecided; g.num_edges()];
    let mut bfs = HopBfs::new(g.num_vertices());
    Ok(condition(g, s, t, d, &mut states, 0, &mut bfs))
}

/// Estimate the d-hop reliability by flat possible-world sampling, through
/// the same seed-stable stream partition as
/// [`sample_reliability`](crate::sample_reliability): the result is a pure
/// function of `(samples, estimator, seed)`, independent of `cfg.threads`.
pub fn sample_dhop_reliability(
    g: &UncertainGraph,
    s: VertexId,
    t: VertexId,
    d: u32,
    cfg: SamplingConfig,
) -> Result<SamplingResult, GraphError> {
    let terms = g.validate_terminals(&[s, t])?;
    if terms.len() < 2 {
        return Ok(SamplingResult {
            estimate: 1.0,
            samples: 0,
            hits: 0,
            variance_estimate: 0.0,
        });
    }
    Ok(estimate_indicator(
        cfg,
        |share, mut rng| {
            let mut sampler = HopSampler::new(g.num_vertices(), g.num_edges());
            (0..share)
                .filter(|_| sampler.sample_within_hops(g, s, t, d, &mut rng))
                .count()
        },
        |share, mut rng| {
            let mut sampler = HopSampler::new(g.num_vertices(), g.num_edges());
            (0..share)
                .map(|_| sampler.sample_world_within_hops(g, s, t, d, &mut rng))
                .collect::<Vec<_>>()
        },
    ))
}

fn part_terminals(part: &SemPart) -> Result<(VertexId, VertexId), GraphError> {
    match *part.terminals.as_slice() {
        [s, t] => Ok((s, t)),
        ref other => Err(GraphError::InvalidTerminals {
            reason: format!(
                "d-hop part needs exactly two terminals, got {}",
                other.len()
            ),
        }),
    }
}

/// Solve a d-hop part exactly and shape the outcome as an [`S2BddResult`]
/// (tight bounds, `exact = true`, zero samples), so it composes with other
/// parts through
/// [`combine_part_results`](crate::combine_part_results).
pub fn dhop_exact_part(part: &SemPart, d: u32) -> Result<S2BddResult, GraphError> {
    let (s, t) = part_terminals(part)?;
    let r = dhop_exact_reliability(&part.graph, s, t, d)?;
    let m = part.graph.num_edges();
    Ok(S2BddResult {
        estimate: r,
        lower_bound: r,
        upper_bound: r,
        exact: true,
        samples_requested: 0,
        samples_used: 0,
        s_prime_final: 0,
        strata: 1,
        deleted_nodes: 0,
        variance_estimate: 0.0,
        peak_width: 0,
        peak_memory_bytes: 0,
        layers_completed: m,
        layers_total: m,
        early_exit: false,
        node_cap_hit: false,
        nodes_created: 0,
        trajectory: None,
    })
}

/// Flat-sample a d-hop part and shape the outcome as an [`S2BddResult`]
/// with the trivial `[0, 1]` proven bounds — the d-hop analogue of
/// [`sample_part_result`](crate::sample_part_result).
pub fn sample_dhop_part(
    part: &SemPart,
    d: u32,
    cfg: SamplingConfig,
) -> Result<S2BddResult, GraphError> {
    let (s, t) = part_terminals(part)?;
    let r = sample_dhop_reliability(&part.graph, s, t, d, cfg)?;
    Ok(S2BddResult {
        estimate: r.estimate,
        lower_bound: 0.0,
        upper_bound: 1.0,
        exact: false,
        samples_requested: cfg.samples,
        samples_used: r.samples,
        s_prime_final: cfg.samples,
        strata: 1,
        deleted_nodes: 0,
        variance_estimate: r.variance_estimate,
        peak_width: 0,
        peak_memory_bytes: 0,
        layers_completed: 0,
        layers_total: part.graph.num_edges(),
        early_exit: false,
        node_cap_hit: false,
        nodes_created: 0,
        trajectory: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_s2bdd::EstimatorKind;

    fn square_with_chord() -> UncertainGraph {
        UncertainGraph::new(
            4,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
                (3, 0, 0.5),
                (0, 2, 0.3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn exact_matches_hand_computation() {
        let g = square_with_chord();
        // Within 1 hop: only the chord.
        let r1 = dhop_exact_reliability(&g, 0, 2, 1).unwrap();
        assert!((r1 - 0.3).abs() < 1e-12);
        // Within 2 hops: chord or either 2-edge path.
        let truth2 = 1.0 - (1.0 - 0.3f64) * (1.0 - 0.25) * (1.0 - 0.25);
        let r2 = dhop_exact_reliability(&g, 0, 2, 2).unwrap();
        assert!((r2 - truth2).abs() < 1e-12, "{r2} vs {truth2}");
        // d large enough: plain two-terminal reliability.
        let r4 = dhop_exact_reliability(&g, 0, 2, 4).unwrap();
        let flat = netrel_bdd::brute_force_reliability(&g, &[0, 2]);
        assert!((r4 - flat).abs() < 1e-12);
    }

    #[test]
    fn exact_handles_trivial_cases() {
        let g = square_with_chord();
        assert_eq!(dhop_exact_reliability(&g, 1, 1, 0).unwrap(), 1.0);
        // d = 0 with distinct terminals: no path of length 0.
        assert_eq!(dhop_exact_reliability(&g, 0, 2, 0).unwrap(), 0.0);
    }

    #[test]
    fn sampling_converges_to_exact_with_both_estimators() {
        let g = square_with_chord();
        let truth = dhop_exact_reliability(&g, 0, 2, 2).unwrap();
        for estimator in [EstimatorKind::MonteCarlo, EstimatorKind::HorvitzThompson] {
            let cfg = SamplingConfig {
                samples: 100_000,
                estimator,
                seed: 17,
                ..Default::default()
            };
            let r = sample_dhop_reliability(&g, 0, 2, 2, cfg).unwrap();
            assert!(
                (r.estimate - truth).abs() < 0.01,
                "{estimator:?}: {} vs {truth}",
                r.estimate
            );
        }
    }

    #[test]
    fn sampling_is_thread_invariant() {
        let g = square_with_chord();
        let base = SamplingConfig {
            samples: 20_000,
            seed: 23,
            ..Default::default()
        };
        let a = sample_dhop_reliability(&g, 0, 2, 2, base).unwrap();
        for threads in [0, 3, 64] {
            let b =
                sample_dhop_reliability(&g, 0, 2, 2, SamplingConfig { threads, ..base }).unwrap();
            assert_eq!(a.hits, b.hits, "threads={threads}");
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
    }

    #[test]
    fn part_shapes_compose() {
        let g = square_with_chord();
        let part = SemPart {
            graph: g.clone(),
            terminals: vec![0, 2],
            computation: crate::semantics::PartComputation::DHop { d: 2 },
        };
        let exact = dhop_exact_part(&part, 2).unwrap();
        assert!(exact.exact);
        assert_eq!(exact.lower_bound, exact.upper_bound);
        let sampled = sample_dhop_part(
            &part,
            2,
            SamplingConfig {
                samples: 50_000,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!sampled.exact);
        assert_eq!((sampled.lower_bound, sampled.upper_bound), (0.0, 1.0));
        assert!((sampled.estimate - exact.estimate).abs() < 0.01);
        let combined = crate::combine_part_results(1.0, Default::default(), vec![sampled]);
        assert!(combined.variance_estimate > 0.0);
    }
}
