//! # network-reliability core
//!
//! Public API for k-terminal network reliability in uncertain graphs,
//! reproducing *"Efficient Network Reliability Computation in Uncertain
//! Graphs"* (Sasaki, Fujiwara, Onizuka — EDBT 2019).
//!
//! Three solver families:
//!
//! * [`sampling`] — the classical Monte Carlo / Horvitz–Thompson possible-
//!   world samplers (the paper's `Sampling(MC)` / `Sampling(HT)` baselines),
//!   plus the [`bitsample`] kernel packing 64 Monte Carlo worlds per `u64`
//!   for word-parallel connectivity,
//! * [`pro`] — the paper's approach (`Pro`): preprocessing via 2-edge-
//!   connected components, then one width-bounded S2BDD per decomposed
//!   component, with bound-driven sample reduction (Algorithm 1),
//! * [`exact`] — exact reliability via the unbounded S2BDD (small graphs) or
//!   brute-force enumeration (tiny graphs).
//!
//! Beyond k-terminal connectivity, the [`semantics`] module makes the
//! decompose-then-combine pipeline generic over *what* a query computes:
//! strict two-terminal, k-terminal, all-terminal, distance-constrained
//! ([`dhop`]) reliability, and expected reachable-set size, each validated
//! against the exhaustive possible-world [`oracle`].
//!
//! ```
//! use netrel_core::prelude::*;
//!
//! // A 4-cycle with flaky edges; how reliably are opposite corners connected?
//! let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9), (3, 0, 0.9)]).unwrap();
//! let exact = exact_reliability(&g, &[0, 2]).unwrap();
//! let approx = pro_reliability(&g, &[0, 2], ProConfig::default()).unwrap();
//! assert!((approx.estimate - exact).abs() < 0.05);
//! assert!(approx.lower_bound <= exact && exact <= approx.upper_bound);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitsample;
pub mod dhop;
pub mod exact;
pub mod oracle;
pub mod pro;
pub mod sampling;
pub mod semantics;

pub use bitsample::{
    bitsample_dhop_reliability, bitsample_part, bitsample_reliability, lane_utilization_percent,
    BitSamplingConfig, CsrAdjacency, WorldBank, LANES,
};
pub use dhop::{dhop_exact_reliability, sample_dhop_reliability, DHOP_EXACT_EDGE_LIMIT};
pub use exact::{exact_reliability, exact_semantics_value};
pub use oracle::{oracle_value, ORACLE_EDGE_LIMIT};
pub use pro::{
    combine_part_results, part_s2bdd_config, pro_reliability, pro_reliability_with_index,
    st_reliability, zero_pro_result, ProConfig, ProResult,
};
pub use sampling::{
    sample_part_result, sample_reliability, SamplingConfig, SamplingResult, RNG_STREAMS,
};
pub use semantics::{
    combine_semantics_plan, exact_semantics_part, sample_semantics_part, semantics_reliability,
    semantics_reliability_with_index, solve_semantics_part, PartComputation, PartGroup, SemPart,
    Semantics, SemanticsPlan, SemanticsSpec,
};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::exact::exact_reliability;
    pub use crate::pro::{pro_reliability, st_reliability, ProConfig, ProResult};
    pub use crate::sampling::{sample_reliability, SamplingConfig, SamplingResult};
    pub use crate::semantics::{semantics_reliability, Semantics, SemanticsSpec};
    pub use netrel_preprocess::{preprocess, PreprocessConfig};
    pub use netrel_s2bdd::{EstimatorKind, S2Bdd, S2BddConfig, S2BddResult};
    pub use netrel_ugraph::{GraphError, UncertainGraph};
}
