//! Pluggable reliability **semantics** over the decompose-then-combine
//! pipeline.
//!
//! The paper's `Pro` pipeline (preprocess → per-part solve → combine) is
//! semantics-agnostic in principle: preprocessing yields small canonical
//! *parts*, each part computes some probability, and the part results
//! compose into the query answer. This module makes that pluggable. A
//! [`Semantics`] defines
//!
//! 1. **planning** — how `(graph, terminals)` decomposes into a
//!    [`SemanticsPlan`]: parts (each tagged with the [`PartComputation`] it
//!    answers), part *groups*, and an additive offset;
//! 2. **part solving** — how one part is computed, deterministically
//!    ([`Semantics::solve_part`]) or by flat possible-world sampling
//!    ([`Semantics::sample_part`]);
//! 3. **combination** — how solved parts recombine into the final
//!    [`ProResult`] ([`Semantics::combine`]): per group the classic product
//!    composition `pb_g · Π R̂ᵢ` of
//!    [`combine_part_results`], summed across
//!    groups plus the offset.
//!
//! Five implementations ship ([`SemanticsSpec`] is the value-level handle):
//! the seed [`KTerminal`] connectivity semantics (the default — the paper's
//! query; two-terminal is the `k = 2` case), strict [`TwoTerminal`],
//! [`AllTerminal`], distance-constrained [`DHop`], and the expected
//! reachable-set size [`ReachSet`].
//!
//! **Bit-identity contract**: for connectivity semantics the plan is one
//! group over all parts with offset 0, and [`combine_semantics_plan`]
//! delegates that shape verbatim to `combine_part_results` — so routing a
//! two-terminal (or any k-terminal) query through this trait boundary
//! produces answers bit-identical to one-shot
//! [`pro_reliability`](crate::pro_reliability). The contract is pinned by
//! `tests/semantics_contract.rs` and the engine's planner contract suite.
//!
//! ```
//! use netrel_core::semantics::{semantics_reliability, SemanticsSpec};
//! use netrel_core::ProConfig;
//! use netrel_ugraph::UncertainGraph;
//!
//! let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9), (3, 0, 0.9)]).unwrap();
//! // Within 2 hops, opposite corners connect through either 2-edge path.
//! let r = semantics_reliability(&g, SemanticsSpec::DHop { d: 2 }, &[0, 2], ProConfig::default())
//!     .unwrap();
//! let truth = 1.0 - (1.0 - 0.81f64) * (1.0 - 0.81);
//! assert!(r.exact && (r.estimate - truth).abs() < 1e-12);
//! ```

use crate::dhop::{dhop_exact_part, sample_dhop_part, DHOP_EXACT_EDGE_LIMIT};
use crate::pro::{combine_part_results, part_s2bdd_config, zero_pro_result, ProConfig, ProResult};
use crate::sampling::{sample_part_result, SamplingConfig};
use netrel_preprocess::{
    preprocess_with_index, GraphIndex, PreprocessConfig, PreprocessStats, Preprocessed,
};
use netrel_s2bdd::{S2Bdd, S2BddConfig, S2BddResult};
use netrel_ugraph::traversal::bfs_distances;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};

/// Value-level identifier of a reliability semantics: which question a
/// query asks of the uncertain graph. `Copy + Eq + Hash` so it can ride in
/// queries and cache keys; [`SemanticsSpec::semantics`] resolves it to the
/// trait object that implements it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SemanticsSpec {
    /// Strict two-terminal s–t reliability: exactly two distinct terminals
    /// required. Identical answers to [`SemanticsSpec::KTerminal`] on the
    /// same pair — the variant only adds arity validation.
    TwoTerminal,
    /// k-terminal reliability — the probability that all query terminals
    /// lie in one connected component (the paper's query; the seed
    /// behavior, hence the default). Two-terminal queries are the `k = 2`
    /// case.
    #[default]
    KTerminal,
    /// All-terminal reliability: the probability the sampled world is
    /// connected as a whole (`T = V`). The query's terminal list is
    /// ignored.
    AllTerminal,
    /// Distance-constrained two-terminal reliability: the probability an
    /// s–t path of at most `d` edges exists.
    DHop {
        /// Maximum path length in hops.
        d: u32,
    },
    /// Expected reachable-set size `E[|R(s)|]` from a single source
    /// terminal, in `[1, |V|]` (the source always reaches itself).
    ReachSet,
}

impl SemanticsSpec {
    /// Stable lowercase name (used by the JSON service and answers).
    pub fn name(self) -> &'static str {
        match self {
            SemanticsSpec::TwoTerminal => "two-terminal",
            SemanticsSpec::KTerminal => "k-terminal",
            SemanticsSpec::AllTerminal => "all-terminal",
            SemanticsSpec::DHop { .. } => "d-hop",
            SemanticsSpec::ReachSet => "reach-set",
        }
    }

    /// Resolve to the [`Semantics`] implementation.
    pub fn semantics(self) -> Box<dyn Semantics> {
        match self {
            SemanticsSpec::TwoTerminal => Box::new(TwoTerminal),
            SemanticsSpec::KTerminal => Box::new(KTerminal),
            SemanticsSpec::AllTerminal => Box::new(AllTerminal),
            SemanticsSpec::DHop { d } => Box::new(DHop { d }),
            SemanticsSpec::ReachSet => Box::new(ReachSet),
        }
    }
}

// Manual impl (the vendored serde_derive shim handles only structs):
// serialized as `{"kind": <name>}` plus `"d"` for the d-hop variant.
#[cfg(feature = "serde")]
impl serde::Serialize for SemanticsSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![(
            "kind".to_string(),
            serde::Value::Str(self.name().to_string()),
        )];
        if let SemanticsSpec::DHop { d } = self {
            fields.push(("d".to_string(), serde::Value::U64(u64::from(*d))));
        }
        serde::Value::Map(fields)
    }
}

/// What one decomposed part computes. Only two part-level computations
/// exist across all shipped semantics: plain terminal connectivity
/// (S2BDD-solvable — k-terminal, all-terminal, and reach-set plans all
/// reduce to it) and hop-bounded s–t reachability. Part caches must key on
/// this discriminant: a d-hop part over the same `(edges, terminals)` is a
/// different subproblem than a connectivity part, and distinct hop bounds
/// are distinct subproblems.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartComputation {
    /// Probability that the part's terminals are all connected.
    #[default]
    Connectivity,
    /// Probability that the part's two terminals are joined by a path of at
    /// most `d` edges.
    DHop {
        /// Maximum path length in hops.
        d: u32,
    },
}

/// One decomposed subproblem of a semantics plan: a subgraph, its terminal
/// set, and the computation it answers.
#[derive(Clone, Debug)]
pub struct SemPart {
    /// Subgraph to solve (densely renumbered).
    pub graph: UncertainGraph,
    /// Terminals within the part.
    pub terminals: Vec<VertexId>,
    /// What the part computes.
    pub computation: PartComputation,
}

impl SemPart {
    /// A connectivity part (the classic `Pro` subproblem).
    pub fn connectivity(graph: UncertainGraph, terminals: Vec<VertexId>) -> Self {
        SemPart {
            graph,
            terminals,
            computation: PartComputation::Connectivity,
        }
    }
}

/// One multiplicative group of a plan: the member parts' results multiply
/// together with the group's bridge factor, `pb · Π_{i ∈ parts} R̂ᵢ`, and
/// the group values sum into the final answer.
#[derive(Clone, Debug)]
pub struct PartGroup {
    /// Bridge-probability factor of the group (Lemma 5.1).
    pub pb: f64,
    /// Indices into [`SemanticsPlan::parts`]. A part may belong to several
    /// groups (reach-set plans dedupe shared parts across targets).
    pub parts: Vec<usize>,
}

/// The decomposition a [`Semantics`] produced for one query:
/// `answer = offset + Σ_g pb_g · Π_{i ∈ g} R̂ᵢ` over the (deduplicated)
/// `parts`. Connectivity semantics produce a single group over all parts
/// with offset 0 — exactly the classic `Pro` shape.
#[derive(Clone, Debug)]
pub struct SemanticsPlan {
    /// The semantics that produced the plan.
    pub spec: SemanticsSpec,
    /// Additive constant (the already-decided mass; e.g. the source vertex
    /// itself for reach-set plans).
    pub offset: f64,
    /// The answer is provably 0 (connectivity semantics whose terminals
    /// cannot connect at all); groups and parts are empty.
    pub trivially_zero: bool,
    /// Multiplicative groups summed into the answer.
    pub groups: Vec<PartGroup>,
    /// Deduplicated parts, referenced by the groups. Per-part solver seeds
    /// derive from the index in this list ([`part_s2bdd_config`]).
    pub parts: Vec<SemPart>,
    /// Preprocessing statistics for the whole plan.
    pub stats: PreprocessStats,
}

impl SemanticsPlan {
    /// Wrap the classic preprocessing output as a single-group plan (the
    /// shape every connectivity semantics produces). The combine fast path
    /// reproduces `combine_part_results` on this shape bit for bit.
    pub fn from_preprocessed(spec: SemanticsSpec, pre: Preprocessed) -> Self {
        if pre.trivially_zero {
            return SemanticsPlan {
                spec,
                offset: 0.0,
                trivially_zero: true,
                groups: Vec::new(),
                parts: Vec::new(),
                stats: pre.stats,
            };
        }
        let parts: Vec<SemPart> = pre
            .parts
            .into_iter()
            .map(|p| SemPart::connectivity(p.graph, p.terminals))
            .collect();
        SemanticsPlan {
            spec,
            offset: 0.0,
            trivially_zero: false,
            groups: vec![PartGroup {
                pb: pre.pb,
                parts: (0..parts.len()).collect(),
            }],
            parts,
            stats: pre.stats,
        }
    }

    /// A provably-zero plan (connectivity semantics only).
    fn zero(spec: SemanticsSpec, stats: PreprocessStats) -> Self {
        SemanticsPlan {
            spec,
            offset: 0.0,
            trivially_zero: true,
            groups: Vec::new(),
            parts: Vec::new(),
            stats,
        }
    }
}

/// A reliability semantics: what a query asks, how it decomposes into
/// parts, how a part is computed, and how part results recombine. The
/// default method bodies implement the shared skeleton (part dispatch on
/// [`PartComputation`], grouped-product combine); implementations override
/// [`Semantics::plan`] — and, where the value range differs,
/// [`Semantics::value_upper`].
pub trait Semantics: Send + Sync {
    /// The value-level identifier of this semantics.
    fn spec(&self) -> SemanticsSpec;

    /// Decompose `(g, terminals)` into a [`SemanticsPlan`]. `index` is the
    /// terminal-independent [`GraphIndex`] of `g`; `cfg` carries the
    /// preprocessing toggles (ablations apply per semantics as documented
    /// on each implementation).
    fn plan(
        &self,
        g: &UncertainGraph,
        index: &GraphIndex,
        terminals: &[VertexId],
        cfg: PreprocessConfig,
    ) -> Result<SemanticsPlan, GraphError>;

    /// Solve one part deterministically: S2BDD for connectivity parts;
    /// exact hop-bounded enumeration for d-hop parts small enough
    /// ([`DHOP_EXACT_EDGE_LIMIT`]), falling back to hop-bounded sampling
    /// with `cfg`'s sample budget beyond that.
    fn solve_part(&self, part: &SemPart, cfg: S2BddConfig) -> Result<S2BddResult, GraphError> {
        solve_semantics_part(part, cfg)
    }

    /// Estimate one part by flat possible-world sampling (the planner's
    /// wide-part route): connectivity parts via
    /// [`sample_part_result`], d-hop parts via the hop-bounded sampler.
    fn sample_part(&self, part: &SemPart, cfg: SamplingConfig) -> Result<S2BddResult, GraphError> {
        sample_semantics_part(part, cfg)
    }

    /// Recombine solved parts (in [`SemanticsPlan::parts`] order) into the
    /// final answer.
    fn combine(&self, plan: &SemanticsPlan, solved: Vec<S2BddResult>) -> ProResult {
        combine_semantics_plan(plan, solved)
    }

    /// Upper end of the value range this semantics answers: 1 for
    /// probabilities, `|V|` for expected reachable-set size. Consumers
    /// clamping confidence intervals must use this instead of a hard-coded
    /// 1.
    fn value_upper(&self, _g: &UncertainGraph) -> f64 {
        1.0
    }
}

/// Strict two-terminal s–t reliability (see
/// [`SemanticsSpec::TwoTerminal`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoTerminal;

/// k-terminal reliability — the seed semantics (see
/// [`SemanticsSpec::KTerminal`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct KTerminal;

/// All-terminal reliability (see [`SemanticsSpec::AllTerminal`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct AllTerminal;

/// Distance-constrained (d-hop) two-terminal reliability (see
/// [`SemanticsSpec::DHop`]).
#[derive(Clone, Copy, Debug)]
pub struct DHop {
    /// Maximum path length in hops.
    pub d: u32,
}

/// Expected reachable-set size (see [`SemanticsSpec::ReachSet`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReachSet;

impl Semantics for KTerminal {
    fn spec(&self) -> SemanticsSpec {
        SemanticsSpec::KTerminal
    }

    /// The classic `Pro` preprocessing: prune → bridge decomposition →
    /// series/parallel transform, one group over all parts.
    fn plan(
        &self,
        g: &UncertainGraph,
        index: &GraphIndex,
        terminals: &[VertexId],
        cfg: PreprocessConfig,
    ) -> Result<SemanticsPlan, GraphError> {
        let _span = netrel_obs::trace::span("plan.k-terminal");
        let pre = preprocess_with_index(g, index, terminals, cfg)?;
        Ok(SemanticsPlan::from_preprocessed(self.spec(), pre))
    }
}

impl Semantics for TwoTerminal {
    fn spec(&self) -> SemanticsSpec {
        SemanticsSpec::TwoTerminal
    }

    /// [`KTerminal`]'s plan after validating that exactly two distinct
    /// terminals were given.
    fn plan(
        &self,
        g: &UncertainGraph,
        index: &GraphIndex,
        terminals: &[VertexId],
        cfg: PreprocessConfig,
    ) -> Result<SemanticsPlan, GraphError> {
        let _span = netrel_obs::trace::span("plan.two-terminal");
        let t = g.validate_terminals(terminals)?;
        if t.len() != 2 {
            return Err(GraphError::InvalidTerminals {
                reason: format!(
                    "two-terminal semantics needs exactly two distinct terminals, got {}",
                    t.len()
                ),
            });
        }
        let pre = preprocess_with_index(g, index, &t, cfg)?;
        Ok(SemanticsPlan::from_preprocessed(self.spec(), pre))
    }
}

impl Semantics for AllTerminal {
    fn spec(&self) -> SemanticsSpec {
        SemanticsSpec::AllTerminal
    }

    /// k-terminal with `T = V`; the query's terminal list is ignored. Every
    /// bridge is mandatory and every 2ECC keeps all its vertices as
    /// terminals, so the classic pipeline applies unchanged.
    fn plan(
        &self,
        g: &UncertainGraph,
        index: &GraphIndex,
        _terminals: &[VertexId],
        cfg: PreprocessConfig,
    ) -> Result<SemanticsPlan, GraphError> {
        let _span = netrel_obs::trace::span("plan.all-terminal");
        if g.num_vertices() == 0 {
            return Err(GraphError::InvalidTerminals {
                reason: "all-terminal semantics on an empty graph".into(),
            });
        }
        let all: Vec<VertexId> = (0..g.num_vertices()).collect();
        let pre = preprocess_with_index(g, index, &all, cfg)?;
        Ok(SemanticsPlan::from_preprocessed(self.spec(), pre))
    }
}

impl Semantics for DHop {
    fn spec(&self) -> SemanticsSpec {
        SemanticsSpec::DHop { d: self.d }
    }

    /// Hop counts do not factor across bridges (a bridge spends a hop), so
    /// the bridge decomposition and series/parallel transforms are *not*
    /// applicable. The plan is a single d-hop part over the
    /// distance-pruned subgraph: vertex `v` survives iff
    /// `dist(s, v) + dist(v, t) ≤ d` in the certain graph (a vertex off
    /// every short-enough path cannot influence the indicator). `cfg.prune`
    /// toggles the pruning for ablation; the trivially-zero check
    /// (`dist(s, t) > d` even with all edges present) always runs.
    fn plan(
        &self,
        g: &UncertainGraph,
        _index: &GraphIndex,
        terminals: &[VertexId],
        cfg: PreprocessConfig,
    ) -> Result<SemanticsPlan, GraphError> {
        let _span = netrel_obs::trace::span("plan.d-hop");
        let t = g.validate_terminals(terminals)?;
        if t.len() != 2 {
            return Err(GraphError::InvalidTerminals {
                reason: format!(
                    "d-hop semantics needs exactly two distinct terminals, got {}",
                    t.len()
                ),
            });
        }
        let (s, target) = (t[0], t[1]);
        let original_edges = g.num_edges();
        let ds = bfs_distances(g, s);
        if ds[target] > self.d {
            let stats = PreprocessStats {
                original_edges,
                pruned_edges: 0,
                num_parts: 0,
                max_part_edges: 0,
                reduced_ratio: 0.0,
                transform_rules: 0,
            };
            return Ok(SemanticsPlan::zero(self.spec(), stats));
        }
        let part = if cfg.prune {
            let dt = bfs_distances(g, target);
            let keep: Vec<bool> = (0..g.num_vertices())
                .map(|v| ds[v].saturating_add(dt[v]) <= self.d)
                .collect();
            let (sub, map) = g.induced_subgraph(&keep);
            let terminals = vec![
                map[s].expect("s survives its own distance filter"),
                map[target].expect("t survives its own distance filter"),
            ];
            SemPart {
                graph: sub,
                terminals,
                computation: PartComputation::DHop { d: self.d },
            }
        } else {
            SemPart {
                graph: g.clone(),
                terminals: vec![s, target],
                computation: PartComputation::DHop { d: self.d },
            }
        };
        let part_edges = part.graph.num_edges();
        let stats = PreprocessStats {
            original_edges,
            pruned_edges: part_edges,
            num_parts: 1,
            max_part_edges: part_edges,
            reduced_ratio: if original_edges > 0 {
                part_edges as f64 / original_edges as f64
            } else {
                0.0
            },
            transform_rules: 0,
        };
        Ok(SemanticsPlan {
            spec: self.spec(),
            offset: 0.0,
            trivially_zero: false,
            groups: vec![PartGroup {
                pb: 1.0,
                parts: vec![0],
            }],
            parts: vec![part],
            stats,
        })
    }
}

impl Semantics for ReachSet {
    fn spec(&self) -> SemanticsSpec {
        SemanticsSpec::ReachSet
    }

    /// Linearity of expectation: `E[|R(s)|] = 1 + Σ_{v ≠ s} R[{s, v}]`, so
    /// the plan is one classic two-terminal group per target `v` (each the
    /// full prune/decompose/transform pipeline), with offset 1 for the
    /// source itself. Targets provably unreachable contribute no group;
    /// parts shared between targets (common on bridge-heavy graphs, where
    /// many targets reduce to the same 2ECC subproblems) are deduplicated,
    /// so each distinct subproblem is solved once.
    fn plan(
        &self,
        g: &UncertainGraph,
        index: &GraphIndex,
        terminals: &[VertexId],
        cfg: PreprocessConfig,
    ) -> Result<SemanticsPlan, GraphError> {
        let _span = netrel_obs::trace::span("plan.reach-set");
        let t = g.validate_terminals(terminals)?;
        if t.len() != 1 {
            return Err(GraphError::InvalidTerminals {
                reason: format!(
                    "reach-set semantics takes exactly one source terminal, got {}",
                    t.len()
                ),
            });
        }
        let s = t[0];
        let mut plan = SemanticsPlan {
            spec: self.spec(),
            offset: 1.0,
            trivially_zero: false,
            groups: Vec::new(),
            parts: Vec::new(),
            stats: PreprocessStats {
                original_edges: g.num_edges(),
                ..Default::default()
            },
        };
        // Structural fingerprint → index into `plan.parts` (same identity a
        // part-level plan cache uses: edge list with probability bits, plus
        // the terminal set — all parts here are connectivity parts).
        type Fingerprint = (Vec<(u32, u32, u64)>, Vec<u32>);
        let mut seen: std::collections::HashMap<Fingerprint, usize> =
            std::collections::HashMap::new();
        for v in 0..g.num_vertices() {
            if v == s {
                continue;
            }
            let pre = preprocess_with_index(g, index, &[s, v], cfg)?;
            plan.stats.pruned_edges = plan.stats.pruned_edges.max(pre.stats.pruned_edges);
            plan.stats.transform_rules += pre.stats.transform_rules;
            if pre.trivially_zero {
                continue;
            }
            let mut group = PartGroup {
                pb: pre.pb,
                parts: Vec::with_capacity(pre.parts.len()),
            };
            for part in pre.parts {
                let fp: Fingerprint = (
                    part.graph
                        .edges()
                        .iter()
                        .map(|e| (e.u as u32, e.v as u32, e.p.to_bits()))
                        .collect(),
                    part.terminals.iter().map(|&t| t as u32).collect(),
                );
                let idx = *seen.entry(fp).or_insert_with(|| {
                    plan.parts
                        .push(SemPart::connectivity(part.graph, part.terminals));
                    plan.parts.len() - 1
                });
                group.parts.push(idx);
            }
            plan.groups.push(group);
        }
        plan.stats.num_parts = plan.parts.len();
        plan.stats.max_part_edges = plan
            .parts
            .iter()
            .map(|p| p.graph.num_edges())
            .max()
            .unwrap_or(0);
        plan.stats.reduced_ratio = if plan.stats.original_edges > 0 {
            plan.stats.max_part_edges as f64 / plan.stats.original_edges as f64
        } else {
            0.0
        };
        Ok(plan)
    }

    /// Reach-set answers live in `[1, |V|]`, not `[0, 1]`.
    fn value_upper(&self, g: &UncertainGraph) -> f64 {
        g.num_vertices() as f64
    }
}

/// Deterministic solver for one part (the implementation behind
/// [`Semantics::solve_part`]): the configured S2BDD for connectivity
/// parts; for d-hop parts, exact recursive-conditioning enumeration when
/// the part has at most [`DHOP_EXACT_EDGE_LIMIT`] edges, otherwise
/// hop-bounded sampling funded by `cfg.samples` under `cfg.seed`.
pub fn solve_semantics_part(part: &SemPart, cfg: S2BddConfig) -> Result<S2BddResult, GraphError> {
    match part.computation {
        PartComputation::Connectivity => S2Bdd::solve(&part.graph, &part.terminals, cfg),
        PartComputation::DHop { d } => {
            if part.graph.num_edges() <= DHOP_EXACT_EDGE_LIMIT {
                dhop_exact_part(part, d)
            } else {
                sample_dhop_part(
                    part,
                    d,
                    SamplingConfig {
                        samples: cfg.samples,
                        estimator: cfg.estimator,
                        seed: cfg.seed,
                        threads: 1,
                    },
                )
            }
        }
    }
}

/// Exact-only solver for one part: unbounded-width S2BDD for connectivity
/// parts, full enumeration for d-hop parts *regardless of size* (cost
/// `O(2^|E|)` worst case — callers bound the part first; the engine's
/// planner routes oversized d-hop parts to sampling instead).
pub fn exact_semantics_part(part: &SemPart) -> Result<S2BddResult, GraphError> {
    match part.computation {
        PartComputation::Connectivity => {
            S2Bdd::solve(&part.graph, &part.terminals, S2BddConfig::exact())
        }
        PartComputation::DHop { d } => dhop_exact_part(part, d),
    }
}

/// Flat-sampling solver for one part (the implementation behind
/// [`Semantics::sample_part`]): [`sample_part_result`] for connectivity
/// parts, the hop-bounded world sampler for d-hop parts. Either way the
/// outcome is shaped as an [`S2BddResult`] with the trivial `[0, 1]` proven
/// bounds, so it composes through [`combine_part_results`].
pub fn sample_semantics_part(
    part: &SemPart,
    cfg: SamplingConfig,
) -> Result<S2BddResult, GraphError> {
    match part.computation {
        PartComputation::Connectivity => sample_part_result(&part.graph, &part.terminals, cfg),
        PartComputation::DHop { d } => sample_dhop_part(part, d, cfg),
    }
}

/// Whether a group's member list is exactly `[0, 1, …, n-1]` — the classic
/// single-group shape whose combine must stay bit-identical to
/// [`combine_part_results`].
fn is_identity(parts: &[usize], n: usize) -> bool {
    parts.len() == n && parts.iter().enumerate().all(|(i, &p)| i == p)
}

/// Recombine solved parts into the final answer (the implementation behind
/// [`Semantics::combine`]): `offset + Σ_g pb_g · Π_{i ∈ g} R̂ᵢ`.
///
/// * **Fast path** — a single identity group with offset 0 (every
///   connectivity semantics) delegates to [`combine_part_results`]
///   verbatim, preserving the bit-identity contract with one-shot
///   [`pro_reliability`](crate::pro_reliability).
/// * **General path** — per group the same product composition (estimate,
///   proven bounds, Theorem-4 variance), then summed across groups plus the
///   offset. Group bounds sum soundly without any independence assumption
///   (expectation is linear). Groups *share* edges and deduplicated parts,
///   so their estimators are correlated; the cross-group variance is the
///   conservative Cauchy–Schwarz bound `(Σ_g σ_g)²`, which is exact under
///   perfect positive correlation and an upper bound otherwise.
///
/// `pb` of the returned result is the single group's factor when the plan
/// has exactly one group, else 1.0 (a multi-group plan has no single bridge
/// factor).
pub fn combine_semantics_plan(plan: &SemanticsPlan, solved: Vec<S2BddResult>) -> ProResult {
    let _span = netrel_obs::trace::span("combine");
    if plan.trivially_zero {
        return zero_pro_result(plan.stats);
    }
    if plan.offset == 0.0
        && plan.groups.len() == 1
        && is_identity(&plan.groups[0].parts, solved.len())
    {
        return combine_part_results(plan.groups[0].pb, plan.stats, solved);
    }
    let mut estimate = plan.offset;
    let mut lower = plan.offset;
    let mut upper = plan.offset;
    let mut exact = true;
    let mut sd_sum = 0.0f64;
    for group in &plan.groups {
        let members: Vec<S2BddResult> = group.parts.iter().map(|&i| solved[i].clone()).collect();
        let r = combine_part_results(group.pb, PreprocessStats::default(), members);
        estimate += r.estimate;
        lower += r.lower_bound;
        upper += r.upper_bound;
        exact &= r.exact;
        sd_sum += r.variance_estimate.sqrt();
    }
    let samples_used = solved.iter().map(|r| r.samples_used).sum();
    ProResult {
        estimate,
        lower_bound: lower,
        upper_bound: upper.max(lower),
        exact,
        pb: if plan.groups.len() == 1 {
            plan.groups[0].pb
        } else {
            1.0
        },
        samples_used,
        preprocess_stats: plan.stats,
        parts: solved,
        variance_estimate: sd_sum * sd_sum,
    }
}

/// Run a semantics end to end on `(g, terminals)` — the generalization of
/// [`pro_reliability`](crate::pro_reliability), which is exactly this with
/// [`SemanticsSpec::KTerminal`].
pub fn semantics_reliability(
    g: &UncertainGraph,
    spec: SemanticsSpec,
    terminals: &[VertexId],
    cfg: ProConfig,
) -> Result<ProResult, GraphError> {
    let index = GraphIndex::build(g);
    semantics_reliability_with_index(g, &index, spec, terminals, cfg)
}

/// [`semantics_reliability`] against a precomputed terminal-independent
/// [`GraphIndex`] of `g`. Behavior and draws are identical; the index only
/// removes per-call recomputation of terminal-independent structure.
pub fn semantics_reliability_with_index(
    g: &UncertainGraph,
    index: &GraphIndex,
    spec: SemanticsSpec,
    terminals: &[VertexId],
    cfg: ProConfig,
) -> Result<ProResult, GraphError> {
    let sem = spec.semantics();
    let plan = sem.plan(g, index, terminals, cfg.preprocess)?;
    let solved = solve_plan_parts(sem.as_ref(), &plan, &cfg)?;
    Ok(sem.combine(&plan, solved))
}

/// Solve every part of a plan, sequentially or on scoped worker threads
/// (`cfg.parallel_parts`). Seeds derive from the part index
/// ([`part_s2bdd_config`]), so both paths produce bit-identical results.
pub fn solve_plan_parts(
    sem: &dyn Semantics,
    plan: &SemanticsPlan,
    cfg: &ProConfig,
) -> Result<Vec<S2BddResult>, GraphError> {
    if cfg.parallel_parts && plan.parts.len() > 1 {
        let results: Vec<Result<S2BddResult, GraphError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .parts
                .iter()
                .enumerate()
                .map(|(i, part)| {
                    let sem = &sem;
                    scope.spawn(move || sem.solve_part(part, part_s2bdd_config(cfg.s2bdd, i)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("part solver panicked"))
                .collect()
        });
        results.into_iter().collect::<Result<Vec<_>, _>>()
    } else {
        plan.parts
            .iter()
            .enumerate()
            .map(|(i, part)| sem.solve_part(part, part_s2bdd_config(cfg.s2bdd, i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pro_reliability;

    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
                (5, 6, 0.9),
                (6, 7, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn kterminal_is_bit_identical_to_pro() {
        let g = lollipop();
        for t in [vec![0, 4], vec![0, 7], vec![1, 4, 6]] {
            for cfg in [
                ProConfig::default(),
                ProConfig {
                    s2bdd: S2BddConfig {
                        max_width: 2,
                        samples: 500,
                        seed: 9,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            ] {
                let a = pro_reliability(&g, &t, cfg).unwrap();
                let b = semantics_reliability(&g, SemanticsSpec::KTerminal, &t, cfg).unwrap();
                assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{t:?}");
                assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
                assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
                assert_eq!(a.samples_used, b.samples_used);
                assert_eq!(a.exact, b.exact);
            }
        }
    }

    #[test]
    fn two_terminal_validates_arity() {
        let g = lollipop();
        for bad in [vec![0], vec![0, 1, 2], vec![3, 3]] {
            let r =
                semantics_reliability(&g, SemanticsSpec::TwoTerminal, &bad, ProConfig::default());
            assert!(r.is_err(), "{bad:?} must be rejected");
        }
        let ok = semantics_reliability(
            &g,
            SemanticsSpec::TwoTerminal,
            &[0, 7],
            ProConfig::default(),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn dhop_trivially_zero_beyond_diameter() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)]).unwrap();
        let r = semantics_reliability(
            &g,
            SemanticsSpec::DHop { d: 2 },
            &[0, 3],
            ProConfig::default(),
        )
        .unwrap();
        assert_eq!(r.estimate, 0.0);
        assert!(r.exact);
    }

    #[test]
    fn dhop_prune_keeps_only_short_path_vertices() {
        // 0-1-2 chain plus a long detour 0-3-4-2: within 2 hops the detour
        // is unusable and must be pruned away.
        let g = UncertainGraph::new(
            5,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (0, 3, 0.9),
                (3, 4, 0.9),
                (4, 2, 0.9),
            ],
        )
        .unwrap();
        let sem = DHop { d: 2 };
        let plan = sem
            .plan(
                &g,
                &GraphIndex::build(&g),
                &[0, 2],
                PreprocessConfig::default(),
            )
            .unwrap();
        assert_eq!(plan.parts.len(), 1);
        assert_eq!(plan.parts[0].graph.num_vertices(), 3);
        assert_eq!(plan.parts[0].graph.num_edges(), 2);
        let r = semantics_reliability(
            &g,
            SemanticsSpec::DHop { d: 2 },
            &[0, 2],
            ProConfig::default(),
        )
        .unwrap();
        assert!(r.exact);
        assert!((r.estimate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reach_set_on_a_path_sums_prefix_products() {
        // Path 0-1-2 with p = 0.5: E|R(0)| = 1 + 0.5 + 0.25.
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let r =
            semantics_reliability(&g, SemanticsSpec::ReachSet, &[0], ProConfig::default()).unwrap();
        assert!(r.exact);
        assert!((r.estimate - 1.75).abs() < 1e-12, "{}", r.estimate);
        assert!(r.lower_bound <= r.estimate && r.estimate <= r.upper_bound);
        assert!(r.upper_bound <= 3.0 + 1e-12);
    }

    #[test]
    fn reach_set_dedupes_shared_parts() {
        // Path 0-1-2-3: targets 2 and 3 share the 0~2 bridge chain; every
        // per-target query collapses to bridges, so no parts remain at all,
        // and the groups are pure pb factors.
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap();
        let sem = ReachSet;
        let plan = sem
            .plan(
                &g,
                &GraphIndex::build(&g),
                &[0],
                PreprocessConfig::default(),
            )
            .unwrap();
        assert_eq!(plan.groups.len(), 3);
        assert!(plan.parts.is_empty(), "bridge chains collapse to pb");
        let r = combine_semantics_plan(&plan, Vec::new());
        assert!((r.estimate - (1.0 + 0.5 + 0.25 + 0.125)).abs() < 1e-12);
        assert!(r.exact);
    }

    #[test]
    fn all_terminal_matches_kterminal_with_every_vertex() {
        let g = lollipop();
        let a = semantics_reliability(&g, SemanticsSpec::AllTerminal, &[0], ProConfig::default())
            .unwrap();
        let every: Vec<usize> = (0..8).collect();
        let b = pro_reliability(&g, &every, ProConfig::default()).unwrap();
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }

    #[test]
    fn spec_names_are_stable() {
        assert_eq!(SemanticsSpec::TwoTerminal.name(), "two-terminal");
        assert_eq!(SemanticsSpec::KTerminal.name(), "k-terminal");
        assert_eq!(SemanticsSpec::AllTerminal.name(), "all-terminal");
        assert_eq!(SemanticsSpec::DHop { d: 3 }.name(), "d-hop");
        assert_eq!(SemanticsSpec::ReachSet.name(), "reach-set");
        assert_eq!(SemanticsSpec::default(), SemanticsSpec::KTerminal);
    }
}
