//! The paper's approach — `Pro` (Algorithm 1).
//!
//! Preprocess the uncertain graph with the extension technique (§5), then run
//! one S2BDD per decomposed component and multiply:
//! `R̂[G, T] = p_b · Π_i R̂[G_i, T_i]`. Besides the speedup from smaller
//! graphs, decomposition provably lowers the estimator variance (Theorem 4).

use netrel_preprocess::{GraphIndex, PreprocessConfig, PreprocessStats};
use netrel_s2bdd::{S2BddConfig, S2BddResult};
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};

/// Configuration of the full approach.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProConfig {
    /// Per-component S2BDD settings (width `w`, samples `s`, estimator, …).
    pub s2bdd: S2BddConfig,
    /// Extension-technique settings. Use [`PreprocessConfig::disabled`] for
    /// the paper's "Pro w/o ext" ablation.
    pub preprocess: PreprocessConfig,
    /// Solve decomposed components on worker threads (they are independent
    /// subproblems). Off by default so timing comparisons against the
    /// single-threaded baselines stay fair.
    pub parallel_parts: bool,
}

impl ProConfig {
    /// The paper's default experiment setting (`w` = `s` = 10 000, extension
    /// on).
    pub fn paper_default(seed: u64) -> Self {
        ProConfig {
            s2bdd: S2BddConfig::paper_default(seed),
            preprocess: PreprocessConfig::default(),
            parallel_parts: false,
        }
    }

    /// Pro without the extension technique ("Pro w/o ext" in Figure 3).
    pub fn without_extension(seed: u64) -> Self {
        ProConfig {
            s2bdd: S2BddConfig::paper_default(seed),
            preprocess: PreprocessConfig::disabled(),
            parallel_parts: false,
        }
    }
}

/// Result of a `Pro` run.
#[derive(Clone, Debug)]
pub struct ProResult {
    /// Estimated reliability `R̂[G, T]`.
    pub estimate: f64,
    /// Proven lower bound (product of per-part lower bounds times `p_b`).
    pub lower_bound: f64,
    /// Proven upper bound.
    pub upper_bound: f64,
    /// All parts were computed exactly — the estimate is the exact `R`.
    pub exact: bool,
    /// Bridge-probability factor from decomposition.
    pub pb: f64,
    /// Total samples drawn across all parts.
    pub samples_used: usize,
    /// Preprocessing statistics (Table 5 metrics).
    pub preprocess_stats: PreprocessStats,
    /// Per-part solver results, in part order.
    pub parts: Vec<S2BddResult>,
    /// Variance of the product estimator (paper Theorem 4 composition).
    pub variance_estimate: f64,
}

/// The S2BDD configuration used for part number `part_index` of a
/// decomposition: the base configuration with a per-part seed, so the
/// per-part sampling streams are decorrelated and independent of both the
/// thread schedule and the surrounding batch. Exposed so multi-query engines
/// reproduce `pro_reliability`'s draws exactly (and so cached part results
/// stay interchangeable with freshly solved ones).
pub fn part_s2bdd_config(base: S2BddConfig, part_index: usize) -> S2BddConfig {
    let mut part_cfg = base;
    part_cfg.seed = base.seed ^ (part_index as u64 + 1).wrapping_mul(0xA24BAED4963EE407);
    part_cfg
}

/// The `Pro` result for a trivially-zero instance (terminals provably
/// disconnected): exact 0 with no parts.
pub fn zero_pro_result(preprocess_stats: PreprocessStats) -> ProResult {
    ProResult {
        estimate: 0.0,
        lower_bound: 0.0,
        upper_bound: 0.0,
        exact: true,
        pb: 0.0,
        samples_used: 0,
        preprocess_stats,
        parts: Vec::new(),
        variance_estimate: 0.0,
    }
}

/// Recombine solved per-part results into the final `Pro` answer:
/// `R̂ = p_b · Π R̂ᵢ`, bounds multiplied likewise, and the product-estimator
/// variance composed per Theorem 4. `solved` must be in part order. This is
/// the exact recombination `pro_reliability` performs, factored out so
/// engines that source part results from a cache assemble identical answers.
pub fn combine_part_results(
    pb: f64,
    preprocess_stats: PreprocessStats,
    solved: Vec<S2BddResult>,
) -> ProResult {
    let mut estimate = pb;
    let mut lower = pb;
    let mut upper = pb;
    let mut exact = true;
    let mut samples_used = 0usize;
    // Variance of a product of independent estimators (Theorem 4):
    // Var[c·ΠXᵢ] = c²(Π(Var[Xᵢ] + E[Xᵢ]²) − Π E[Xᵢ]²).
    let mut prod_second_moment = 1.0f64;
    let mut prod_mean_sq = 1.0f64;
    let mut parts = Vec::with_capacity(solved.len());
    for r in solved {
        estimate *= r.estimate;
        lower *= r.lower_bound;
        upper *= r.upper_bound;
        exact &= r.exact;
        samples_used += r.samples_used;
        prod_second_moment *= r.variance_estimate + r.estimate * r.estimate;
        prod_mean_sq *= r.estimate * r.estimate;
        parts.push(r);
    }
    let variance_estimate = (pb * pb * (prod_second_moment - prod_mean_sq)).max(0.0);
    ProResult {
        estimate,
        lower_bound: lower,
        upper_bound: upper.max(lower),
        exact,
        pb,
        samples_used,
        preprocess_stats,
        parts,
        variance_estimate,
    }
}

/// Run the paper's approach on `(g, terminals)`.
///
/// ```
/// use netrel_core::{pro_reliability, ProConfig};
/// use netrel_ugraph::UncertainGraph;
///
/// // A 4-cycle: R[{0,2}] = both 2-edge paths fail only together.
/// let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9), (3, 0, 0.9)]).unwrap();
/// let r = pro_reliability(&g, &[0, 2], ProConfig::default()).unwrap();
/// assert!(r.exact, "small graphs fit under the default width");
/// let truth = 1.0 - (1.0 - 0.81f64) * (1.0 - 0.81);
/// assert!((r.estimate - truth).abs() < 1e-12);
/// assert!(r.lower_bound <= r.estimate && r.estimate <= r.upper_bound);
/// ```
pub fn pro_reliability(
    g: &UncertainGraph,
    terminals: &[VertexId],
    cfg: ProConfig,
) -> Result<ProResult, GraphError> {
    let index = GraphIndex::build(g);
    pro_reliability_with_index(g, &index, terminals, cfg)
}

/// [`pro_reliability`] against a precomputed terminal-independent
/// [`GraphIndex`] of `g` (see `netrel-preprocess`). Behavior and draws are
/// identical to [`pro_reliability`]; the index only removes per-call
/// recomputation of terminal-independent structure.
///
/// Since the semantics refactor this is the k-terminal instantiation of the
/// generic pipeline
/// ([`semantics_reliability_with_index`](crate::semantics_reliability_with_index)):
/// the k-terminal plan is a single group over the preprocessed parts and its
/// combine step delegates to [`combine_part_results`] verbatim, so routing
/// through the trait boundary is bit-identical to the historical one-shot
/// implementation (pinned by `tests/semantics_contract.rs`).
pub fn pro_reliability_with_index(
    g: &UncertainGraph,
    index: &GraphIndex,
    terminals: &[VertexId],
    cfg: ProConfig,
) -> Result<ProResult, GraphError> {
    crate::semantics::semantics_reliability_with_index(
        g,
        index,
        crate::semantics::SemanticsSpec::KTerminal,
        terminals,
        cfg,
    )
}

/// Two-terminal (s–t) reliability — the classical special case (`k = 2`,
/// "reachability in uncertain graphs" in the related-work sense).
pub fn st_reliability(
    g: &UncertainGraph,
    s: VertexId,
    t: VertexId,
    cfg: ProConfig,
) -> Result<ProResult, GraphError> {
    pro_reliability(g, &[s, t], cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;
    use netrel_s2bdd::EstimatorKind;
    use proptest::prelude::*;

    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.6),
                (0, 2, 0.7),
                (2, 3, 0.8),
                (3, 4, 0.5),
                (4, 5, 0.6),
                (3, 5, 0.7),
                (5, 6, 0.9),
                (6, 7, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn exact_when_width_unbounded() {
        let g = lollipop();
        for t in [vec![0, 4], vec![0, 7], vec![1, 4, 6]] {
            let expect = brute_force_reliability(&g, &t);
            let cfg = ProConfig {
                s2bdd: S2BddConfig::exact(),
                ..Default::default()
            };
            let r = pro_reliability(&g, &t, cfg).unwrap();
            assert!(r.exact);
            assert!(
                (r.estimate - expect).abs() < 1e-12,
                "{t:?}: {} vs {expect}",
                r.estimate
            );
        }
    }

    #[test]
    fn bounds_bracket_truth_when_width_bounded() {
        let g = lollipop();
        let t = vec![0, 4];
        let expect = brute_force_reliability(&g, &t);
        let cfg = ProConfig {
            s2bdd: S2BddConfig {
                max_width: 1,
                samples: 20_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = pro_reliability(&g, &t, cfg).unwrap();
        assert!(r.lower_bound <= expect + 1e-12);
        assert!(r.upper_bound >= expect - 1e-12);
        assert!(
            (r.estimate - expect).abs() < 0.05,
            "{} vs {expect}",
            r.estimate
        );
    }

    #[test]
    fn tree_like_graphs_become_exact_even_with_tiny_width() {
        // The Am-Rv phenomenon (paper Table 4): on bridge-heavy graphs the
        // extension collapses everything, so Pro is exact regardless of w.
        let g = UncertainGraph::new(
            6,
            [
                (0, 1, 0.9),
                (1, 2, 0.8),
                (2, 3, 0.7),
                (3, 4, 0.6),
                (4, 5, 0.5),
            ],
        )
        .unwrap();
        let cfg = ProConfig {
            s2bdd: S2BddConfig {
                max_width: 1,
                samples: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = pro_reliability(&g, &[0, 5], cfg).unwrap();
        assert!(r.exact);
        let expect = brute_force_reliability(&g, &[0, 5]);
        assert!((r.estimate - expect).abs() < 1e-12);
        assert_eq!(r.samples_used, 0);
    }

    #[test]
    fn without_extension_still_correct() {
        let g = lollipop();
        let t = vec![0, 4];
        let expect = brute_force_reliability(&g, &t);
        let mut cfg = ProConfig::without_extension(3);
        cfg.s2bdd.samples = 50_000;
        cfg.s2bdd.max_width = 4;
        let r = pro_reliability(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - expect).abs() < 0.05,
            "{} vs {expect}",
            r.estimate
        );
        assert_eq!(r.preprocess_stats.num_parts, 1);
    }

    #[test]
    fn ht_estimator_path() {
        let g = lollipop();
        let t = vec![0, 4];
        let expect = brute_force_reliability(&g, &t);
        let cfg = ProConfig {
            s2bdd: S2BddConfig {
                max_width: 2,
                samples: 50_000,
                estimator: EstimatorKind::HorvitzThompson,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = pro_reliability(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - expect).abs() < 0.05,
            "{} vs {expect}",
            r.estimate
        );
    }

    #[test]
    fn disconnected_is_zero_and_exact() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        let r = pro_reliability(&g, &[0, 2], ProConfig::default()).unwrap();
        assert_eq!(r.estimate, 0.0);
        assert!(r.exact);
    }

    #[test]
    fn parallel_parts_bitwise_match_sequential() {
        // Part seeds are derived from the part index, so the thread schedule
        // cannot change the draws: results must be identical.
        let g = lollipop();
        let t = vec![0, 7];
        let seq_cfg = ProConfig {
            s2bdd: S2BddConfig {
                max_width: 1,
                samples: 500,
                seed: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        let par_cfg = ProConfig {
            parallel_parts: true,
            ..seq_cfg
        };
        let a = pro_reliability(&g, &t, seq_cfg).unwrap();
        let b = pro_reliability(&g, &t, par_cfg).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.samples_used, b.samples_used);
    }

    #[test]
    fn st_reliability_is_two_terminal_pro() {
        let g = lollipop();
        let a = st_reliability(&g, 0, 7, ProConfig::default()).unwrap();
        let b = pro_reliability(&g, &[0, 7], ProConfig::default()).unwrap();
        assert_eq!(a.estimate, b.estimate);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// End-to-end: Pro with unbounded width is exact on random graphs.
        #[test]
        fn pro_exact_matches_brute_force(
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.05f64..1.0), 1..14),
            t0 in 0usize..8,
            t1 in 0usize..8,
        ) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            prop_assume!(!list.is_empty());
            let g = UncertainGraph::new(8, list).unwrap();
            let mut t = vec![t0, t1];
            t.sort_unstable();
            t.dedup();
            let expect = brute_force_reliability(&g, &t);
            let cfg = ProConfig { s2bdd: S2BddConfig::exact(), ..Default::default() };
            let r = pro_reliability(&g, &t, cfg).unwrap();
            prop_assert!((r.estimate - expect).abs() < 1e-9, "{} vs {}", r.estimate, expect);
        }
    }
}
