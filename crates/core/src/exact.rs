//! Exact reliability solvers.
//!
//! For small graphs (after preprocessing) the unbounded-width S2BDD computes
//! `R[G, T]` exactly — this is what the paper uses as ground truth for its
//! accuracy experiments (Tables 3–4). For tiny graphs the brute-force
//! enumerator from `netrel-bdd` remains available as an independent oracle.

use crate::pro::{pro_reliability, ProConfig};
use crate::semantics::{exact_semantics_part, SemanticsSpec};
use netrel_preprocess::{GraphIndex, PreprocessConfig};
use netrel_s2bdd::S2BddConfig;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};

/// Exact `R[G, T]` via preprocessing plus an unbounded-width S2BDD.
///
/// Feasible whenever the decomposed components' frontier-based diagrams fit
/// in memory — in practice graphs up to a few hundred edges per 2-edge-
/// connected component, far beyond the brute-force limit.
pub fn exact_reliability(g: &UncertainGraph, terminals: &[VertexId]) -> Result<f64, GraphError> {
    let cfg = ProConfig {
        s2bdd: S2BddConfig::exact(),
        preprocess: PreprocessConfig::default(),
        parallel_parts: false,
    };
    let r = pro_reliability(g, terminals, cfg)?;
    debug_assert!(r.exact, "unbounded-width S2BDD must be exact");
    Ok(r.estimate)
}

/// Exact value of *any* [`SemanticsSpec`] on `(g, terminals)`: plan with
/// the semantics' preprocessing, then solve every part with its exact
/// solver — unbounded-width S2BDD for connectivity parts, full recursive
/// conditioning for d-hop parts (no
/// [`DHOP_EXACT_EDGE_LIMIT`](crate::DHOP_EXACT_EDGE_LIMIT) fallback, so
/// d-hop cost is `O(2^|E|)` worst case on the *pruned* part).
pub fn exact_semantics_value(
    g: &UncertainGraph,
    spec: SemanticsSpec,
    terminals: &[VertexId],
) -> Result<f64, GraphError> {
    let sem = spec.semantics();
    let index = GraphIndex::build(g);
    let plan = sem.plan(g, &index, terminals, PreprocessConfig::default())?;
    let solved = plan
        .parts
        .iter()
        .map(exact_semantics_part)
        .collect::<Result<Vec<_>, _>>()?;
    let r = sem.combine(&plan, solved);
    debug_assert!(r.exact, "exact part solvers must yield an exact combine");
    Ok(r.estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;

    #[test]
    fn matches_brute_force() {
        let g = UncertainGraph::new(
            5,
            [
                (0, 1, 0.7),
                (0, 2, 0.7),
                (1, 2, 0.7),
                (1, 3, 0.7),
                (2, 4, 0.7),
                (3, 4, 0.7),
            ],
        )
        .unwrap();
        for t in [vec![0, 3], vec![0, 3, 4], vec![1, 2, 3, 4]] {
            let expect = brute_force_reliability(&g, &t);
            let got = exact_reliability(&g, &t).unwrap();
            assert!((got - expect).abs() < 1e-12, "{t:?}");
        }
    }

    #[test]
    fn handles_instances_beyond_brute_force() {
        // A 3xN grid has far too many edges for enumeration but a tiny
        // frontier; exactness comes from the S2BDD.
        let cols = 12usize;
        let mut edges = Vec::new();
        for c in 0..cols {
            for r in 0..3usize {
                let v = c * 3 + r;
                if r + 1 < 3 {
                    edges.push((v, v + 1, 0.9));
                }
                if c + 1 < cols {
                    edges.push((v, v + 3, 0.9));
                }
            }
        }
        let g = UncertainGraph::new(3 * cols, edges).unwrap();
        let r = exact_reliability(&g, &[0, 3 * cols - 1]).unwrap();
        assert!(r > 0.5 && r < 1.0, "grid reliability {r}");
    }

    #[test]
    fn invalid_terminals_error() {
        let g = UncertainGraph::new(2, [(0, 1, 0.5)]).unwrap();
        assert!(exact_reliability(&g, &[]).is_err());
        assert!(exact_reliability(&g, &[9]).is_err());
    }
}
