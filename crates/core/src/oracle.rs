//! Brute-force possible-world oracle for *any* reliability semantics.
//!
//! Enumerates all `2^|E|` possible worlds of an uncertain graph and sums
//! `Pr[world] · value(world)`, where the per-world value is evaluated
//! independently of the production pipeline (plain BFS — no preprocessing,
//! no S2BDD, no sampling). That independence is the point: the oracle is
//! the ground truth every [`Semantics`](crate::semantics::Semantics)
//! implementation is validated against in `tests/semantics_contract.rs`.
//! Exponential by construction — worlds are capped at
//! [`ORACLE_EDGE_LIMIT`] edges.

use crate::semantics::SemanticsSpec;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId};

/// Largest edge count the oracle accepts (`2^25` worlds ≈ 33M — seconds,
/// not hours). Larger inputs return an error instead of silently hanging.
pub const ORACLE_EDGE_LIMIT: usize = 25;

/// Reused BFS buffers: per-vertex visit epochs and the two frontier queues.
struct Scratch {
    visited: Vec<u32>,
    frontier: Vec<usize>,
    next: Vec<usize>,
}

impl Scratch {
    fn new(num_vertices: usize) -> Self {
        Scratch {
            visited: vec![0; num_vertices],
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// BFS from `start` over present edges, depth-limited iff `max_hops` is
    /// finite; marks reached vertices with `epoch` and returns the count.
    fn bfs(
        &mut self,
        g: &UncertainGraph,
        present: &[bool],
        epoch: u32,
        start: usize,
        max_hops: u32,
    ) -> usize {
        self.frontier.clear();
        self.visited[start] = epoch;
        self.frontier.push(start);
        let mut reached = 1usize;
        let mut hops = 0u32;
        while !self.frontier.is_empty() && hops < max_hops {
            self.next.clear();
            for &v in self.frontier.iter() {
                for &(w, e) in g.neighbors(v) {
                    if present[e] && self.visited[w] != epoch {
                        self.visited[w] = epoch;
                        reached += 1;
                        self.next.push(w);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            hops += 1;
        }
        reached
    }
}

/// Per-world value of a semantics, evaluated by BFS over the world's
/// present-edge mask.
fn world_value(
    g: &UncertainGraph,
    spec: SemanticsSpec,
    terminals: &[VertexId],
    present: &[bool],
    epoch: u32,
    scratch: &mut Scratch,
) -> f64 {
    match spec {
        SemanticsSpec::TwoTerminal | SemanticsSpec::KTerminal => {
            scratch.bfs(g, present, epoch, terminals[0], u32::MAX);
            let connected = terminals.iter().all(|&t| scratch.visited[t] == epoch);
            connected as u32 as f64
        }
        SemanticsSpec::AllTerminal => {
            let reached = scratch.bfs(g, present, epoch, 0, u32::MAX);
            (reached == g.num_vertices()) as u32 as f64
        }
        SemanticsSpec::DHop { d } => {
            scratch.bfs(g, present, epoch, terminals[0], d);
            (scratch.visited[terminals[1]] == epoch) as u32 as f64
        }
        SemanticsSpec::ReachSet => scratch.bfs(g, present, epoch, terminals[0], u32::MAX) as f64,
    }
}

/// Ground-truth value of `spec` on `(g, terminals)` by exhaustive
/// possible-world enumeration: `Σ_world Pr[world] · value(world)`.
///
/// Terminal arity follows the semantics (two distinct for two-terminal and
/// d-hop, one source for reach-set, any non-empty set for k-terminal;
/// all-terminal ignores the list but the graph must be non-empty). Errors
/// on invalid terminals or more than [`ORACLE_EDGE_LIMIT`] edges.
pub fn oracle_value(
    g: &UncertainGraph,
    spec: SemanticsSpec,
    terminals: &[VertexId],
) -> Result<f64, GraphError> {
    let m = g.num_edges();
    if m > ORACLE_EDGE_LIMIT {
        return Err(GraphError::InvalidTerminals {
            reason: format!(
                "oracle is exponential: {m} edges exceeds the {ORACLE_EDGE_LIMIT}-edge cap"
            ),
        });
    }
    let terminals: Vec<VertexId> = match spec {
        SemanticsSpec::TwoTerminal | SemanticsSpec::DHop { .. } => {
            let t = g.validate_terminals(terminals)?;
            if t.len() != 2 {
                return Err(GraphError::InvalidTerminals {
                    reason: format!("{} needs exactly two distinct terminals", spec.name()),
                });
            }
            // Preserve the caller's (s, t) order — d-hop is symmetric, but
            // keep the original pair rather than the sorted one for clarity.
            vec![terminals[0], terminals[1]]
        }
        SemanticsSpec::KTerminal => g.validate_terminals(terminals)?,
        SemanticsSpec::AllTerminal => {
            if g.num_vertices() == 0 {
                return Err(GraphError::InvalidTerminals {
                    reason: "all-terminal oracle on an empty graph".into(),
                });
            }
            Vec::new()
        }
        SemanticsSpec::ReachSet => {
            let t = g.validate_terminals(terminals)?;
            if t.len() != 1 {
                return Err(GraphError::InvalidTerminals {
                    reason: "reach-set takes exactly one source terminal".into(),
                });
            }
            t
        }
    };
    if matches!(spec, SemanticsSpec::KTerminal) && terminals.len() <= 1 {
        return Ok(1.0);
    }
    let edges = g.edges();
    let mut present = vec![false; m];
    let mut scratch = Scratch::new(g.num_vertices());
    let mut total = 0.0f64;
    for world in 0u64..(1u64 << m) {
        let mut pr = 1.0f64;
        for (i, e) in edges.iter().enumerate() {
            let exists = world >> i & 1 == 1;
            present[i] = exists;
            pr *= if exists { e.p } else { 1.0 - e.p };
        }
        let epoch = world as u32 + 1;
        total += pr * world_value(g, spec, &terminals, &present, epoch, &mut scratch);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_terminal_matches_brute_force_reference() {
        let g = UncertainGraph::new(
            4,
            [
                (0, 1, 0.8),
                (1, 2, 0.7),
                (2, 3, 0.9),
                (0, 3, 0.5),
                (1, 3, 0.6),
            ],
        )
        .unwrap();
        let expect = netrel_bdd::brute_force_reliability(&g, &[0, 2]);
        let got = oracle_value(&g, SemanticsSpec::KTerminal, &[0, 2]).unwrap();
        assert!((got - expect).abs() < 1e-12);
        let tt = oracle_value(&g, SemanticsSpec::TwoTerminal, &[0, 2]).unwrap();
        assert_eq!(got.to_bits(), tt.to_bits());
    }

    #[test]
    fn all_terminal_on_a_triangle() {
        // Triangle, all p = 0.5: connected iff ≥ 2 of 3 edges present
        // (3·(1/8)) or all 3 (1/8) → 1/2.
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)]).unwrap();
        let got = oracle_value(&g, SemanticsSpec::AllTerminal, &[]).unwrap();
        assert!((got - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dhop_on_a_path() {
        let g = UncertainGraph::new(3, [(0, 1, 0.6), (1, 2, 0.5)]).unwrap();
        assert_eq!(
            oracle_value(&g, SemanticsSpec::DHop { d: 1 }, &[0, 2]).unwrap(),
            0.0
        );
        let d2 = oracle_value(&g, SemanticsSpec::DHop { d: 2 }, &[0, 2]).unwrap();
        assert!((d2 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn reach_set_on_a_path() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let got = oracle_value(&g, SemanticsSpec::ReachSet, &[0]).unwrap();
        assert!((got - 1.75).abs() < 1e-12);
    }

    #[test]
    fn oversized_graphs_are_rejected() {
        let edges: Vec<(usize, usize, f64)> = (0..26).map(|i| (i, i + 1, 0.5)).collect();
        let g = UncertainGraph::new(27, edges).unwrap();
        assert!(oracle_value(&g, SemanticsSpec::KTerminal, &[0, 26]).is_err());
    }
}
