//! The sampling-based baseline (paper §3.2.2): `Sampling(MC)` and
//! `Sampling(HT)`.
//!
//! Draws `s` possible worlds and estimates `R` with either the Monte Carlo
//! mean or the Horvitz–Thompson estimator over distinct worlds. Sampling is
//! embarrassingly parallel; `threads = 1` by default so benchmark comparisons
//! against the (single-threaded) S2BDD stay apples-to-apples.

use netrel_s2bdd::EstimatorKind;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId, WorldSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the flat sampler.
#[derive(Clone, Copy, Debug)]
pub struct SamplingConfig {
    /// Number of possible worlds to draw.
    pub samples: usize,
    /// Estimator.
    pub estimator: EstimatorKind,
    /// RNG seed (deterministic results for a fixed seed and thread count).
    pub seed: u64,
    /// Worker threads; `0` = all available cores, `1` = sequential (default).
    pub threads: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            samples: 10_000,
            estimator: EstimatorKind::MonteCarlo,
            seed: 0x5eed,
            threads: 1,
        }
    }
}

/// Result of a flat sampling run.
#[derive(Clone, Debug)]
pub struct SamplingResult {
    /// Estimated reliability.
    pub estimate: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Connected samples.
    pub hits: usize,
    /// Estimator variance: `R̂(1−R̂)/s` for MC (paper Eq. 2), the simplified
    /// HT variance (paper Eq. 8) otherwise.
    pub variance_estimate: f64,
}

/// Estimate `R[G, T]` by flat possible-world sampling.
pub fn sample_reliability(
    g: &UncertainGraph,
    terminals: &[VertexId],
    cfg: SamplingConfig,
) -> Result<SamplingResult, GraphError> {
    let t = g.validate_terminals(terminals)?;
    if t.len() <= 1 {
        return Ok(SamplingResult {
            estimate: 1.0,
            samples: 0,
            hits: 0,
            variance_estimate: 0.0,
        });
    }
    let threads = match cfg.threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .max(1)
    .min(cfg.samples.max(1));

    // Per-chunk sample counts (difference of prefix shares: sums to `samples`).
    let chunk_of = |i: usize| cfg.samples * (i + 1) / threads - cfg.samples * i / threads;

    match cfg.estimator {
        EstimatorKind::MonteCarlo => {
            let hits: usize = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for i in 0..threads {
                    let t = &t;
                    handles.push(scope.spawn(move || {
                        let mut sampler = WorldSampler::new(g.num_vertices());
                        let mut rng = StdRng::seed_from_u64(
                            cfg.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        (0..chunk_of(i))
                            .filter(|_| sampler.sample_connected(g, t, &mut rng))
                            .count()
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sampler thread panicked"))
                    .sum()
            });
            let s = cfg.samples.max(1) as f64;
            let estimate = hits as f64 / s;
            Ok(SamplingResult {
                estimate,
                samples: cfg.samples,
                hits,
                variance_estimate: estimate * (1.0 - estimate) / s,
            })
        }
        EstimatorKind::HorvitzThompson => {
            let records: Vec<(bool, f64, u64)> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for i in 0..threads {
                    let t = &t;
                    handles.push(scope.spawn(move || {
                        let mut sampler = WorldSampler::new(g.num_vertices());
                        let mut rng = StdRng::seed_from_u64(
                            cfg.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        (0..chunk_of(i))
                            .map(|_| sampler.sample_world_full(g, t, &mut rng))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sampler thread panicked"))
                    .collect()
            });
            let s = cfg.samples.max(1) as f64;
            let hits = records.iter().filter(|r| r.0).count();
            let mut seen = std::collections::HashSet::new();
            let mut estimate = 0.0f64;
            let mut var_correction = 0.0f64;
            for &(connected, ln_q, hash) in &records {
                if !connected || !seen.insert(hash) {
                    continue;
                }
                estimate += ht_weight(ln_q, s);
                let q = ln_q.exp();
                var_correction += (s - 1.0) * q * q / (2.0 * s);
            }
            let estimate = estimate.clamp(0.0, 1.0);
            // Paper Eq. 8: R(1-R)/s − Σ (s−1) I Pr² / (2s).
            let variance = (estimate * (1.0 - estimate) / s - var_correction).max(0.0);
            Ok(SamplingResult {
                estimate,
                samples: cfg.samples,
                hits,
                variance_estimate: variance,
            })
        }
    }
}

/// Horvitz–Thompson weight `q / π` with `π = 1 − (1 − q)^s`, computed stably.
/// For worlds far below f64 resolution the limit `1/s` is exact to first
/// order, which is also why HT degenerates to MC on large graphs.
fn ht_weight(ln_q: f64, s: f64) -> f64 {
    let q = ln_q.exp();
    if q < 1e-12 {
        return 1.0 / s;
    }
    let pi = -((-q).ln_1p() * s).exp_m1();
    if pi > 0.0 {
        q / pi
    } else {
        1.0 / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;

    fn bridge_graph() -> (UncertainGraph, Vec<usize>) {
        let g = UncertainGraph::new(
            4,
            [
                (0, 1, 0.8),
                (1, 2, 0.7),
                (2, 3, 0.9),
                (0, 3, 0.5),
                (1, 3, 0.6),
            ],
        )
        .unwrap();
        (g, vec![0, 2])
    }

    #[test]
    fn mc_converges_to_truth() {
        let (g, t) = bridge_graph();
        let exact = brute_force_reliability(&g, &t);
        let cfg = SamplingConfig {
            samples: 200_000,
            seed: 1,
            ..Default::default()
        };
        let r = sample_reliability(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - exact).abs() < 0.01,
            "{} vs {exact}",
            r.estimate
        );
        assert!(r.variance_estimate > 0.0);
    }

    #[test]
    fn ht_converges_to_truth() {
        let (g, t) = bridge_graph();
        let exact = brute_force_reliability(&g, &t);
        let cfg = SamplingConfig {
            samples: 100_000,
            estimator: EstimatorKind::HorvitzThompson,
            seed: 2,
            ..Default::default()
        };
        let r = sample_reliability(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - exact).abs() < 0.03,
            "{} vs {exact}",
            r.estimate
        );
    }

    #[test]
    fn parallel_matches_sequential_determinism() {
        let (g, t) = bridge_graph();
        let base = SamplingConfig {
            samples: 10_000,
            seed: 7,
            ..Default::default()
        };
        let a = sample_reliability(&g, &t, base).unwrap();
        let b = sample_reliability(&g, &t, base).unwrap();
        assert_eq!(a.hits, b.hits, "same seed, same thread count → same draw");
        let par = sample_reliability(&g, &t, SamplingConfig { threads: 4, ..base }).unwrap();
        // Different thread count changes the stream but not the quality.
        assert!((par.estimate - a.estimate).abs() < 0.05);
    }

    #[test]
    fn trivial_terminals() {
        let (g, _) = bridge_graph();
        let r = sample_reliability(&g, &[2], SamplingConfig::default()).unwrap();
        assert_eq!(r.estimate, 1.0);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn ht_weight_asymptotics() {
        // Large q: exact formula.
        let s = 100.0;
        let q: f64 = 0.3;
        let w = ht_weight(q.ln(), s);
        assert!((w - q / (1.0 - (1.0 - q).powf(s))).abs() < 1e-12);
        // Tiny q: limit 1/s, even when exp(ln_q) underflows.
        assert!((ht_weight(-1e6, s) - 1.0 / s).abs() < 1e-15);
    }

    #[test]
    fn zero_probability_like_graphs() {
        // Disconnected terminals: estimate must be 0 whatever the seed.
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        let cfg = SamplingConfig {
            samples: 1000,
            seed: 5,
            ..Default::default()
        };
        let r = sample_reliability(&g, &[0, 2], cfg).unwrap();
        assert_eq!(r.estimate, 0.0);
        assert_eq!(r.hits, 0);
    }
}
