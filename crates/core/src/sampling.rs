//! The sampling-based baseline (paper §3.2.2): `Sampling(MC)` and
//! `Sampling(HT)`.
//!
//! Draws `s` possible worlds and estimates `R` with either the Monte Carlo
//! mean or the Horvitz–Thompson estimator over distinct worlds. Sampling is
//! embarrassingly parallel; `threads = 1` by default so benchmark comparisons
//! against the (single-threaded) S2BDD stay apples-to-apples.
//!
//! Results are **seed-stable**: the sample budget is partitioned over a
//! fixed set of [`RNG_STREAMS`] logical RNG streams, and worker threads only
//! execute streams — so the draws (and therefore `hits`, `estimate`, and the
//! variance) depend on `(samples, estimator, seed)` alone, never on how many
//! cores `threads = 0` detects at runtime.

use netrel_s2bdd::EstimatorKind;
use netrel_ugraph::{GraphError, UncertainGraph, VertexId, WorldSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of logical RNG streams the sample budget is partitioned over.
///
/// Each stream `i` draws its fixed share of the budget from its own
/// deterministic RNG (`seed ⊕ i·golden`), independent of which worker thread
/// executes it. The constant bounds the useful parallelism but pins the
/// draw sequence: changing the detected core count can never change the
/// result.
pub const RNG_STREAMS: usize = 64;

/// Configuration for the flat sampler.
///
/// ```
/// use netrel_core::{sample_reliability, SamplingConfig};
/// use netrel_ugraph::UncertainGraph;
///
/// let g = UncertainGraph::new(3, [(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.5)]).unwrap();
/// let cfg = SamplingConfig { samples: 20_000, seed: 42, ..Default::default() };
/// let r = sample_reliability(&g, &[0, 2], cfg).unwrap();
/// // 0-2 connects directly (0.5) or via 1 (0.72): R = 0.86.
/// assert!((r.estimate - 0.86).abs() < 0.02);
/// // Same seed, any thread count: identical draws.
/// let par = sample_reliability(&g, &[0, 2], SamplingConfig { threads: 0, ..cfg }).unwrap();
/// assert_eq!(r.hits, par.hits);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SamplingConfig {
    /// Number of possible worlds to draw.
    pub samples: usize,
    /// Estimator.
    pub estimator: EstimatorKind,
    /// RNG seed. For a fixed `(samples, estimator, seed)` the result is
    /// identical for every `threads` setting (see [`RNG_STREAMS`]).
    pub seed: u64,
    /// Worker threads; `0` = all available cores, `1` = sequential
    /// (default). Only wall-clock changes with this knob, never the result.
    pub threads: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            samples: 10_000,
            estimator: EstimatorKind::MonteCarlo,
            seed: 0x5eed,
            threads: 1,
        }
    }
}

/// Result of a flat sampling run.
#[derive(Clone, Debug)]
pub struct SamplingResult {
    /// Estimated reliability.
    pub estimate: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Connected samples.
    pub hits: usize,
    /// Estimator variance: `R̂(1−R̂)/s` for MC (paper Eq. 2), the simplified
    /// HT variance (paper Eq. 8) otherwise.
    pub variance_estimate: f64,
}

/// Estimate `R[G, T]` by flat possible-world sampling.
pub fn sample_reliability(
    g: &UncertainGraph,
    terminals: &[VertexId],
    cfg: SamplingConfig,
) -> Result<SamplingResult, GraphError> {
    let t = g.validate_terminals(terminals)?;
    if t.len() <= 1 {
        return Ok(SamplingResult {
            estimate: 1.0,
            samples: 0,
            hits: 0,
            variance_estimate: 0.0,
        });
    }
    let t = &t;
    Ok(estimate_indicator(
        cfg,
        |share, mut rng| {
            let mut sampler = WorldSampler::new(g.num_vertices());
            (0..share)
                .filter(|_| sampler.sample_connected(g, t, &mut rng))
                .count()
        },
        |share, mut rng| {
            let mut sampler = WorldSampler::new(g.num_vertices());
            (0..share)
                .map(|_| sampler.sample_world_full(g, t, &mut rng))
                .collect::<Vec<_>>()
        },
    ))
}

/// Shared flat-sampling driver: partition `cfg.samples` over the fixed
/// [`RNG_STREAMS`] logical streams, run one of the per-stream closures per
/// stream (`mc_stream` returns the stream's hit count, `ht_stream` its
/// `(indicator, ln Pr, hash)` world records), and fold the streams with the
/// configured estimator.
///
/// Every indicator-style sampler in the crate (terminal connectivity,
/// hop-bounded reachability) funnels through this function, so they all
/// share the seed-stability contract: stream `i` always draws
/// `stream_share(i)` samples from `StdRng(seed ⊕ i·golden)` no matter which
/// worker thread runs it, making the result a pure function of
/// `(samples, estimator, seed)` — never of `threads`.
pub(crate) fn estimate_indicator<M, H>(
    cfg: SamplingConfig,
    mc_stream: M,
    ht_stream: H,
) -> SamplingResult
where
    M: Fn(usize, StdRng) -> usize + Sync,
    H: Fn(usize, StdRng) -> Vec<(bool, f64, u64)> + Sync,
{
    let streams = RNG_STREAMS.min(cfg.samples.max(1));
    let stream_share = |i: usize| cfg.samples * (i + 1) / streams - cfg.samples * i / streams;
    let stream_rng =
        |i: usize| StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let threads = match cfg.threads {
        // netrel-lint: allow(thread-count, reason = "worker count only picks how the seed-stable streams are partitioned; every stream's draws are identical for any thread count")
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .max(1)
    .min(streams);

    match cfg.estimator {
        EstimatorKind::MonteCarlo => {
            let hits: usize = run_streams(streams, threads, |i| {
                mc_stream(stream_share(i), stream_rng(i))
            })
            .into_iter()
            .sum();
            let s = cfg.samples.max(1) as f64;
            let estimate = hits as f64 / s;
            SamplingResult {
                estimate,
                samples: cfg.samples,
                hits,
                variance_estimate: estimate * (1.0 - estimate) / s,
            }
        }
        EstimatorKind::HorvitzThompson => {
            let records: Vec<(bool, f64, u64)> = run_streams(streams, threads, |i| {
                ht_stream(stream_share(i), stream_rng(i))
            })
            .into_iter()
            .flatten()
            .collect();
            let s = cfg.samples.max(1) as f64;
            let hits = records.iter().filter(|r| r.0).count();
            let mut seen = std::collections::HashSet::new();
            let mut estimate = 0.0f64;
            let mut var_correction = 0.0f64;
            for &(connected, ln_q, hash) in &records {
                if !connected || !seen.insert(hash) {
                    continue;
                }
                estimate += ht_weight(ln_q, s);
                let q = ln_q.exp();
                var_correction += (s - 1.0) * q * q / (2.0 * s);
            }
            let estimate = estimate.clamp(0.0, 1.0);
            // Paper Eq. 8: R(1-R)/s − Σ (s−1) I Pr² / (2s).
            let variance = (estimate * (1.0 - estimate) / s - var_correction).max(0.0);
            SamplingResult {
                estimate,
                samples: cfg.samples,
                hits,
                variance_estimate: variance,
            }
        }
    }
}

/// Execute `per_stream` for every logical stream index in `0..streams` on
/// `threads` scoped workers (round-robin assignment), returning the outputs
/// in stream order. Because `per_stream(i)` is a pure function of `i` (its
/// RNG is derived from the stream index), the output is independent of the
/// worker count.
pub(crate) fn run_streams<T, F>(streams: usize, threads: usize, per_stream: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 {
        return (0..streams).map(per_stream).collect();
    }
    let mut outs: Vec<(usize, T)> = std::thread::scope(|scope| {
        let per_stream = &per_stream;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    (w..streams)
                        .step_by(threads)
                        .map(|i| (i, per_stream(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sampler thread panicked"))
            .collect()
    });
    outs.sort_unstable_by_key(|&(i, _)| i);
    outs.into_iter().map(|(_, o)| o).collect()
}

/// Flat-sample one decomposed *part* and shape the outcome as an
/// [`S2BddResult`](netrel_s2bdd::S2BddResult), so sampling-routed parts
/// compose with exactly-solved ones through
/// [`combine_part_results`](crate::combine_part_results).
///
/// Flat sampling proves nothing, so the part's *proven* bounds are the
/// trivial `[0, 1]` and `exact` is `false`; the statistical quality lives in
/// `variance_estimate` (`R̂(1−R̂)/s` for MC, the paper's Eq. 8 for HT), which
/// the product-variance composition in `combine_part_results` — and any
/// confidence interval built from it — consumes. Used by the engine's
/// adaptive planner for parts whose predicted diagram size exceeds the node
/// budget.
pub fn sample_part_result(
    g: &UncertainGraph,
    terminals: &[VertexId],
    cfg: SamplingConfig,
) -> Result<netrel_s2bdd::S2BddResult, GraphError> {
    let r = sample_reliability(g, terminals, cfg)?;
    Ok(netrel_s2bdd::S2BddResult {
        estimate: r.estimate,
        lower_bound: 0.0,
        upper_bound: 1.0,
        exact: false,
        samples_requested: cfg.samples,
        samples_used: r.samples,
        s_prime_final: cfg.samples,
        strata: 1,
        deleted_nodes: 0,
        variance_estimate: r.variance_estimate,
        peak_width: 0,
        peak_memory_bytes: 0,
        layers_completed: 0,
        layers_total: g.num_edges(),
        early_exit: false,
        node_cap_hit: false,
        nodes_created: 0,
        trajectory: None,
    })
}

/// Horvitz–Thompson weight `q / π` with `π = 1 − (1 − q)^s`, computed stably.
/// For worlds far below f64 resolution the limit `1/s` is exact to first
/// order, which is also why HT degenerates to MC on large graphs.
fn ht_weight(ln_q: f64, s: f64) -> f64 {
    let q = ln_q.exp();
    if q < 1e-12 {
        return 1.0 / s;
    }
    let pi = -((-q).ln_1p() * s).exp_m1();
    if pi > 0.0 {
        q / pi
    } else {
        1.0 / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrel_bdd::brute_force_reliability;

    fn bridge_graph() -> (UncertainGraph, Vec<usize>) {
        let g = UncertainGraph::new(
            4,
            [
                (0, 1, 0.8),
                (1, 2, 0.7),
                (2, 3, 0.9),
                (0, 3, 0.5),
                (1, 3, 0.6),
            ],
        )
        .unwrap();
        (g, vec![0, 2])
    }

    #[test]
    fn mc_converges_to_truth() {
        let (g, t) = bridge_graph();
        let exact = brute_force_reliability(&g, &t);
        let cfg = SamplingConfig {
            samples: 200_000,
            seed: 1,
            ..Default::default()
        };
        let r = sample_reliability(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - exact).abs() < 0.01,
            "{} vs {exact}",
            r.estimate
        );
        assert!(r.variance_estimate > 0.0);
    }

    #[test]
    fn ht_converges_to_truth() {
        let (g, t) = bridge_graph();
        let exact = brute_force_reliability(&g, &t);
        let cfg = SamplingConfig {
            samples: 100_000,
            estimator: EstimatorKind::HorvitzThompson,
            seed: 2,
            ..Default::default()
        };
        let r = sample_reliability(&g, &t, cfg).unwrap();
        assert!(
            (r.estimate - exact).abs() < 0.03,
            "{} vs {exact}",
            r.estimate
        );
    }

    #[test]
    fn thread_count_never_changes_the_draws() {
        // The documented contract: `threads` (including `0` = auto-detect)
        // affects wall-clock only. Streams are pinned to the seed, so every
        // thread setting must reproduce the same hits and the same bits.
        let (g, t) = bridge_graph();
        for estimator in [EstimatorKind::MonteCarlo, EstimatorKind::HorvitzThompson] {
            let base = SamplingConfig {
                samples: 10_000,
                seed: 7,
                estimator,
                threads: 1,
            };
            let a = sample_reliability(&g, &t, base).unwrap();
            for threads in [0, 2, 3, 5, 64, 1000] {
                let b = sample_reliability(&g, &t, SamplingConfig { threads, ..base }).unwrap();
                assert_eq!(a.hits, b.hits, "{estimator:?} threads={threads}");
                assert_eq!(
                    a.estimate.to_bits(),
                    b.estimate.to_bits(),
                    "{estimator:?} threads={threads}"
                );
                assert_eq!(a.variance_estimate.to_bits(), b.variance_estimate.to_bits());
            }
        }
    }

    #[test]
    fn tiny_sample_counts_still_seed_stable() {
        // Fewer samples than RNG_STREAMS: the partition collapses to one
        // stream per sample and stays thread-invariant.
        let (g, t) = bridge_graph();
        for samples in [1, 2, 63] {
            let base = SamplingConfig {
                samples,
                seed: 11,
                ..Default::default()
            };
            let a = sample_reliability(&g, &t, base).unwrap();
            let b = sample_reliability(&g, &t, SamplingConfig { threads: 0, ..base }).unwrap();
            assert_eq!(a.hits, b.hits, "samples={samples}");
        }
    }

    #[test]
    fn part_result_composes_through_combine() {
        let (g, t) = bridge_graph();
        let exact = brute_force_reliability(&g, &t);
        let cfg = SamplingConfig {
            samples: 100_000,
            seed: 3,
            ..Default::default()
        };
        let part = sample_part_result(&g, &t, cfg).unwrap();
        assert!(!part.exact);
        assert_eq!((part.lower_bound, part.upper_bound), (0.0, 1.0));
        assert!(part.variance_estimate > 0.0);
        // One sampled part recombines into a Pro-shaped answer.
        let combined = crate::combine_part_results(1.0, Default::default(), vec![part]);
        assert!((combined.estimate - exact).abs() < 0.01);
        assert!(!combined.exact);
        assert!(combined.variance_estimate > 0.0);
    }

    #[test]
    fn trivial_terminals() {
        let (g, _) = bridge_graph();
        let r = sample_reliability(&g, &[2], SamplingConfig::default()).unwrap();
        assert_eq!(r.estimate, 1.0);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn ht_weight_asymptotics() {
        // Large q: exact formula.
        let s = 100.0;
        let q: f64 = 0.3;
        let w = ht_weight(q.ln(), s);
        assert!((w - q / (1.0 - (1.0 - q).powf(s))).abs() < 1e-12);
        // Tiny q: limit 1/s, even when exp(ln_q) underflows.
        assert!((ht_weight(-1e6, s) - 1.0 / s).abs() < 1e-15);
    }

    #[test]
    fn zero_probability_like_graphs() {
        // Disconnected terminals: estimate must be 0 whatever the seed.
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        let cfg = SamplingConfig {
            samples: 1000,
            seed: 5,
            ..Default::default()
        };
        let r = sample_reliability(&g, &[0, 2], cfg).unwrap();
        assert_eq!(r.estimate, 0.0);
        assert_eq!(r.hits, 0);
    }
}
