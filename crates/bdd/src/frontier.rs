//! The frontier-based state machine for k-terminal reliability diagrams.
//!
//! Both the materialized BDD baseline ([`crate::full`]) and the S2BDD build
//! on this machine. A *state* at layer `l` describes everything about an
//! intermediate graph `G_E` (paper §3.1) that the remaining edges can
//! observe: the partition of the live frontier vertices into connected
//! components, plus each component's terminal count.
//!
//! Two facts make the encoding small and the paper's Lemma 4.3 sound:
//!
//! 1. Whether a terminal has been *seen* (touched by a processed edge) is a
//!    property of the layer, not of the edge states, so the count of unseen
//!    terminals is a per-layer constant (`unseen_after`).
//! 2. Consequently a component contains **all** `k` terminals iff it is the
//!    only component with a positive terminal count and no terminal is
//!    unseen — exact terminal counts are needed only for the S2BDD's deletion
//!    heuristic, never for sink decisions.
//!
//! Sink detection here subsumes the paper's Lemmas 4.1/4.2: a transition
//! yields the 1-sink as soon as one live component holds every terminal
//! (conditions 1–3 of Lemma 4.1 are the ways a merge can make that true), and
//! the 0-sink as soon as a terminal-bearing component loses its last frontier
//! vertex without being complete (conditions 1–3 of Lemma 4.2 are the ways
//! that can happen, including the `d_{n,f} = 1` lookahead, which corresponds
//! to the vertex leaving at this same layer).

use netrel_ugraph::ordering::{EdgeOrder, FrontierPlan};
use netrel_ugraph::{EdgeId, GraphError, UncertainGraph, VertexId};

/// One edge in processing order, denormalized for builders.
#[derive(Clone, Copy, Debug)]
pub struct LayerEdge {
    /// Original edge id.
    pub id: EdgeId,
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Existence probability.
    pub p: f64,
}

/// Canonical frontier state: `comp[slot]` is the component id of the
/// `slot`-th frontier vertex (frontier sorted by vertex id), ids numbered in
/// first-occurrence order; `tcnt[c]` counts the terminals connected to
/// component `c` (including terminals that already left the frontier inside
/// it).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct State {
    /// Component id per frontier slot.
    pub comp: Vec<u16>,
    /// Terminal count per component id.
    pub tcnt: Vec<u32>,
}

impl State {
    /// The empty state at layer 0.
    pub fn root() -> Self {
        State {
            comp: Vec::new(),
            tcnt: Vec::new(),
        }
    }

    /// Number of components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.tcnt.len()
    }

    /// Node-merging signature under `rule` (paper Lemma 4.3 for
    /// [`MergeRule::Pattern`]). Two states with equal signatures transition
    /// to the same sinks under any shared suffix of edge states.
    pub fn signature(&self, rule: MergeRule, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.comp.len() * 2 + self.tcnt.len() * 4 + 1);
        for &c in &self.comp {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.push(0xFF);
        match rule {
            MergeRule::Pattern => {
                let mut byte = 0u8;
                let mut nbits = 0;
                for &t in &self.tcnt {
                    byte = byte << 1 | (t > 0) as u8;
                    nbits += 1;
                    if nbits == 8 {
                        out.push(byte);
                        byte = 0;
                        nbits = 0;
                    }
                }
                if nbits > 0 {
                    out.push(byte << (8 - nbits));
                }
            }
            MergeRule::ExactCounts => {
                for &t in &self.tcnt {
                    out.extend_from_slice(&t.to_le_bytes());
                }
            }
        }
    }

    /// Heap bytes used by this state (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.comp.len() * std::mem::size_of::<u16>() + self.tcnt.len() * std::mem::size_of::<u32>()
    }
}

/// Node-merging rules (ablation: `ExactCounts` merges less, both are exact).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MergeRule {
    /// Merge on component partition + has-terminal pattern (paper Lemma 4.3).
    #[default]
    Pattern,
    /// Merge on component partition + exact terminal counts.
    ExactCounts,
}

/// Result of applying one edge decision to a state.
#[derive(Clone, Debug, PartialEq)]
pub enum Transition {
    /// All terminals are connected (1-sink).
    One,
    /// Some terminal can no longer reach the others (0-sink).
    Zero,
    /// Construction continues with this state at the next layer.
    Next(State),
}

/// Reusable scratch buffers for [`FrontierMachine::apply`].
#[derive(Default)]
pub struct Scratch {
    tcnt: Vec<u32>,
    alive: Vec<bool>,
    present: Vec<bool>,
    renum: Vec<u16>,
}

/// Layer-by-layer frontier cursor over a `(graph, terminal set, edge order)`
/// triple. Construction is `O(|V| + |E|)`; the cursor then advances one layer
/// at a time while builders expand their node sets.
#[derive(Clone, Debug)]
pub struct FrontierMachine {
    edges: Vec<LayerEdge>,
    first_touch: Vec<usize>,
    last_touch: Vec<usize>,
    is_terminal: Vec<bool>,
    k: usize,
    unseen_after: Vec<usize>,
    max_width: usize,
    trivial: Option<f64>,
    // Cursor state.
    layer: usize,
    cur: Vec<VertexId>,
    next: Vec<VertexId>,
    fdeg: Vec<u32>,
}

impl FrontierMachine {
    /// Build the machine. Terminals are validated and deduplicated; `order`
    /// seeds from the first terminal.
    pub fn new(
        g: &UncertainGraph,
        terminals: &[VertexId],
        order: EdgeOrder,
    ) -> Result<Self, GraphError> {
        let t = g.validate_terminals(terminals)?;
        let plan = FrontierPlan::for_strategy(g, order, t[0]);
        Ok(Self::with_plan(g, &t, plan))
    }

    /// Build the machine from a precomputed plan (terminals must be valid).
    pub fn with_plan(g: &UncertainGraph, terminals: &[VertexId], plan: FrontierPlan) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut is_terminal = vec![false; n];
        for &t in terminals {
            is_terminal[t] = true;
        }
        let k = terminals.len();

        let edges: Vec<LayerEdge> = plan
            .order
            .iter()
            .map(|&id| {
                let e = g.edge(id);
                LayerEdge {
                    id,
                    u: e.u,
                    v: e.v,
                    p: e.p,
                }
            })
            .collect();

        // unseen_after[l] = #terminals whose first touch is after layer l.
        let mut unseen_after = vec![0usize; m];
        {
            let mut firsts: Vec<usize> = terminals.iter().map(|&t| plan.first_touch[t]).collect();
            firsts.sort_unstable();
            let mut seen = 0usize;
            for (l, slot) in unseen_after.iter_mut().enumerate() {
                while seen < firsts.len() && firsts[seen] <= l {
                    seen += 1;
                }
                *slot = k - seen;
            }
        }

        let isolated_terminal = terminals.iter().any(|&t| plan.first_touch[t] == usize::MAX);
        let trivial = if k <= 1 {
            Some(1.0)
        } else if m == 0 || isolated_terminal {
            Some(0.0)
        } else {
            None
        };

        let fdeg: Vec<u32> = (0..n).map(|v| g.degree(v) as u32).collect();
        let mut machine = FrontierMachine {
            edges,
            first_touch: plan.first_touch,
            last_touch: plan.last_touch,
            is_terminal,
            k,
            unseen_after,
            max_width: plan.max_width,
            trivial,
            layer: 0,
            cur: Vec::new(),
            next: Vec::new(),
            fdeg,
        };
        machine.recompute_next();
        machine
    }

    /// `Some(r)` when the reliability is decided without construction
    /// (`k <= 1` → 1; an isolated terminal or an edgeless graph with
    /// `k >= 2` → 0).
    #[inline]
    pub fn trivial(&self) -> Option<f64> {
        self.trivial
    }

    /// Number of layers (= edges).
    #[inline]
    pub fn layers(&self) -> usize {
        self.edges.len()
    }

    /// Current layer (0-based).
    #[inline]
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Number of terminals.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum frontier width over all layers (from the plan).
    #[inline]
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Terminal mask by vertex id.
    #[inline]
    pub fn terminal_mask(&self) -> &[bool] {
        &self.is_terminal
    }

    /// All edges in processing order.
    #[inline]
    pub fn ordered_edges(&self) -> &[LayerEdge] {
        &self.edges
    }

    /// The edge processed at the current layer.
    #[inline]
    pub fn current_edge(&self) -> LayerEdge {
        self.edges[self.layer]
    }

    /// Frontier (sorted) before processing the current layer.
    #[inline]
    pub fn cur_frontier(&self) -> &[VertexId] {
        &self.cur
    }

    /// Frontier (sorted) after processing the current layer; `Next` states
    /// produced by [`Self::apply`] align with these slots.
    #[inline]
    pub fn next_frontier(&self) -> &[VertexId] {
        &self.next
    }

    /// Number of terminals not yet touched after the current layer.
    #[inline]
    pub fn unseen_after_current(&self) -> usize {
        self.unseen_after[self.layer]
    }

    /// Number of uncertain (not yet processed) edges incident to `v` after
    /// the current layer — the ingredient of the paper's `d_{n,f}`.
    #[inline]
    pub fn future_degree_after_current(&self, v: VertexId) -> u32 {
        let e = self.edges[self.layer];
        let adjust = (e.u == v) as u32 + (e.v == v) as u32;
        self.fdeg[v] - adjust
    }

    /// Move the cursor to the next layer.
    pub fn advance(&mut self) {
        let e = self.edges[self.layer];
        self.fdeg[e.u] -= 1;
        self.fdeg[e.v] -= 1;
        self.layer += 1;
        std::mem::swap(&mut self.cur, &mut self.next);
        self.recompute_next();
    }

    /// Rebuild `next` from `cur` and the current layer's enter/leave events.
    fn recompute_next(&mut self) {
        self.next.clear();
        self.next.extend_from_slice(&self.cur);
        if self.layer >= self.edges.len() {
            return;
        }
        let e = self.edges[self.layer];
        for w in [e.u, e.v] {
            if self.first_touch[w] == self.layer {
                if let Err(pos) = self.next.binary_search(&w) {
                    self.next.insert(pos, w);
                }
            }
        }
        for w in [e.u, e.v] {
            if self.last_touch[w] == self.layer {
                if let Ok(pos) = self.next.binary_search(&w) {
                    self.next.remove(pos);
                }
            }
        }
    }

    /// Component id of vertex `w` (an endpoint of the current edge) within
    /// `state`, assigning fresh ids to entering vertices.
    #[inline]
    fn endpoint_comp(&self, state: &State, w: VertexId, fresh: &mut u16) -> u16 {
        if self.first_touch[w] == self.layer {
            let id = *fresh;
            *fresh += 1;
            id
        } else {
            let slot = self
                .cur
                .binary_search(&w)
                .expect("endpoint with first_touch < layer must be in the frontier");
            state.comp[slot]
        }
    }

    /// Apply the current layer's edge decision (`take` = edge existent) to a
    /// state aligned with [`Self::cur_frontier`]. Requires `k >= 1`.
    pub fn apply(&self, state: &State, take: bool, scratch: &mut Scratch) -> Transition {
        debug_assert!(self.k >= 1);
        debug_assert_eq!(
            state.comp.len(),
            self.cur.len(),
            "state/frontier slot mismatch"
        );
        let e = self.edges[self.layer];

        // Extended component table: existing comps plus entries for entering
        // endpoints.
        let mut fresh = state.tcnt.len() as u16;
        let cu = self.endpoint_comp(state, e.u, &mut fresh);
        let cv = self.endpoint_comp(state, e.v, &mut fresh);
        let ext_len = fresh as usize;
        scratch.tcnt.clear();
        scratch.tcnt.extend_from_slice(&state.tcnt);
        for w in [e.u, e.v] {
            if self.first_touch[w] == self.layer {
                scratch.tcnt.push(self.is_terminal[w] as u32);
            }
        }
        debug_assert_eq!(scratch.tcnt.len(), ext_len);

        // At most one merge per layer: remap `from` -> `to`.
        let (mut from, mut to) = (u16::MAX, u16::MAX);
        if take && cu != cv {
            to = cu.min(cv);
            from = cu.max(cv);
            scratch.tcnt[to as usize] += scratch.tcnt[from as usize];
        }
        let map_id = |c: u16| if c == from { to } else { c };

        // Present components after the merge: those referenced by any member
        // of the extended vertex set (frontier slots + entering endpoints).
        scratch.present.clear();
        scratch.present.resize(ext_len, false);
        for &c in &state.comp {
            scratch.present[map_id(c) as usize] = true;
        }
        scratch.present[map_id(cu) as usize] = true;
        scratch.present[map_id(cv) as usize] = true;

        // 1-sink (Lemma 4.1): a single live flagged component and nothing
        // unseen means every terminal is connected.
        let flagged = scratch
            .present
            .iter()
            .zip(&scratch.tcnt)
            .filter(|&(&p, &t)| p && t > 0)
            .count();
        if flagged == 1 && self.unseen_after[self.layer] == 0 {
            return Transition::One;
        }

        // Survival table: a component stays alive iff some non-leaving
        // vertex references it.
        scratch.alive.clear();
        scratch.alive.resize(ext_len, false);
        for (slot, &x) in self.cur.iter().enumerate() {
            if self.last_touch[x] != self.layer {
                scratch.alive[map_id(state.comp[slot]) as usize] = true;
            }
        }
        for (w, c) in [(e.u, cu), (e.v, cv)] {
            if self.first_touch[w] == self.layer && self.last_touch[w] != self.layer {
                scratch.alive[map_id(c) as usize] = true;
            }
        }

        // 0-sink (Lemma 4.2): a flagged component dies incomplete.
        for (w, c) in [(e.u, cu), (e.v, cv)] {
            if self.last_touch[w] == self.layer {
                let cc = map_id(c) as usize;
                if !scratch.alive[cc] && scratch.tcnt[cc] > 0 {
                    return Transition::Zero;
                }
            }
        }

        // Canonicalize the surviving state over the next frontier.
        scratch.renum.clear();
        scratch.renum.resize(ext_len, u16::MAX);
        let mut comp = Vec::with_capacity(self.next.len());
        let mut tcnt = Vec::new();
        for &x in &self.next {
            let c = if self.first_touch[x] == self.layer {
                // x is an entering endpoint of e.
                map_id(if x == e.u { cu } else { cv })
            } else {
                let slot = self
                    .cur
                    .binary_search(&x)
                    .expect("surviving vertex was in the frontier");
                map_id(state.comp[slot])
            } as usize;
            let new_id = if scratch.renum[c] == u16::MAX {
                let id = tcnt.len() as u16;
                scratch.renum[c] = id;
                tcnt.push(scratch.tcnt[c]);
                id
            } else {
                scratch.renum[c]
            };
            comp.push(new_id);
        }
        Transition::Next(State { comp, tcnt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(g: &UncertainGraph, t: &[usize]) -> FrontierMachine {
        FrontierMachine::new(g, t, EdgeOrder::Input).unwrap()
    }

    /// Exhaustively expand the machine and sum path probabilities into the
    /// 1-sink — a reference mini-solver used to validate transitions.
    fn expand_reliability(g: &UncertainGraph, terminals: &[usize]) -> f64 {
        let mut m = machine(g, terminals);
        if let Some(r) = m.trivial() {
            return r;
        }
        let mut scratch = Scratch::default();
        let mut states: Vec<(State, f64)> = vec![(State::root(), 1.0)];
        let mut pc = 0.0;
        for _ in 0..m.layers() {
            let e = m.current_edge();
            let mut next: Vec<(State, f64)> = Vec::new();
            for (s, prob) in &states {
                for (take, w) in [(false, 1.0 - e.p), (true, e.p)] {
                    if w == 0.0 {
                        continue;
                    }
                    match m.apply(s, take, &mut scratch) {
                        Transition::One => pc += prob * w,
                        Transition::Zero => {}
                        Transition::Next(ns) => next.push((ns, prob * w)),
                    }
                }
            }
            states = next;
            m.advance();
        }
        assert!(states.iter().all(|(s, _)| s.comp.is_empty()));
        pc
    }

    #[test]
    fn trivial_cases() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5)]).unwrap();
        assert_eq!(machine(&g, &[1]).trivial(), Some(1.0));
        // Vertex 2 is isolated: k=2 with an isolated terminal is zero.
        assert_eq!(machine(&g, &[0, 2]).trivial(), Some(0.0));
        let empty = UncertainGraph::new(2, []).unwrap();
        assert_eq!(machine(&empty, &[0, 1]).trivial(), Some(0.0));
    }

    #[test]
    fn single_edge_reliability() {
        let g = UncertainGraph::new(2, [(0, 1, 0.3)]).unwrap();
        assert!((expand_reliability(&g, &[0, 1]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn series_and_triangle() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8)]).unwrap();
        assert!((expand_reliability(&g, &[0, 2]) - 0.4).abs() < 1e-12);
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8), (0, 2, 0.3)]).unwrap();
        let expect = 0.3 + 0.7 * 0.5 * 0.8;
        assert!((expand_reliability(&g, &[0, 2]) - expect).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_fixtures() {
        let fixtures: Vec<(UncertainGraph, Vec<usize>)> = vec![
            (
                UncertainGraph::new(
                    5,
                    [
                        (0, 1, 0.7),
                        (0, 2, 0.7),
                        (1, 2, 0.7),
                        (1, 3, 0.7),
                        (2, 4, 0.7),
                        (3, 4, 0.7),
                    ],
                )
                .unwrap(),
                vec![0, 3, 4],
            ),
            (
                UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.4), (3, 0, 0.6)])
                    .unwrap(),
                vec![0, 2],
            ),
            (
                UncertainGraph::new(
                    6,
                    [
                        (0, 1, 0.5),
                        (1, 2, 0.6),
                        (2, 3, 0.7),
                        (3, 4, 0.8),
                        (4, 5, 0.9),
                    ],
                )
                .unwrap(),
                vec![0, 5],
            ),
        ];
        for (g, t) in fixtures {
            let expect = crate::brute::brute_force_reliability(&g, &t);
            let got = expand_reliability(&g, &t);
            assert!((got - expect).abs() < 1e-12, "got {got}, expect {expect}");
        }
    }

    #[test]
    fn disconnected_terminals_resolve_to_zero() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        assert_eq!(expand_reliability(&g, &[0, 2]), 0.0);
    }

    #[test]
    fn signature_pattern_vs_exact() {
        let a = State {
            comp: vec![0, 0, 1],
            tcnt: vec![2, 1],
        };
        let b = State {
            comp: vec![0, 0, 1],
            tcnt: vec![1, 2],
        };
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a.signature(MergeRule::Pattern, &mut sa);
        b.signature(MergeRule::Pattern, &mut sb);
        assert_eq!(sa, sb, "pattern rule merges differing counts");
        a.signature(MergeRule::ExactCounts, &mut sa);
        b.signature(MergeRule::ExactCounts, &mut sb);
        assert_ne!(sa, sb, "exact rule distinguishes counts");
    }

    #[test]
    fn signature_distinguishes_partitions() {
        let a = State {
            comp: vec![0, 1],
            tcnt: vec![1, 1],
        };
        let b = State {
            comp: vec![0, 0],
            tcnt: vec![2],
        };
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a.signature(MergeRule::Pattern, &mut sa);
        b.signature(MergeRule::Pattern, &mut sb);
        assert_ne!(sa, sb);
    }

    #[test]
    fn future_degree_tracks_layers() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let mut m = machine(&g, &[0, 2]);
        // During layer 0 (edge (0,1)): after it, vertex 1 still has edge (1,2).
        assert_eq!(m.future_degree_after_current(1), 1);
        assert_eq!(m.future_degree_after_current(0), 0);
        m.advance();
        assert_eq!(m.future_degree_after_current(1), 0);
        assert_eq!(m.future_degree_after_current(2), 0);
    }

    #[test]
    fn frontier_evolution() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]).unwrap();
        let mut m = machine(&g, &[0, 3]);
        assert_eq!(m.cur_frontier(), &[] as &[usize]);
        assert_eq!(m.next_frontier(), &[1]); // 0 enters and leaves at layer 0
        m.advance();
        assert_eq!(m.cur_frontier(), &[1]);
        assert_eq!(m.next_frontier(), &[2]);
        m.advance();
        assert_eq!(m.cur_frontier(), &[2]);
        assert_eq!(m.next_frontier(), &[] as &[usize]);
    }
}
