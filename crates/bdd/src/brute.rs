//! Brute-force exact reliability by possible-world enumeration.
//!
//! Sums `I(G_p, T) · Pr[G_p]` over all `2^|E|` possible worlds (paper
//! Definition 1). Only feasible for tiny graphs; it is the ground-truth
//! oracle for every property test in the workspace.

use netrel_numeric::NeumaierSum;
use netrel_ugraph::{Dsu, UncertainGraph, VertexId};

/// Maximum edge count accepted (2^28 worlds ≈ a few seconds in release mode;
/// tests stay well below this).
pub const MAX_EDGES: usize = 28;

/// Exact `R[G, T]` by enumeration. Panics if `|E| > MAX_EDGES` or terminals
/// are invalid; terminal sets of size 0/1 have reliability 1.
pub fn brute_force_reliability(g: &UncertainGraph, terminals: &[VertexId]) -> f64 {
    let t = g.validate_terminals(terminals).expect("invalid terminals");
    if t.len() <= 1 {
        return 1.0;
    }
    let m = g.num_edges();
    assert!(
        m <= MAX_EDGES,
        "brute force limited to {MAX_EDGES} edges, got {m}"
    );
    let k = t.len() as u32;
    let mut dsu = Dsu::new(g.num_vertices());
    let mut tcount = vec![0u32; g.num_vertices()];
    let mut acc = NeumaierSum::new();
    for world in 0u64..(1u64 << m) {
        dsu.reset();
        tcount.fill(0);
        for &v in &t {
            tcount[v] = 1;
        }
        let mut prob = 1.0f64;
        let mut connected = 0u32;
        for (i, e) in g.edges().iter().enumerate() {
            if world >> i & 1 == 1 {
                prob *= e.p;
                let ra = dsu.find(e.u);
                let rb = dsu.find(e.v);
                if ra != rb {
                    let tc = tcount[ra] + tcount[rb];
                    let r = dsu.union(ra, rb).expect("distinct roots merge");
                    tcount[r] = tc;
                    connected = connected.max(tc);
                }
            } else {
                prob *= 1.0 - e.p;
            }
        }
        if connected >= k {
            acc.add(prob);
        }
    }
    acc.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn single_edge() {
        let g = UncertainGraph::new(2, [(0, 1, 0.3)]).unwrap();
        assert!(close(brute_force_reliability(&g, &[0, 1]), 0.3));
    }

    #[test]
    fn series_parallel_by_hand() {
        // Two edges in series: R = p1 p2.
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8)]).unwrap();
        assert!(close(brute_force_reliability(&g, &[0, 2]), 0.4));
        // Triangle, terminals {0, 2}: paths 0-2 direct or 0-1-2.
        // R = p02 + (1-p02) p01 p12.
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8), (0, 2, 0.3)]).unwrap();
        let expect = 0.3 + 0.7 * 0.5 * 0.8;
        assert!(close(brute_force_reliability(&g, &[0, 2]), expect));
    }

    #[test]
    fn paper_figure1_example() {
        // The paper's running example: 5 vertices, 6 edges, p = 0.7 each.
        // Terminals {a=0, d=3, e=4}; possible graphs with 4 existent edges
        // have probability 0.7^4 * 0.3^2 = 0.0216 (sanity anchor from §1).
        assert!(close(0.7f64.powi(4) * 0.3f64.powi(2), 0.021609));
    }

    #[test]
    fn three_terminals_on_star() {
        // Star center 3, leaves 0,1,2; terminals leaves: all three spokes needed.
        let g = UncertainGraph::new(4, [(0, 3, 0.9), (1, 3, 0.8), (2, 3, 0.7)]).unwrap();
        assert!(close(
            brute_force_reliability(&g, &[0, 1, 2]),
            0.9 * 0.8 * 0.7
        ));
    }

    #[test]
    fn k_all_vertices_is_all_terminal_reliability() {
        // Cycle of 3 with all terminals: fails only if >= 2 edges fail.
        let p = 0.5f64;
        let g = UncertainGraph::new(3, [(0, 1, p), (1, 2, p), (0, 2, p)]).unwrap();
        // R = p^3 + 3 p^2 (1-p).
        let expect = p.powi(3) + 3.0 * p.powi(2) * (1.0 - p);
        assert!(close(brute_force_reliability(&g, &[0, 1, 2]), expect));
    }

    #[test]
    fn trivial_terminal_sets() {
        let g = UncertainGraph::new(2, [(0, 1, 0.1)]).unwrap();
        assert!(close(brute_force_reliability(&g, &[1]), 1.0));
    }

    #[test]
    fn disconnected_terminals_zero() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        assert!(close(brute_force_reliability(&g, &[0, 2]), 0.0));
    }

    #[test]
    fn probability_one_edges_certain() {
        let g = UncertainGraph::new(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(close(brute_force_reliability(&g, &[0, 1, 2]), 1.0));
    }
}
