//! Exact k-terminal reliability machinery.
//!
//! Four pieces live here:
//!
//! * [`brute`]: `O(2^|E|)` enumeration over all possible worlds — the oracle
//!   every other solver is validated against,
//! * [`frontier`]: the frontier-based state machine shared by the materialized
//!   BDD baseline and the S2BDD (paper §3.2.1): canonical component/terminal
//!   states, sink detection, and per-layer bookkeeping,
//! * [`factoring`]: the classical Factoring-Theorem exact solver (Eq. 12)
//!   with series/parallel reductions — a third independent exact oracle,
//! * [`full`]: the materialized, all-layers BDD baseline (what the paper calls
//!   "the BDD-based approach", TdZDD-style), with node accounting and a node
//!   limit so the Figure 3 DNF behaviour is reproducible,
//! * [`dot`]: Graphviz export of small materialized BDDs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod brute;
pub mod dot;
pub mod factoring;
pub mod frontier;
pub mod full;

pub use brute::brute_force_reliability;
pub use factoring::factoring_reliability;
pub use frontier::{FrontierMachine, State, Transition};
pub use full::{FullBdd, FullBddConfig, FullBddError};
