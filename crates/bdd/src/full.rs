//! The materialized frontier-based BDD baseline ("BDD-based approach").
//!
//! Builds the *entire* diagram — every layer's nodes and arcs — exactly like
//! TdZDD-style exact solvers, then computes reliability by propagating path
//! probability mass from the root. Memory grows with the diagram, which is
//! why the paper reports DNF for this baseline on all large datasets
//! (Figure 3); the `node_limit` makes that failure mode explicit and safe.

use crate::frontier::{FrontierMachine, MergeRule, Scratch, State, Transition};
use netrel_numeric::NeumaierSum;
use netrel_ugraph::ordering::EdgeOrder;
use netrel_ugraph::{EdgeId, GraphError, UncertainGraph, VertexId};

/// Arc target: index into the next layer, or one of the two sinks.
pub const ARC_ZERO: u32 = u32::MAX;
/// Arc target sentinel for the 1-sink.
pub const ARC_ONE: u32 = u32::MAX - 1;

/// A BDD node: `lo` = 0-arc (edge absent), `hi` = 1-arc (edge present).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BddNode {
    /// 0-arc target.
    pub lo: u32,
    /// 1-arc target.
    pub hi: u32,
}

/// Configuration for the materialized BDD.
#[derive(Clone, Copy, Debug)]
pub struct FullBddConfig {
    /// Abort construction when the total node count exceeds this (the
    /// paper's baseline runs out of memory on graphs beyond a few hundred
    /// edges; 4M nodes keeps the failure graceful).
    pub node_limit: usize,
    /// Edge processing order.
    pub order: EdgeOrder,
    /// Node-merging rule.
    pub merge_rule: MergeRule,
}

impl Default for FullBddConfig {
    fn default() -> Self {
        FullBddConfig {
            node_limit: 4_000_000,
            order: EdgeOrder::Bfs,
            merge_rule: MergeRule::Pattern,
        }
    }
}

/// Why the materialized BDD could not be built.
#[derive(Debug)]
pub enum FullBddError {
    /// The diagram exceeded `node_limit` nodes ("DNF" in the paper's plots).
    NodeLimit {
        /// Nodes materialized before aborting.
        built: usize,
    },
    /// Invalid input graph/terminals.
    Graph(GraphError),
}

impl std::fmt::Display for FullBddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FullBddError::NodeLimit { built } => {
                write!(f, "BDD node limit exceeded after {built} nodes (DNF)")
            }
            FullBddError::Graph(e) => write!(f, "invalid input: {e}"),
        }
    }
}

impl std::error::Error for FullBddError {}

impl From<GraphError> for FullBddError {
    fn from(e: GraphError) -> Self {
        FullBddError::Graph(e)
    }
}

/// A fully materialized k-terminal reliability BDD.
#[derive(Clone, Debug)]
pub struct FullBdd {
    /// Nodes per layer; arcs point into the following layer (or sinks).
    pub layers: Vec<Vec<BddNode>>,
    /// Original edge id labelling each layer.
    pub edge_labels: Vec<EdgeId>,
    /// Existence probability of each layer's edge.
    pub probs: Vec<f64>,
    /// Exact network reliability `R[G, T]`.
    pub reliability: f64,
    /// Total node count (the paper's BDD "size").
    pub node_count: usize,
    /// Peak bytes held in state keys during construction.
    pub peak_state_bytes: usize,
}

impl FullBdd {
    /// Build the full diagram and compute exact reliability.
    pub fn build(
        g: &UncertainGraph,
        terminals: &[VertexId],
        cfg: FullBddConfig,
    ) -> Result<FullBdd, FullBddError> {
        let t = g.validate_terminals(terminals)?;
        let mut machine = FrontierMachine::new(g, &t, cfg.order)?;
        if let Some(r) = machine.trivial() {
            return Ok(FullBdd {
                layers: Vec::new(),
                edge_labels: Vec::new(),
                probs: Vec::new(),
                reliability: r,
                node_count: 0,
                peak_state_bytes: 0,
            });
        }

        let mut scratch = Scratch::default();
        let mut layers: Vec<Vec<BddNode>> = Vec::with_capacity(machine.layers());
        let mut edge_labels = Vec::with_capacity(machine.layers());
        let mut probs = Vec::with_capacity(machine.layers());
        let mut states: Vec<State> = vec![State::root()];
        let mut node_count = 0usize;
        let mut peak_state_bytes = 0usize;
        let mut key = Vec::new();

        for _ in 0..machine.layers() {
            let e = machine.current_edge();
            edge_labels.push(e.id);
            probs.push(e.p);
            let mut level: Vec<BddNode> = Vec::with_capacity(states.len());
            let mut next_states: Vec<State> = Vec::new();
            let mut index: netrel_numeric::FxHashMap<Vec<u8>, u32> =
                netrel_numeric::FxHashMap::default();
            let mut state_bytes = 0usize;
            for s in &states {
                let mut arc = [ARC_ZERO; 2];
                for (slot, take) in [(0usize, false), (1usize, true)] {
                    arc[slot] = match machine.apply(s, take, &mut scratch) {
                        Transition::Zero => ARC_ZERO,
                        Transition::One => ARC_ONE,
                        Transition::Next(ns) => {
                            ns.signature(cfg.merge_rule, &mut key);
                            if let Some(&i) = index.get(&key) {
                                i
                            } else {
                                let i = next_states.len() as u32;
                                state_bytes += ns.heap_bytes() + key.len();
                                index.insert(key.clone(), i);
                                next_states.push(ns);
                                i
                            }
                        }
                    };
                }
                level.push(BddNode {
                    lo: arc[0],
                    hi: arc[1],
                });
            }
            node_count += level.len();
            if node_count > cfg.node_limit {
                return Err(FullBddError::NodeLimit { built: node_count });
            }
            peak_state_bytes = peak_state_bytes.max(state_bytes);
            layers.push(level);
            states = next_states;
            machine.advance();
        }
        debug_assert!(
            states.is_empty(),
            "all paths must reach a sink by the last layer"
        );

        let reliability = forward_mass(&layers, &probs);
        Ok(FullBdd {
            layers,
            edge_labels,
            probs,
            reliability,
            node_count,
            peak_state_bytes,
        })
    }

    /// Rough resident-memory estimate of the materialized diagram.
    pub fn memory_bytes(&self) -> usize {
        self.node_count * std::mem::size_of::<BddNode>() + self.peak_state_bytes
    }
}

/// Propagate probability mass from the root; returns mass reaching the 1-sink.
fn forward_mass(layers: &[Vec<BddNode>], probs: &[f64]) -> f64 {
    if layers.is_empty() {
        return 0.0;
    }
    let mut mass: Vec<f64> = vec![1.0];
    let mut one = NeumaierSum::new();
    for (level, &p) in layers.iter().zip(probs) {
        let next_len = level
            .iter()
            .flat_map(|n| [n.lo, n.hi])
            .filter(|&a| a != ARC_ZERO && a != ARC_ONE)
            .map(|a| a as usize + 1)
            .max()
            .unwrap_or(0);
        let mut next = vec![0.0f64; next_len];
        for (node, &m) in level.iter().zip(&mass) {
            for (target, w) in [(node.lo, m * (1.0 - p)), (node.hi, m * p)] {
                match target {
                    ARC_ONE => one.add(w),
                    ARC_ZERO => {}
                    i => next[i as usize] += w,
                }
            }
        }
        mass = next;
    }
    one.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_reliability;
    use proptest::prelude::*;

    fn build(g: &UncertainGraph, t: &[usize]) -> FullBdd {
        FullBdd::build(g, t, FullBddConfig::default()).unwrap()
    }

    #[test]
    fn trivial_graphs() {
        let g = UncertainGraph::new(2, [(0, 1, 0.4)]).unwrap();
        assert_eq!(build(&g, &[0]).reliability, 1.0);
        let b = build(&g, &[0, 1]);
        assert!((b.reliability - 0.4).abs() < 1e-12);
        assert!(b.node_count >= 1);
    }

    #[test]
    fn matches_brute_force_on_small_fixtures() {
        let cases: Vec<(UncertainGraph, Vec<usize>)> = vec![
            (
                UncertainGraph::new(
                    5,
                    [
                        (0, 1, 0.7),
                        (0, 2, 0.7),
                        (1, 2, 0.7),
                        (1, 3, 0.7),
                        (2, 4, 0.7),
                        (3, 4, 0.7),
                    ],
                )
                .unwrap(),
                vec![0, 3, 4],
            ),
            (
                UncertainGraph::new(
                    6,
                    [
                        (0, 1, 0.3),
                        (1, 2, 0.9),
                        (2, 3, 0.5),
                        (3, 4, 0.6),
                        (4, 5, 0.8),
                        (5, 0, 0.2),
                        (1, 4, 0.4),
                    ],
                )
                .unwrap(),
                vec![0, 3],
            ),
        ];
        for (g, t) in cases {
            let expect = brute_force_reliability(&g, &t);
            for rule in [MergeRule::Pattern, MergeRule::ExactCounts] {
                for order in [EdgeOrder::Input, EdgeOrder::Bfs, EdgeOrder::Dfs] {
                    let cfg = FullBddConfig {
                        order,
                        merge_rule: rule,
                        ..Default::default()
                    };
                    let b = FullBdd::build(&g, &t, cfg).unwrap();
                    assert!(
                        (b.reliability - expect).abs() < 1e-12,
                        "{rule:?}/{order:?}: {} vs {expect}",
                        b.reliability
                    );
                }
            }
        }
    }

    #[test]
    fn pattern_rule_never_larger_than_exact() {
        let g = UncertainGraph::new(
            7,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
                (3, 4, 0.5),
                (4, 5, 0.5),
                (5, 6, 0.5),
                (6, 0, 0.5),
                (1, 4, 0.5),
                (2, 5, 0.5),
            ],
        )
        .unwrap();
        let t = vec![0, 3, 5];
        let pat = FullBdd::build(
            &g,
            &t,
            FullBddConfig {
                merge_rule: MergeRule::Pattern,
                ..Default::default()
            },
        )
        .unwrap();
        let exact = FullBdd::build(
            &g,
            &t,
            FullBddConfig {
                merge_rule: MergeRule::ExactCounts,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(pat.node_count <= exact.node_count);
        assert!((pat.reliability - exact.reliability).abs() < 1e-12);
    }

    #[test]
    fn node_limit_reports_dnf() {
        // A 5x5 grid with a tiny limit must abort.
        let mut edges = Vec::new();
        for r in 0..5usize {
            for c in 0..5usize {
                let v = r * 5 + c;
                if c + 1 < 5 {
                    edges.push((v, v + 1, 0.5));
                }
                if r + 1 < 5 {
                    edges.push((v, v + 5, 0.5));
                }
            }
        }
        let g = UncertainGraph::new(25, edges).unwrap();
        let err = FullBdd::build(
            &g,
            &[0, 24],
            FullBddConfig {
                node_limit: 10,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FullBddError::NodeLimit { built } if built > 10));
    }

    #[test]
    fn memory_accounting_positive() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 0, 0.5)]).unwrap();
        let b = build(&g, &[0, 2]);
        assert!(b.memory_bytes() > 0);
        assert_eq!(b.layers.len(), 4);
        assert_eq!(b.node_count, b.layers.iter().map(Vec::len).sum::<usize>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn agrees_with_brute_force(
            edges in proptest::collection::vec((0usize..7, 0usize..7, 0.05f64..1.0), 1..13),
            t0 in 0usize..7,
            t1 in 0usize..7,
            t2 in 0usize..7,
        ) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            prop_assume!(!list.is_empty());
            let g = UncertainGraph::new(7, list).unwrap();
            let mut t = vec![t0, t1, t2];
            t.sort_unstable();
            t.dedup();
            let expect = brute_force_reliability(&g, &t);
            let b = build(&g, &t);
            prop_assert!((b.reliability - expect).abs() < 1e-9,
                "bdd {} vs brute {}", b.reliability, expect);
        }
    }
}
