//! Exact reliability by the Factoring Theorem (paper Eq. 12).
//!
//! `R[G_E] = p(e) · R[G_E | e existent] + (1 − p(e)) · R[G_E | e non-existent]`
//!
//! The classical exact algorithm: pick an uncertain edge, branch on its two
//! states (contracting on the existent branch, deleting on the other), and
//! recurse, applying series/parallel/degree reductions at every step. It is
//! exponential in the worst case but very effective on sparse graphs, and —
//! crucially for this workspace — it is a third, structurally different
//! exact implementation to cross-validate brute force and the BDD family.
//!
//! Implementation notes: the recursion operates on a contracted multigraph
//! (contraction merges endpoints, which creates parallel edges and
//! self-loops — both are resolved as reductions). Terminal identity follows
//! contractions through a union-find.

use netrel_ugraph::{Dsu, UncertainGraph, VertexId};

/// Work item: a multigraph under contraction.
#[derive(Clone)]
struct FactorState {
    /// Live edges as (u, v, p) over contracted vertex classes.
    edges: Vec<(usize, usize, f64)>,
    /// Union-find over original vertices tracking contractions.
    dsu: Dsu,
    /// Terminal count per *root* class (indexed by original vertex id).
    tcnt: Vec<u32>,
    /// Number of distinct terminal classes still to connect.
    classes: usize,
}

/// Exact `R[G, T]` by recursive factoring with reductions.
///
/// Feasible up to a few dozen edges beyond brute force on sparse inputs;
/// intended for validation and ablation rather than production use (the
/// S2BDD with unbounded width is the faster exact solver).
pub fn factoring_reliability(g: &UncertainGraph, terminals: &[VertexId]) -> f64 {
    let t = g.validate_terminals(terminals).expect("invalid terminals");
    if t.len() <= 1 {
        return 1.0;
    }
    let n = g.num_vertices();
    let mut tcnt = vec![0u32; n];
    for &v in &t {
        tcnt[v] = 1;
    }
    let state = FactorState {
        edges: g.edges().iter().map(|e| (e.u, e.v, e.p)).collect(),
        dsu: Dsu::new(n),
        tcnt,
        classes: t.len(),
    };
    factor(state)
}

fn factor(mut st: FactorState) -> f64 {
    // Normalize: resolve roots, drop self-loops, merge parallels.
    let mut merged: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for (u, v, p) in std::mem::take(&mut st.edges) {
        let (ru, rv) = (st.dsu.find(u), st.dsu.find(v));
        if ru == rv {
            continue; // self-loop after contraction
        }
        let key = (ru.min(rv), ru.max(rv));
        let q = merged.entry(key).or_insert(0.0);
        // parallel rule: 1 - (1-a)(1-b)
        *q = 1.0 - (1.0 - *q) * (1.0 - p);
    }
    st.edges = merged.into_iter().map(|((u, v), p)| (u, v, p)).collect();
    st.edges.sort_unstable_by_key(|e| (e.0, e.1));

    if st.classes <= 1 {
        return 1.0; // all terminals already contracted together
    }

    // Degree bookkeeping for the reductions and for connectivity pruning.
    let mut deg: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    for &(u, v, _) in &st.edges {
        *deg.entry(u).or_insert(0) += 1;
        *deg.entry(v).or_insert(0) += 1;
    }

    // Prune: a terminal class with no incident edges can never connect.
    let incident: std::collections::HashSet<usize> = deg.keys().copied().collect();
    for v in 0..st.tcnt.len() {
        if st.tcnt[v] > 0 && st.dsu.find(v) == v && !incident.contains(&v) {
            return 0.0;
        }
    }
    if st.edges.is_empty() {
        return if st.classes <= 1 { 1.0 } else { 0.0 };
    }

    // Series reduction: a non-terminal class of degree 2 contracts its two
    // incident edges into one of probability p·q. (Applied one at a time;
    // the recursion re-normalizes.)
    for i in 0..st.edges.len() {
        let (u, v, p) = st.edges[i];
        for mid in [u, v] {
            if st.tcnt[mid] == 0 && deg.get(&mid) == Some(&2) {
                // find the other edge at `mid`
                if let Some(j) = (0..st.edges.len())
                    .find(|&j| j != i && (st.edges[j].0 == mid || st.edges[j].1 == mid))
                {
                    let (a, b, q) = st.edges[j];
                    let other_i = if u == mid { v } else { u };
                    let other_j = if a == mid { b } else { a };
                    if other_i == other_j {
                        continue; // triangle degenerate; let factoring handle it
                    }
                    let mut next = st.clone();
                    next.edges.retain(|&(x, y, _)| {
                        !((x, y) == (st.edges[i].0, st.edges[i].1)
                            || (x, y) == (st.edges[j].0, st.edges[j].1))
                    });
                    next.edges
                        .push((other_i.min(other_j), other_i.max(other_j), p * q));
                    return factor(next);
                }
            }
        }
    }

    // Factor on the highest-probability edge (classical pivot choice).
    let (u, v, p) = *st
        .edges
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("probabilities are comparable"))
        .expect("nonempty edge set");

    // Branch 1: edge exists — contract u into v.
    let mut exist = st.clone();
    exist
        .edges
        .retain(|&(x, y, _)| (x, y) != (u.min(v), u.max(v)));
    let (ru, rv) = (exist.dsu.find(u), exist.dsu.find(v));
    let tu = exist.tcnt[ru];
    let tv = exist.tcnt[rv];
    let root = exist.dsu.union(ru, rv).expect("distinct classes merge");
    exist.tcnt[root] = tu + tv;
    if tu > 0 && tv > 0 {
        exist.classes -= 1;
    }
    let r_exist = factor(exist);

    // Branch 2: edge absent — delete it.
    let mut absent = st;
    absent
        .edges
        .retain(|&(x, y, _)| (x, y) != (u.min(v), u.max(v)));
    let r_absent = factor(absent);

    p * r_exist + (1.0 - p) * r_absent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_reliability;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn single_edge() {
        let g = UncertainGraph::new(2, [(0, 1, 0.3)]).unwrap();
        assert!(close(factoring_reliability(&g, &[0, 1]), 0.3));
    }

    #[test]
    fn series_and_parallel() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8)]).unwrap();
        assert!(close(factoring_reliability(&g, &[0, 2]), 0.4));
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.8), (0, 2, 0.3)]).unwrap();
        let expect = 0.3 + 0.7 * 0.5 * 0.8;
        assert!(close(factoring_reliability(&g, &[0, 2]), expect));
    }

    #[test]
    fn figure1_fixture() {
        let g = UncertainGraph::new(
            5,
            [
                (0, 1, 0.7),
                (0, 2, 0.7),
                (1, 2, 0.7),
                (1, 3, 0.7),
                (2, 4, 0.7),
                (3, 4, 0.7),
            ],
        )
        .unwrap();
        let t = vec![0, 3, 4];
        assert!(close(
            factoring_reliability(&g, &t),
            brute_force_reliability(&g, &t)
        ));
    }

    #[test]
    fn disconnected_zero() {
        let g = UncertainGraph::new(4, [(0, 1, 0.9), (2, 3, 0.9)]).unwrap();
        assert!(close(factoring_reliability(&g, &[0, 2]), 0.0));
    }

    #[test]
    fn trivial_one() {
        let g = UncertainGraph::new(2, [(0, 1, 0.1)]).unwrap();
        assert!(close(factoring_reliability(&g, &[0]), 1.0));
    }

    #[test]
    fn all_terminals_cycle() {
        let p = 0.5f64;
        let g = UncertainGraph::new(3, [(0, 1, p), (1, 2, p), (0, 2, p)]).unwrap();
        let expect = p.powi(3) + 3.0 * p.powi(2) * (1.0 - p);
        assert!(close(factoring_reliability(&g, &[0, 1, 2]), expect));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn agrees_with_brute_force(
            edges in proptest::collection::vec((0usize..7, 0usize..7, 0.05f64..1.0), 1..12),
            t0 in 0usize..7,
            t1 in 0usize..7,
            t2 in 0usize..7,
        ) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v, p)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, p))
                })
                .collect();
            prop_assume!(!list.is_empty());
            let g = UncertainGraph::new(7, list).unwrap();
            let mut t = vec![t0, t1, t2];
            t.sort_unstable();
            t.dedup();
            let expect = brute_force_reliability(&g, &t);
            let got = factoring_reliability(&g, &t);
            prop_assert!((got - expect).abs() < 1e-9, "{} vs {}", got, expect);
        }
    }
}
