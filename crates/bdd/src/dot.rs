//! Graphviz (DOT) export for small materialized BDDs.
//!
//! Mirrors the paper's Figure 2: dashed arrows are 0-arcs (edge absent),
//! solid arrows are 1-arcs (edge present); rectangles are the sinks.

use crate::full::{FullBdd, ARC_ONE, ARC_ZERO};

/// Render a materialized BDD as a DOT digraph.
///
/// Node names follow the paper's figure: `G1` is the root, numbering proceeds
/// layer by layer. Layers are labelled with the edge id they decide.
pub fn to_dot(bdd: &FullBdd) -> String {
    let mut out = String::from("digraph s2bdd {\n  rankdir=TB;\n");
    out.push_str("  zero [label=\"0\", shape=box];\n  one [label=\"1\", shape=box];\n");

    // Assign G-numbers layer by layer.
    let mut base = vec![0usize; bdd.layers.len() + 1];
    for (l, level) in bdd.layers.iter().enumerate() {
        base[l + 1] = base[l] + level.len();
    }
    let name = |layer: usize, idx: u32| format!("g{}", base[layer] + idx as usize + 1);

    for (l, level) in bdd.layers.iter().enumerate() {
        out.push_str(&format!(
            "  subgraph cluster_l{l} {{ label=\"layer {} (e{})\"; style=dashed;\n",
            l + 1,
            bdd.edge_labels[l]
        ));
        for i in 0..level.len() {
            out.push_str(&format!(
                "    {} [label=\"G{}\"];\n",
                name(l, i as u32),
                base[l] + i + 1
            ));
        }
        out.push_str("  }\n");
        for (i, node) in level.iter().enumerate() {
            for (target, style) in [(node.lo, "dashed"), (node.hi, "solid")] {
                let dst = match target {
                    ARC_ZERO => "zero".to_string(),
                    ARC_ONE => "one".to_string(),
                    t => name(l + 1, t),
                };
                out.push_str(&format!(
                    "  {} -> {} [style={style}];\n",
                    name(l, i as u32),
                    dst
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::{FullBdd, FullBddConfig};
    use netrel_ugraph::UncertainGraph;

    #[test]
    fn renders_series_graph() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let b = FullBdd::build(&g, &[0, 2], FullBddConfig::default()).unwrap();
        let dot = to_dot(&b);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("g1"));
        assert!(dot.contains("one"));
        assert!(dot.contains("zero"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=solid"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn arc_counts_match_nodes() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.5)]).unwrap();
        let b = FullBdd::build(&g, &[0, 2], FullBddConfig::default()).unwrap();
        let dot = to_dot(&b);
        let arcs = dot.matches(" -> ").count();
        assert_eq!(arcs, 2 * b.node_count, "every node has exactly two arcs");
    }
}
