//! Microbenchmarks: possible-world sampling throughput (the baseline's hot
//! path) for MC and HT draws.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrel_datasets::Dataset;
use netrel_ugraph::WorldSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_world_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_sampling");
    for (name, g, t) in [
        (
            "karate",
            Dataset::Karate.generate(1.0, 1),
            vec![0usize, 16, 33],
        ),
        (
            "dblp1_2pc",
            Dataset::Dblp1.generate(0.02, 1),
            vec![3usize, 99, 200],
        ),
        (
            "tokyo_2pc",
            Dataset::Tokyo.generate(0.02, 1),
            vec![3usize, 99, 200],
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("mc_early_exit", name), &g, |b, g| {
            let mut s = WorldSampler::new(g.num_vertices());
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| s.sample_connected(g, &t, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("ht_full_world", name), &g, |b, g| {
            let mut s = WorldSampler::new(g.num_vertices());
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| s.sample_world_full(g, &t, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_world_sampling);
criterion_main!(benches);
