//! Criterion microbench: the adaptive planner against the classic engine —
//! planning overhead on sparse workloads (where every part routes exact)
//! and completion of dense batches the capped exact path cannot finish.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrel_datasets::{clique, Dataset};
use netrel_engine::{Engine, EngineConfig, PlanBudget, PlannedQuery, ReliabilityQuery};
use netrel_s2bdd::S2BddConfig;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    // Sparse workload: the planner must pick the exact route; its cost
    // model is the only overhead over the classic engine.
    let sparse = Dataset::Tokyo.generate(0.01, 7);
    let pairs = netrel_bench::overlapping_terminal_pairs(&sparse, 5, 7);
    let classic: Vec<ReliabilityQuery> = pairs
        .iter()
        .map(|t| {
            ReliabilityQuery::with_config(
                t.clone(),
                netrel_core::ProConfig {
                    s2bdd: S2BddConfig::exact(),
                    ..Default::default()
                },
            )
        })
        .collect();
    let planned: Vec<PlannedQuery> = pairs
        .iter()
        .map(|t| PlannedQuery::new(t.clone(), PlanBudget::default()))
        .collect();

    group.bench_function(BenchmarkId::from_parameter("sparse_classic"), |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::sequential());
            let id = engine.register("tokyo", sparse.clone());
            engine
                .run_batch(id, &classic)
                .unwrap()
                .into_iter()
                .map(|a| a.unwrap().estimate)
                .sum::<f64>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("sparse_planned"), |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::sequential());
            let id = engine.register("tokyo", sparse.clone());
            engine
                .run_planned_batch(id, &planned)
                .unwrap()
                .into_iter()
                .map(|a| a.unwrap().estimate)
                .sum::<f64>()
        })
    });

    // Dense workload: the exact path cannot finish under the node cap; the
    // planner routes to sampling and completes.
    let dense = clique(50);
    let dense_queries: Vec<PlannedQuery> = (0..10)
        .map(|i| PlannedQuery::new(vec![i, 25 + i], PlanBudget::default()))
        .collect();
    group.bench_function(BenchmarkId::from_parameter("dense_planned"), |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::sequential());
            let id = engine.register("clique50", dense.clone());
            engine
                .run_planned_batch(id, &dense_queries)
                .unwrap()
                .into_iter()
                .map(|a| a.unwrap().estimate)
                .sum::<f64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
