//! Microbenchmarks: the graph-algorithm substrate (union-find, bridges,
//! 2ECC, frontier planning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrel_datasets::Dataset;
use netrel_ugraph::bridges::cut_structure;
use netrel_ugraph::ordering::{EdgeOrder, FrontierPlan};
use netrel_ugraph::twoecc::two_edge_connected_components;
use netrel_ugraph::Dsu;

fn bench_graph_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_algos");

    group.bench_function("dsu_union_find_100k", |b| {
        b.iter(|| {
            let mut d = Dsu::new(100_000);
            for i in 0..99_999 {
                d.union(i, i + 1);
            }
            d.find(0)
        });
    });

    for (name, ds, scale) in [
        ("tokyo", Dataset::Tokyo, 0.05),
        ("dblp1", Dataset::Dblp1, 0.05),
        ("hitd", Dataset::HitD, 0.02),
    ] {
        let g = ds.generate(scale, 1);
        group.bench_with_input(BenchmarkId::new("bridges", name), &g, |b, g| {
            b.iter(|| cut_structure(g));
        });
        let cut = cut_structure(&g);
        group.bench_with_input(BenchmarkId::new("twoecc", name), &g, |b, g| {
            b.iter(|| two_edge_connected_components(g, &cut));
        });
        group.bench_with_input(BenchmarkId::new("frontier_plan_bfs", name), &g, |b, g| {
            b.iter(|| FrontierPlan::for_strategy(g, EdgeOrder::Bfs, 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_algos);
criterion_main!(benches);
