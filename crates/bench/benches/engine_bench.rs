//! Criterion microbench: batched engine throughput, cold vs. warm plan
//! cache, against independent one-shot `pro_reliability` calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrel_bench::overlapping_terminal_pairs;
use netrel_core::{pro_reliability, ProConfig};
use netrel_datasets::Dataset;
use netrel_engine::{Engine, EngineConfig, ReliabilityQuery};
use netrel_s2bdd::S2BddConfig;

fn workload(scale: f64) -> (netrel_ugraph::UncertainGraph, Vec<ReliabilityQuery>) {
    let g = Dataset::Dblp1.generate(scale, 7);
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            max_width: 16,
            samples: 500,
            seed: 7,
            ..Default::default()
        },
        ..Default::default()
    };
    let pairs = overlapping_terminal_pairs(&g, 5, 7);
    let queries = (0..20)
        .map(|i| ReliabilityQuery::with_config(pairs[i % pairs.len()].clone(), cfg))
        .collect();
    (g, queries)
}

fn bench_engine(c: &mut Criterion) {
    let (g, queries) = workload(0.01);
    let mut group = c.benchmark_group("engine_20q_dblp1");
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("oneshot"), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| {
                    pro_reliability(&g, &q.terminals, q.config)
                        .unwrap()
                        .estimate
                })
                .sum::<f64>()
        })
    });

    group.bench_function(BenchmarkId::from_parameter("engine_cold"), |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::sequential());
            let id = engine.register("dblp1", g.clone());
            engine
                .run_batch(id, &queries)
                .unwrap()
                .into_iter()
                .map(|a| a.unwrap().estimate)
                .sum::<f64>()
        })
    });

    // One engine across iterations: after the warmup pass the plan cache is
    // fully populated, so this measures the steady-state hot-pair path.
    let mut engine = Engine::new(EngineConfig::sequential());
    let id = engine.register("dblp1", g.clone());
    group.bench_function(BenchmarkId::from_parameter("engine_warm"), |b| {
        b.iter(|| {
            engine
                .run_batch(id, &queries)
                .unwrap()
                .into_iter()
                .map(|a| a.unwrap().estimate)
                .sum::<f64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
