//! Observability overhead gate: the instrumented engine hot path must stay
//! within 5% of the uninstrumented baseline on a planner-throughput-style
//! workload.
//!
//! Not a criterion bench: the assertion needs a deterministic pass/fail
//! exit, so this is a custom harness that interleaves `Recorder::noop()`
//! and `Recorder::enabled()` rounds (interleaving cancels thermal and
//! frequency drift) and compares min-of-rounds, the low-noise statistic.
//! The gate only trips when `OBS_OVERHEAD_GATE=1` (set by CI); without it
//! the numbers are informational, so local runs on noisy machines never
//! spuriously fail.
//!
//! Answers are additionally asserted bit-identical across the two engines —
//! the overhead gate doubles as an end-to-end invariance check.

use netrel_core::ProConfig;
use netrel_engine::{Engine, EngineConfig, PlanBudget, PlannedQuery, Recorder};
use netrel_ugraph::UncertainGraph;
use std::time::Instant;

const ROUNDS: usize = 7;
const BATCHES_PER_ROUND: usize = 30;

/// The planner-throughput workload shape: a sparse graph with overlapping
/// two-terminal queries, exact routes, warm cache after the first batch —
/// the regime where per-query bookkeeping is the largest relative cost.
fn workload_graph() -> UncertainGraph {
    // A 40-vertex ladder (two rails + rungs): sparse, bridge-rich, and
    // cheap per query, so fixed instrumentation cost is maximally visible.
    let mut edges = Vec::new();
    for i in 0..19usize {
        edges.push((2 * i, 2 * i + 2, 0.9));
        edges.push((2 * i + 1, 2 * i + 3, 0.8));
    }
    for i in 0..20usize {
        edges.push((2 * i, 2 * i + 1, 0.7));
    }
    UncertainGraph::new(40, edges).unwrap()
}

fn queries() -> Vec<PlannedQuery> {
    (0..16)
        .map(|i| {
            PlannedQuery::with_config(
                vec![2 * (i % 5), 30 + (i % 7)],
                ProConfig::default(),
                PlanBudget::default(),
            )
        })
        .collect()
}

/// Seconds for one round: `BATCHES_PER_ROUND` planned batches on a fresh
/// engine (cold first batch, warm rest — the service steady state).
fn round(recorder: Recorder, queries: &[PlannedQuery]) -> (f64, u64) {
    let mut engine = Engine::with_recorder(EngineConfig::sequential(), recorder);
    let id = engine.register("ladder", workload_graph());
    let t0 = Instant::now();
    let mut bits = 0u64;
    for _ in 0..BATCHES_PER_ROUND {
        for a in engine.run_planned_batch(id, queries).unwrap() {
            bits ^= a.unwrap().estimate.to_bits();
        }
    }
    (t0.elapsed().as_secs_f64(), bits)
}

fn main() {
    // `cargo bench` passes harness flags (e.g. `--bench`); ignore them.
    let queries = queries();

    // Warmup round (not recorded) to fault in code and allocator state.
    let (_, warm_bits) = round(Recorder::noop(), &queries);

    let mut base_min = f64::INFINITY;
    let mut inst_min = f64::INFINITY;
    for _ in 0..ROUNDS {
        let (base_secs, base_bits) = round(Recorder::noop(), &queries);
        let (inst_secs, inst_bits) = round(Recorder::enabled(), &queries);
        assert_eq!(base_bits, warm_bits, "uninstrumented answers drifted");
        assert_eq!(inst_bits, warm_bits, "instrumentation changed answers");
        base_min = base_min.min(base_secs);
        inst_min = inst_min.min(inst_secs);
    }

    let overhead = inst_min / base_min - 1.0;
    println!(
        "obs overhead: baseline {:.3}ms, instrumented {:.3}ms, overhead {:+.2}%",
        base_min * 1e3,
        inst_min * 1e3,
        overhead * 100.0
    );

    // ±5% contract plus a 2ms absolute floor so micro-runs on loaded
    // machines cannot trip on scheduler noise alone.
    let limit = base_min * 1.05 + 2e-3;
    if inst_min > limit {
        let message = format!(
            "instrumented hot path too slow: {:.3}ms > {:.3}ms (baseline {:.3}ms + 5% + 2ms)",
            inst_min * 1e3,
            limit * 1e3,
            base_min * 1e3
        );
        if std::env::var("OBS_OVERHEAD_GATE").as_deref() == Ok("1") {
            panic!("{message}");
        }
        eprintln!("warning (gate disabled): {message}");
    }
}
