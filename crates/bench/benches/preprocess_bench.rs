//! Microbenchmarks: the extension technique end to end (Table 5's time
//! column as a statistically sound measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrel_bench::random_terminals;
use netrel_datasets::Dataset;
use netrel_preprocess::{preprocess, PreprocessConfig};

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    for (name, ds, scale) in [
        ("karate", Dataset::Karate, 1.0),
        ("amrv", Dataset::AmRv, 1.0),
        ("dblp1", Dataset::Dblp1, 0.05),
        ("tokyo", Dataset::Tokyo, 0.05),
        ("nyc", Dataset::Nyc, 0.02),
        ("hitd", Dataset::HitD, 0.02),
    ] {
        let g = ds.generate(scale, 1);
        let t = random_terminals(&g, 10.min(g.num_vertices() / 3).max(2), 3);
        group.bench_with_input(BenchmarkId::new("full_pipeline", name), &g, |b, g| {
            b.iter(|| preprocess(g, &t, PreprocessConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
