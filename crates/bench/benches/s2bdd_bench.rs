//! Microbenchmarks: S2BDD solve cost — exact on Karate, width-bounded on a
//! road network, and the merge-rule ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrel_bdd::frontier::MergeRule;
use netrel_datasets::Dataset;
use netrel_s2bdd::{S2Bdd, S2BddConfig};

fn bench_s2bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("s2bdd");
    group.sample_size(10);

    // The karate *core* (vertices 0..22 induced): full-karate exact diagrams
    // reach ~1.5M states per layer, far too slow for a microbenchmark.
    let karate = {
        let g = Dataset::Karate.generate(1.0, 1);
        let keep: Vec<bool> = (0..g.num_vertices()).map(|v| v < 22).collect();
        g.induced_subgraph(&keep).0
    };
    let kt = vec![0usize, 16, 21];
    for rule in [MergeRule::Pattern, MergeRule::ExactCounts] {
        group.bench_with_input(
            BenchmarkId::new("karate_core_exact", format!("{rule:?}")),
            &karate,
            |b, g| {
                let cfg = S2BddConfig {
                    merge_rule: rule,
                    ..S2BddConfig::exact()
                };
                b.iter(|| S2Bdd::solve(g, &kt, cfg).unwrap());
            },
        );
    }

    let tokyo = Dataset::Tokyo.generate(0.02, 1);
    let tt = vec![5usize, 100, 300, 450, 511];
    for w in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("tokyo_bounded", w), &tokyo, |b, g| {
            let cfg = S2BddConfig {
                max_width: w,
                samples: 1_000,
                ..Default::default()
            };
            b.iter(|| S2Bdd::solve(g, &tt, cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_s2bdd);
criterion_main!(benches);
