//! Shared protocol for the accuracy experiments (paper §7.6, Tables 3–4).
//!
//! Generate `q1` random searches; compute each search's exact reliability;
//! run each method `q2` times with fresh seeds; report the paper's variance
//! and error-rate metrics.

use crate::{random_terminals, RunArgs};
use netrel_core::prelude::*;
use netrel_datasets::Dataset;
use netrel_numeric::accuracy;
use serde::Serialize;

/// Accuracy protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyConfig {
    /// Number of searches (`q1`).
    pub q1: usize,
    /// Runs per search (`q2`).
    pub q2: usize,
    /// Sample budget per run.
    pub samples: usize,
    /// S2BDD width for the Pro methods.
    pub width: usize,
}

impl AccuracyConfig {
    /// Paper-fidelity (`q1 = q2 = 100`) or quick (`20 × 20`) settings.
    pub fn for_args(args: &RunArgs) -> Self {
        if args.full {
            AccuracyConfig {
                q1: 100,
                q2: 100,
                samples: 10_000,
                width: 10_000,
            }
        } else {
            AccuracyConfig {
                q1: 6,
                q2: 10,
                samples: 1_000,
                width: 10_000,
            }
        }
    }
}

/// One method's accuracy row.
#[derive(Clone, Debug, Serialize)]
pub struct MethodRow {
    /// Terminal count.
    pub k: usize,
    /// Method label, paper notation.
    pub method: String,
    /// Paper variance metric.
    pub variance: f64,
    /// Paper error-rate metric.
    pub error_rate: f64,
    /// How many of the `q1 × q2` Pro runs were exact.
    pub exact_runs: usize,
}

/// The four methods of Tables 3–4.
const METHODS: [(&str, bool, EstimatorKind); 4] = [
    ("Pro(MC)", true, EstimatorKind::MonteCarlo),
    ("Pro(HT)", true, EstimatorKind::HorvitzThompson),
    ("Sampling(MC)", false, EstimatorKind::MonteCarlo),
    ("Sampling(HT)", false, EstimatorKind::HorvitzThompson),
];

/// Run the full protocol for one dataset at each k in `ks`.
pub fn run_accuracy(
    ds: Dataset,
    ks: &[usize],
    args: &RunArgs,
    cfg: AccuracyConfig,
) -> Vec<MethodRow> {
    let g = ds.generate(1.0, args.seed);
    let mut rows = Vec::new();
    for &k in ks {
        // Exact ground truth per search.
        let searches: Vec<(Vec<usize>, f64)> = (0..cfg.q1)
            .map(|i| {
                let t = random_terminals(&g, k, args.seed ^ ((i as u64) << 32) | k as u64);
                let exact = exact_reliability(&g, &t).expect("small dataset is exactly solvable");
                (t, exact)
            })
            .collect();

        for (name, is_pro, estimator) in METHODS {
            let mut per_search: Vec<(f64, Vec<f64>)> = Vec::with_capacity(cfg.q1);
            let mut exact_runs = 0usize;
            for (si, (t, exact)) in searches.iter().enumerate() {
                let mut estimates = Vec::with_capacity(cfg.q2);
                for run in 0..cfg.q2 {
                    let seed = args.seed ^ ((si as u64) << 40) ^ ((run as u64) << 20) ^ (k as u64);
                    let est = if is_pro {
                        let r = pro_reliability(
                            &g,
                            t,
                            ProConfig {
                                s2bdd: S2BddConfig {
                                    samples: cfg.samples,
                                    max_width: cfg.width,
                                    estimator,
                                    seed,
                                    ..Default::default()
                                },
                                ..Default::default()
                            },
                        )
                        .expect("valid instance");
                        exact_runs += r.exact as usize;
                        r.estimate
                    } else {
                        sample_reliability(
                            &g,
                            t,
                            SamplingConfig {
                                samples: cfg.samples,
                                estimator,
                                seed,
                                ..Default::default()
                            },
                        )
                        .expect("valid instance")
                        .estimate
                    };
                    estimates.push(est);
                }
                per_search.push((*exact, estimates));
            }
            let rep = accuracy(&per_search);
            rows.push(MethodRow {
                k,
                method: name.to_string(),
                variance: rep.variance,
                error_rate: rep.error_rate,
                exact_runs,
            });
        }
    }
    rows
}

/// Print rows in the paper's table layout.
pub fn print_rows(title: &str, rows: &[MethodRow], cfg: AccuracyConfig) {
    println!(
        "{title} (q1 = {}, q2 = {}, s = {}, w = {})\n",
        cfg.q1, cfg.q2, cfg.samples, cfg.width
    );
    println!(
        "{:>4} {:<14} {:>14} {:>12} {:>12}",
        "k", "Method", "Variance", "Error rate", "exact runs"
    );
    let mut last_k = usize::MAX;
    for r in rows {
        if r.k != last_k {
            println!("{}", "-".repeat(62));
            last_k = r.k;
        }
        println!(
            "{:>4} {:<14} {:>14.3e} {:>12.4} {:>12}",
            r.k, r.method, r.variance, r.error_rate, r.exact_runs
        );
    }
}
