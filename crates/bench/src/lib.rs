//! Shared harness for the paper-reproduction binaries.
//!
//! Every binary accepts:
//!
//! * `--scale=<f>`  — vertex-count scale for the large synthetic datasets
//!   (default 0.05; the paper's full sizes need `--scale=1.0` and patience),
//! * `--searches=<n>` — random terminal draws per configuration,
//! * `--seed=<n>`  — base RNG seed,
//! * `--full`      — paper-fidelity sizes (scale 1.0, paper search counts),
//! * `--json=<path>` — also dump machine-readable rows.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accuracy;
pub mod throughput;

use netrel_ugraph::UncertainGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Common CLI arguments.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// Scale factor for large synthetic datasets.
    pub scale: f64,
    /// Terminal draws per configuration.
    pub searches: usize,
    /// Base seed.
    pub seed: u64,
    /// Paper-fidelity mode.
    pub full: bool,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Suite selector for multi-suite runners (`netrel-testrunner`).
    pub suite: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            scale: 0.05,
            searches: 3,
            seed: 7,
            full: false,
            json: None,
            suite: None,
        }
    }
}

/// Parse `std::env::args`, with `--full` upgrading the defaults.
pub fn parse_args() -> RunArgs {
    let mut a = RunArgs::default();
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--scale=") {
            a.scale = v.parse().expect("--scale takes a float");
        } else if let Some(v) = arg.strip_prefix("--searches=") {
            a.searches = v.parse().expect("--searches takes an integer");
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            a.seed = v.parse().expect("--seed takes an integer");
        } else if let Some(v) = arg.strip_prefix("--json=") {
            a.json = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--suite=") {
            a.suite = Some(v.to_string());
        } else if arg == "--full" {
            a.full = true;
            a.scale = 1.0;
            a.searches = 20;
        } else {
            eprintln!("warning: unknown argument {arg:?} ignored");
        }
    }
    a
}

/// Wall-clock one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// `distinct` terminal pairs drawn from the graph's largest connected
/// component — the hot-pair workload of multi-query (s-t) benchmarks, where
/// the same pairs recur and decompositions overlap. Deterministic per seed.
pub fn overlapping_terminal_pairs(
    g: &UncertainGraph,
    distinct: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let (comp, num) = netrel_ugraph::traversal::connected_components(g);
    let mut sizes = vec![0usize; num];
    for &c in &comp {
        sizes[c] += 1;
    }
    let biggest = (0..num).max_by_key(|&c| sizes[c]).expect("non-empty graph");
    let members: Vec<usize> = (0..g.num_vertices())
        .filter(|&v| comp[v] == biggest)
        .collect();
    let possible = members.len() * members.len().saturating_sub(1) / 2;
    assert!(
        distinct <= possible,
        "largest component ({} vertices) holds only {possible} distinct pairs, {distinct} requested",
        members.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = std::collections::BTreeSet::new();
    while pairs.len() < distinct {
        let a = members[rng.gen_range(0..members.len())];
        let b = members[rng.gen_range(0..members.len())];
        if a != b {
            pairs.insert((a.min(b), a.max(b)));
        }
    }
    pairs.into_iter().map(|(a, b)| vec![a, b]).collect()
}

/// `k` distinct random terminals (the paper selects terminals uniformly).
pub fn random_terminals(g: &UncertainGraph, k: usize, seed: u64) -> Vec<usize> {
    assert!(k <= g.num_vertices());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = std::collections::BTreeSet::new();
    while t.len() < k {
        t.insert(rng.gen_range(0..g.num_vertices()));
    }
    t.into_iter().collect()
}

/// Write serializable rows as pretty JSON if `--json` was given.
pub fn maybe_dump_json<T: Serialize>(args: &RunArgs, rows: &T) {
    if let Some(path) = &args.json {
        let text = serde_json::to_string_pretty(rows).expect("rows serialize");
        std::fs::write(path, text).expect("write json output");
        eprintln!("wrote {path}");
    }
}

/// Format seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Format a byte count.
pub fn fmt_bytes(b: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1}{}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_distinct_and_in_range() {
        let g = UncertainGraph::new(10, (0..9).map(|i| (i, i + 1, 0.5))).unwrap();
        let t = random_terminals(&g, 5, 3);
        assert_eq!(t.len(), 5);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
        assert!(t.iter().all(|&v| v < 10));
        assert_eq!(t, random_terminals(&g, 5, 3), "seeded determinism");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert!(fmt_secs(5e-5).ends_with("µs"));
        assert_eq!(fmt_bytes(512), "512.0B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
    }

    #[test]
    fn default_args() {
        let a = RunArgs::default();
        assert_eq!(a.scale, 0.05);
        assert!(!a.full);
    }
}
