//! Figure 5 — effect of the maximum S2BDD width w: (a) peak memory of the
//! S2BDD layer and (b) response time, for w ∈ {1K, 10K, 100K, 1M}
//! (k = 10, s = 10 000).

use netrel_bench::{fmt_bytes, fmt_secs, maybe_dump_json, parse_args, random_terminals, time};
use netrel_core::prelude::*;
use netrel_datasets::Dataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    width: usize,
    peak_memory_bytes: usize,
    secs: f64,
}

fn main() {
    let args = parse_args();
    let k = 10usize;
    let s = 10_000usize;
    // One decade lower in quick mode: the scaled graphs saturate smaller
    // widths, and w = 100k+ on the dense stand-in dominates the whole run.
    let widths: &[usize] = if args.full {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[300, 3_000, 30_000]
    };
    println!(
        "Figure 5: effect of max width (k = {k}, s = {s}, scale = {})\n",
        args.scale
    );
    println!(
        "{:<8} {:>10} {:>14} {:>12}",
        "dataset", "w", "peak memory", "time"
    );
    let mut rows = Vec::new();
    for ds in Dataset::LARGE {
        let g = ds.generate(args.scale, args.seed);
        for &w in widths {
            let mut mem = 0usize;
            let mut secs = 0.0f64;
            for search in 0..args.searches {
                let t = random_terminals(&g, k, args.seed ^ ((search as u64) << 24) ^ w as u64);
                let cfg = ProConfig {
                    s2bdd: S2BddConfig {
                        samples: s,
                        max_width: w,
                        seed: args.seed,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let (r, dt) = time(|| pro_reliability(&g, &t, cfg).unwrap());
                secs += dt;
                mem = mem.max(
                    r.parts
                        .iter()
                        .map(|p| p.peak_memory_bytes)
                        .max()
                        .unwrap_or(0),
                );
            }
            let secs = secs / args.searches as f64;
            println!(
                "{:<8} {:>10} {:>14} {:>12}",
                ds.to_string(),
                w,
                fmt_bytes(mem),
                fmt_secs(secs)
            );
            rows.push(Row {
                dataset: ds.to_string(),
                width: w,
                peak_memory_bytes: mem,
                secs,
            });
        }
        println!();
    }
    println!(
        "Expected shape (paper Fig. 5): memory grows with w (and is independent\n\
         of graph size); response time is comparatively flat — larger widths\n\
         trade construction cost against fewer samples."
    );
    maybe_dump_json(&args, &rows);
}
