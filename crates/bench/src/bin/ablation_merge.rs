//! Ablation — node-merging rule: the paper's Lemma 4.3 pattern merging vs
//! exact-terminal-count merging. Both are exact; pattern merging produces
//! smaller diagrams.

use netrel_bdd::frontier::MergeRule;
use netrel_bdd::{FullBdd, FullBddConfig};
use netrel_bench::{fmt_secs, maybe_dump_json, parse_args, random_terminals, time};
use netrel_datasets::Dataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    k: usize,
    rule: String,
    nodes: usize,
    secs: f64,
    reliability: f64,
}

fn main() {
    let args = parse_args();
    println!("Ablation: merge rule (materialized BDD node counts)\n");
    println!(
        "{:<8} {:>3} {:<12} {:>12} {:>10} {:>12}",
        "dataset", "k", "rule", "nodes", "time", "reliability"
    );
    let mut rows = Vec::new();
    // Karate exercises the dense-social regime; a 2%-scale Tokyo grid the
    // narrow-frontier regime where exact diagrams are easy. (Am-Rv's exact
    // diagram exceeds any reasonable node limit — the affiliation graph is
    // why the paper's baseline DNFs.)
    for ds in [Dataset::Karate, Dataset::Tokyo] {
        let g = ds.generate(if ds.is_large() { 0.02 } else { 1.0 }, args.seed);
        for k in [3usize, 5] {
            let t = random_terminals(&g, k, args.seed ^ k as u64);
            let mut rels = Vec::new();
            for rule in [MergeRule::Pattern, MergeRule::ExactCounts] {
                let cfg = FullBddConfig {
                    merge_rule: rule,
                    node_limit: 30_000_000,
                    ..Default::default()
                };
                let (out, dt) = time(|| FullBdd::build(&g, &t, cfg));
                match out {
                    Ok(b) => {
                        println!(
                            "{:<8} {:>3} {:<12} {:>12} {:>10} {:>12.6}",
                            ds.to_string(),
                            k,
                            format!("{rule:?}"),
                            b.node_count,
                            fmt_secs(dt),
                            b.reliability
                        );
                        rels.push(b.reliability);
                        rows.push(Row {
                            dataset: ds.to_string(),
                            k,
                            rule: format!("{rule:?}"),
                            nodes: b.node_count,
                            secs: dt,
                            reliability: b.reliability,
                        });
                    }
                    Err(e) => {
                        println!(
                            "{:<8} {:>3} {:<12} {:>12} {:>10} {:>12}",
                            ds.to_string(),
                            k,
                            format!("{rule:?}"),
                            "DNF",
                            fmt_secs(dt),
                            format!("({e})")
                        );
                    }
                }
            }
            if rels.len() == 2 {
                assert!((rels[0] - rels[1]).abs() < 1e-9, "both rules must be exact");
            }
        }
        println!();
    }
    println!("Pattern merging (Lemma 4.3) never increases the node count and both\nrules return identical reliabilities.");
    maybe_dump_json(&args, &rows);
}
