//! Ablation — edge ordering: input vs BFS vs DFS frontier width, and its
//! effect on S2BDD solve time. The frontier width drives diagram size, so
//! this is the paper's implicit "good variable order" assumption made
//! explicit.

use netrel_bench::{fmt_secs, maybe_dump_json, parse_args, random_terminals, time};
use netrel_core::prelude::*;
use netrel_datasets::Dataset;
use netrel_ugraph::ordering::{EdgeOrder, FrontierPlan};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    order: String,
    max_frontier_width: usize,
    solve_secs: f64,
}

fn main() {
    let args = parse_args();
    println!(
        "Ablation: edge ordering (k = 10, s = 1000, w = 10000, scale = {})\n",
        args.scale
    );
    println!(
        "{:<8} {:<8} {:>16} {:>12}",
        "dataset", "order", "max frontier", "solve time"
    );
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let scale = if ds.is_large() { args.scale } else { 1.0 };
        let g = ds.generate(scale, args.seed);
        let k = 10usize.min(g.num_vertices() / 3).max(2);
        let t = random_terminals(&g, k, args.seed);
        for order in [EdgeOrder::Input, EdgeOrder::Bfs, EdgeOrder::Dfs] {
            let plan = FrontierPlan::for_strategy(&g, order, t[0]);
            let cfg = ProConfig {
                s2bdd: S2BddConfig {
                    samples: 1_000,
                    max_width: 10_000,
                    order,
                    seed: args.seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (_, dt) = time(|| pro_reliability(&g, &t, cfg).unwrap());
            println!(
                "{:<8} {:<8} {:>16} {:>12}",
                ds.to_string(),
                format!("{order:?}"),
                plan.max_width,
                fmt_secs(dt)
            );
            rows.push(Row {
                dataset: ds.to_string(),
                order: format!("{order:?}"),
                max_frontier_width: plan.max_width,
                solve_secs: dt,
            });
        }
        println!();
    }
    println!("BFS keeps the frontier (and thus the S2BDD) small on road networks;\ninput order can be catastrophically wide.");
    maybe_dump_json(&args, &rows);
}
