//! Table 3 — accuracy on the Karate dataset: variance and error rate of
//! Pro(MC)/Pro(HT) vs Sampling(MC)/Sampling(HT) at k ∈ {5, 10, 20}.

use netrel_bench::accuracy::{print_rows, run_accuracy, AccuracyConfig};
use netrel_bench::{maybe_dump_json, parse_args};
use netrel_datasets::Dataset;

fn main() {
    let args = parse_args();
    let cfg = AccuracyConfig::for_args(&args);
    let rows = run_accuracy(Dataset::Karate, &[5, 10, 20], &args, cfg);
    print_rows("Table 3: accuracy on Karate", &rows, cfg);
    println!(
        "\nExpected shape (paper): Pro slightly more accurate than Sampling; MC\n\
         marginally better than HT (sampling is with replacement)."
    );
    maybe_dump_json(&args, &rows);
}
