//! Engine throughput baseline: cold vs. warm batch queries/sec against
//! independent one-shot `pro_reliability` calls, on the Tokyo-like (road,
//! tree-like) and DBLP-like (coauthor, dense-core) generators.
//!
//! Writes `BENCH_engine.json` (override with `--json=`) in the unified
//! [`netrel_obs::BenchReport`] schema, with cache counters taken from the
//! engine's metrics snapshot, so future PRs can compare runs with
//! `bench-diff`. `--scale=` sizes the graphs.

use netrel_bench::{fmt_secs, maybe_dump_json, overlapping_terminal_pairs, parse_args, time};
use netrel_core::{pro_reliability, ProConfig};
use netrel_datasets::Dataset;
use netrel_engine::{Engine, EngineConfig, QueryAnswer, Recorder, ReliabilityQuery};
use netrel_obs::{BenchReport, BenchRow, CacheCounts, RouteCounts};
use netrel_s2bdd::S2BddConfig;

const QUERIES: usize = 100;
const DISTINCT_PAIRS: usize = 10;
const BATCH: usize = 10;

fn main() {
    let mut args = parse_args();
    if args.json.is_none() {
        args.json = Some("BENCH_engine.json".into());
    }
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            max_width: 32,
            samples: 2_000,
            seed: args.seed,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut report = BenchReport::new("engine_throughput", args.scale, args.seed);
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "dataset", "oneshot", "cold", "warm", "cold q/s", "warm q/s", "cold x", "warm x"
    );
    for ds in [Dataset::Tokyo, Dataset::Dblp1] {
        let g = ds.generate(args.scale, args.seed);
        let pairs = overlapping_terminal_pairs(&g, DISTINCT_PAIRS, args.seed);
        let queries: Vec<ReliabilityQuery> = (0..QUERIES)
            .map(|i| ReliabilityQuery::with_config(pairs[i % pairs.len()].clone(), cfg))
            .collect();

        // Independent one-shot calls: full preprocessing per call, no cache.
        let (solo, oneshot_secs) = time(|| {
            queries
                .iter()
                .map(|q| pro_reliability(&g, &q.terminals, q.config).unwrap())
                .collect::<Vec<_>>()
        });

        // Cold engine: index build + batched answering in arrival order.
        // The live recorder demonstrates (and regression-guards) that the
        // instrumented hot path keeps its throughput.
        let mut engine = Engine::with_recorder(EngineConfig::sequential(), Recorder::enabled());
        let id = engine.register(ds.spec().abbr, g.clone());
        let (cold, cold_secs) = time(|| run_chunks(&engine, id, &queries));

        // Warm engine: the same workload against the now-populated cache.
        let (warm, warm_secs) = time(|| run_chunks(&engine, id, &queries));

        for ((s, c), w) in solo.iter().zip(&cold).zip(&warm) {
            assert_eq!(s.estimate.to_bits(), c.estimate.to_bits(), "cold mismatch");
            assert_eq!(s.estimate.to_bits(), w.estimate.to_bits(), "warm mismatch");
        }

        let snapshot = engine.metrics_snapshot().expect("recorder is enabled");
        let cold_qps = QUERIES as f64 / cold_secs;
        let warm_qps = QUERIES as f64 / warm_secs;
        let row = BenchRow {
            name: ds.spec().abbr.to_string(),
            semantics: "k-terminal".to_string(),
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
            queries: QUERIES as u64,
            secs: cold_secs,
            qps: cold_qps,
            // The classic path routes nothing through the planner.
            routes: RouteCounts::default(),
            cache: CacheCounts {
                hits: snapshot.cache_hits,
                misses: snapshot.cache_misses,
                evictions: snapshot.cache_evictions,
                entries: engine.cache_stats().entries as u64,
            },
            extra: vec![
                ("oneshot_secs".to_string(), oneshot_secs),
                ("warm_secs".to_string(), warm_secs),
                ("oneshot_qps".to_string(), QUERIES as f64 / oneshot_secs),
                ("warm_qps".to_string(), warm_qps),
                ("cold_speedup".to_string(), oneshot_secs / cold_secs),
                ("warm_speedup".to_string(), oneshot_secs / warm_secs),
                ("distinct_pairs".to_string(), DISTINCT_PAIRS as f64),
            ],
        };
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>10.1} {:>10.1} {:>7.1}x {:>7.1}x",
            row.name,
            fmt_secs(oneshot_secs),
            fmt_secs(cold_secs),
            fmt_secs(warm_secs),
            cold_qps,
            warm_qps,
            oneshot_secs / cold_secs,
            oneshot_secs / warm_secs,
        );
        report.rows.push(row);
    }
    maybe_dump_json(&args, &report);
}

/// Answer the workload in service-sized batches, preserving query order.
fn run_chunks(
    engine: &Engine,
    id: netrel_engine::GraphId,
    queries: &[ReliabilityQuery],
) -> Vec<QueryAnswer> {
    let mut answers = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(BATCH) {
        for a in engine.run_batch(id, chunk).expect("graph registered") {
            answers.push(a.expect("valid query"));
        }
    }
    answers
}
