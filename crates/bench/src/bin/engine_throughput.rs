//! Engine throughput baseline: cold vs. warm batch queries/sec against
//! independent one-shot `pro_reliability` calls, on the Tokyo-like (road,
//! tree-like) and DBLP-like (coauthor, dense-core) generators.
//!
//! Writes `BENCH_engine.json` (override with `--json=`) so future PRs have a
//! perf trajectory to compare against. `--scale=` sizes the graphs.

use netrel_bench::{fmt_secs, maybe_dump_json, overlapping_terminal_pairs, parse_args, time};
use netrel_core::{pro_reliability, ProConfig};
use netrel_datasets::Dataset;
use netrel_engine::{Engine, EngineConfig, QueryAnswer, ReliabilityQuery};
use netrel_s2bdd::S2BddConfig;
use serde::Serialize;

const QUERIES: usize = 100;
const DISTINCT_PAIRS: usize = 10;
const BATCH: usize = 10;

#[derive(Clone, Debug, Serialize)]
struct Row {
    dataset: String,
    vertices: usize,
    edges: usize,
    queries: usize,
    distinct_pairs: usize,
    oneshot_secs: f64,
    cold_secs: f64,
    warm_secs: f64,
    oneshot_qps: f64,
    cold_qps: f64,
    warm_qps: f64,
    cold_speedup: f64,
    warm_speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn main() {
    let mut args = parse_args();
    if args.json.is_none() {
        args.json = Some("BENCH_engine.json".into());
    }
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            max_width: 32,
            samples: 2_000,
            seed: args.seed,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut rows = Vec::new();
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "dataset", "oneshot", "cold", "warm", "cold q/s", "warm q/s", "cold x", "warm x"
    );
    for ds in [Dataset::Tokyo, Dataset::Dblp1] {
        let g = ds.generate(args.scale, args.seed);
        let pairs = overlapping_terminal_pairs(&g, DISTINCT_PAIRS, args.seed);
        let queries: Vec<ReliabilityQuery> = (0..QUERIES)
            .map(|i| ReliabilityQuery::with_config(pairs[i % pairs.len()].clone(), cfg))
            .collect();

        // Independent one-shot calls: full preprocessing per call, no cache.
        let (solo, oneshot_secs) = time(|| {
            queries
                .iter()
                .map(|q| pro_reliability(&g, &q.terminals, q.config).unwrap())
                .collect::<Vec<_>>()
        });

        // Cold engine: index build + batched answering in arrival order.
        let mut engine = Engine::new(EngineConfig::sequential());
        let id = engine.register(ds.spec().abbr, g.clone());
        let (cold, cold_secs) = time(|| run_chunks(&engine, id, &queries));

        // Warm engine: the same workload against the now-populated cache.
        let (warm, warm_secs) = time(|| run_chunks(&engine, id, &queries));

        for ((s, c), w) in solo.iter().zip(&cold).zip(&warm) {
            assert_eq!(s.estimate.to_bits(), c.estimate.to_bits(), "cold mismatch");
            assert_eq!(s.estimate.to_bits(), w.estimate.to_bits(), "warm mismatch");
        }

        let stats = engine.cache_stats();
        let row = Row {
            dataset: ds.spec().abbr.to_string(),
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            queries: QUERIES,
            distinct_pairs: DISTINCT_PAIRS,
            oneshot_secs,
            cold_secs,
            warm_secs,
            oneshot_qps: QUERIES as f64 / oneshot_secs,
            cold_qps: QUERIES as f64 / cold_secs,
            warm_qps: QUERIES as f64 / warm_secs,
            cold_speedup: oneshot_secs / cold_secs,
            warm_speedup: oneshot_secs / warm_secs,
            cache_hits: stats.hits,
            cache_misses: stats.misses,
        };
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>10.1} {:>10.1} {:>7.1}x {:>7.1}x",
            row.dataset,
            fmt_secs(row.oneshot_secs),
            fmt_secs(row.cold_secs),
            fmt_secs(row.warm_secs),
            row.cold_qps,
            row.warm_qps,
            row.cold_speedup,
            row.warm_speedup,
        );
        rows.push(row);
    }
    maybe_dump_json(&args, &rows);
}

/// Answer the workload in service-sized batches, preserving query order.
fn run_chunks(
    engine: &Engine,
    id: netrel_engine::GraphId,
    queries: &[ReliabilityQuery],
) -> Vec<QueryAnswer> {
    let mut answers = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(BATCH) {
        for a in engine.run_batch(id, chunk).expect("graph registered") {
            answers.push(a.expect("valid query"));
        }
    }
    answers
}
