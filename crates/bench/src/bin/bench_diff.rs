//! `bench-diff` — compare two `BENCH_*.json` reports under a tolerance band.
//!
//! ```text
//! $ bench-diff BENCH_engine.json fresh.json --tol=0.5
//! ```
//!
//! Deterministic fields (row set, workload shape, planner route counts,
//! cache counters) must match exactly; timing fields (`secs`, `qps`, and
//! the per-row extras) pass within the relative tolerance (default ±50%,
//! generous because committed baselines travel across machines). Exits 0
//! when the reports agree, 1 with one violation per line when they do not —
//! the CI perf gate is this binary plus a regenerated report.

use netrel_obs::report::diff_reports;
use netrel_obs::BenchReport;

fn load(path: &str) -> BenchReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse report {path}: {e:?}"))
}

fn main() {
    let mut paths = Vec::new();
    let mut tol = 0.5f64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--tol=") {
            tol = v.parse().expect("--tol takes a float (relative tolerance)");
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: bench-diff <baseline.json> <fresh.json> [--tol=0.5]");
            return;
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench-diff <baseline.json> <fresh.json> [--tol=0.5]");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);

    let violations = diff_reports(&baseline, &fresh, tol);
    if violations.is_empty() {
        println!(
            "ok: {} rows within ±{:.0}% of {baseline_path}",
            fresh.rows.len(),
            tol * 100.0
        );
        return;
    }
    eprintln!(
        "{} violation(s) against {baseline_path} (tolerance ±{:.0}%):",
        violations.len(),
        tol * 100.0
    );
    for v in &violations {
        eprintln!(
            "  {}.{}: baseline {} vs fresh {} (ratio {:.3})",
            v.row, v.field, v.baseline, v.fresh, v.ratio
        );
    }
    std::process::exit(1);
}
