//! Table 4 — accuracy on the Am-Rv dataset: Pro computes the *exact*
//! reliability (variance = error rate = 0) while flat sampling degrades
//! catastrophically at k = 20 (error rate → 1).

use netrel_bench::accuracy::{print_rows, run_accuracy, AccuracyConfig};
use netrel_bench::{maybe_dump_json, parse_args};
use netrel_datasets::Dataset;

fn main() {
    let args = parse_args();
    let cfg = AccuracyConfig::for_args(&args);
    let rows = run_accuracy(Dataset::AmRv, &[5, 10, 20], &args, cfg);
    print_rows("Table 4: accuracy on Am-Rv", &rows, cfg);
    println!(
        "\nExpected shape (paper): Pro rows all zero (exact); Sampling error rate\n\
         approaches 1.0 at k = 20 because the tiny reliabilities are never hit."
    );
    maybe_dump_json(&args, &rows);
}
