//! Adaptive-planner baseline: dense-graph batches the exact path cannot
//! finish under the node cap, completed through the planner with
//! CI-carrying answers, plus the planner's overhead on sparse workloads
//! where it must pick the exact route.
//!
//! Writes `BENCH_planner.json` (override with `--json=`) in the unified
//! [`netrel_obs::BenchReport`] schema, with route and cache counters taken
//! from each workload engine's metrics snapshot, so future PRs can compare
//! runs with `bench-diff`. An answer counts as **completed** when it is
//! exact or its 95% CI is narrower than 0.5 — the capped exact-only path on
//! a dense graph returns a `[~0, ~1]` envelope and fails that bar.

use netrel_bench::{fmt_secs, maybe_dump_json, parse_args, time};
use netrel_core::SemanticsSpec;
use netrel_datasets::{clique, Dataset};
use netrel_engine::{Engine, EngineConfig, PlanBudget, PlannedQuery, Recorder, ReliabilityQuery};
use netrel_obs::{BenchReport, BenchRow, CacheCounts, RouteCounts};
use netrel_s2bdd::S2BddConfig;
use netrel_ugraph::UncertainGraph;

fn informative(exact: bool, ci_width: f64) -> bool {
    exact || ci_width < 0.5
}

fn main() {
    let mut args = parse_args();
    if args.json.is_none() {
        args.json = Some("BENCH_planner.json".into());
    }
    let budget = PlanBudget::default();

    let tokyo = Dataset::Tokyo.generate(args.scale, args.seed);
    let tokyo_pairs = netrel_bench::overlapping_terminal_pairs(&tokyo, 10, args.seed);
    // Four-terminal "city block" sets: the generator lays vertices out
    // row-major on a ~√n × √n grid, so `v`, `v+1`, `v+side`, `v+side+1`
    // form a unit square of nearby (hence non-vanishing) terminals.
    let side = (tokyo.num_vertices() as f64).sqrt() as usize;
    let tokyo_quads: Vec<Vec<usize>> = (0..10)
        .map(|i| {
            let v = i * (side + 1);
            vec![v, v + 1, v + side, v + side + 1]
        })
        .collect();
    let dense_pairs: Vec<Vec<usize>> = (0..20).map(|i| vec![i % 20, 30 + (i * 7) % 25]).collect();
    let workloads: Vec<(String, UncertainGraph, SemanticsSpec, Vec<Vec<usize>>)> = vec![
        (
            "clique55-dense".into(),
            clique(55),
            SemanticsSpec::KTerminal,
            dense_pairs.clone(),
        ),
        // Same dense pairs under the hop bound: nothing is prunable at
        // d = 2 on a clique, so every part exceeds the exact-enumeration
        // limit and the planner must route to hop-bounded sampling.
        (
            "clique55-dhop".into(),
            clique(55),
            SemanticsSpec::DHop { d: 2 },
            dense_pairs,
        ),
        (
            "tokyo-sparse".into(),
            tokyo.clone(),
            SemanticsSpec::KTerminal,
            tokyo_pairs,
        ),
        (
            "tokyo-kterminal".into(),
            tokyo,
            SemanticsSpec::KTerminal,
            tokyo_quads,
        ),
    ];

    let mut report = BenchReport::new("planner_throughput", args.scale, args.seed);
    println!(
        "{:<16} {:>7} {:>9} {:>9} {:>7} {:>7} {:>9} {:>22}",
        "workload", "queries", "exact", "planner", "ex done", "pl done", "qps", "routes (e/b/s/n)"
    );
    for (workload, g, spec, terminal_sets) in workloads {
        let n_queries = terminal_sets.len();
        let mut engine = Engine::with_recorder(EngineConfig::sequential(), Recorder::enabled());
        let id = engine.register(workload.clone(), g.clone());

        // Exact-only under the same node cap the planner gets. The classic
        // path bumps no route counters, so the snapshot below isolates the
        // planner run's routing.
        let exact_queries: Vec<ReliabilityQuery> = terminal_sets
            .iter()
            .map(|t| {
                ReliabilityQuery::with_semantics(
                    spec,
                    t.clone(),
                    netrel_core::ProConfig {
                        s2bdd: S2BddConfig {
                            node_cap: budget.node_budget,
                            seed: args.seed,
                            ..S2BddConfig::exact()
                        },
                        ..Default::default()
                    },
                )
            })
            .collect();
        let (exact_answers, exact_only_secs) =
            time(|| engine.run_batch(id, &exact_queries).unwrap());
        let exact_only_completed = exact_answers
            .iter()
            .filter(|a| {
                let a = a.as_ref().unwrap();
                informative(a.exact, a.upper_bound - a.lower_bound)
            })
            .count();

        // The planner, fresh cache, same budget. Cache counters for the row
        // are deltas across the planner run alone, so the exact-only phase
        // cannot skew them.
        engine.clear_cache();
        let before = engine.metrics_snapshot().expect("recorder is enabled");
        let planned: Vec<PlannedQuery> = terminal_sets
            .iter()
            .map(|t| {
                PlannedQuery::with_semantics(
                    spec,
                    t.clone(),
                    netrel_core::ProConfig::default(),
                    budget,
                )
            })
            .collect();
        let (answers, planner_secs) = time(|| engine.run_planned_batch(id, &planned).unwrap());
        let after = engine.metrics_snapshot().expect("recorder is enabled");

        let (mut done, mut ci_sum) = (0usize, 0.0f64);
        for a in &answers {
            let a = a.as_ref().unwrap();
            if informative(a.exact, a.ci.width()) {
                done += 1;
            }
            ci_sum += a.ci.width();
        }
        let routes = RouteCounts {
            exact: after.routes.exact - before.routes.exact,
            bounded: after.routes.bounded - before.routes.bounded,
            sampling: after.routes.sampling - before.routes.sampling,
            enumeration: after.routes.enumeration - before.routes.enumeration,
        };

        let row = BenchRow {
            name: workload.clone(),
            semantics: spec.name().into(),
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
            queries: n_queries as u64,
            secs: planner_secs,
            qps: n_queries as f64 / planner_secs,
            routes,
            cache: CacheCounts {
                hits: after.cache_hits - before.cache_hits,
                misses: after.cache_misses - before.cache_misses,
                evictions: after.cache_evictions - before.cache_evictions,
                entries: engine.cache_stats().entries as u64,
            },
            extra: vec![
                ("exact_only_secs".to_string(), exact_only_secs),
                (
                    "exact_only_completed".to_string(),
                    exact_only_completed as f64,
                ),
                ("planner_completed".to_string(), done as f64),
                ("mean_ci_width".to_string(), ci_sum / n_queries as f64),
            ],
        };
        println!(
            "{:<16} {:>7} {:>9} {:>9} {:>4}/{:<2} {:>4}/{:<2} {:>9.1} {:>8}/{}/{}/{}",
            row.name,
            row.queries,
            fmt_secs(exact_only_secs),
            fmt_secs(planner_secs),
            exact_only_completed,
            row.queries,
            done,
            row.queries,
            row.qps,
            row.routes.exact,
            row.routes.bounded,
            row.routes.sampling,
            row.routes.enumeration,
        );
        assert_eq!(done, n_queries, "the planner must complete every query");
        report.rows.push(row);
    }
    maybe_dump_json(&args, &report);
}
