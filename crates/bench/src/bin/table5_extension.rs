//! Table 5 — effect of the extension technique: preprocessing time and the
//! reduced graph size (largest decomposed part / original edges) for every
//! dataset.

use netrel_bench::{fmt_secs, maybe_dump_json, parse_args, random_terminals, time};
use netrel_datasets::Dataset;
use netrel_preprocess::{preprocess, PreprocessConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    process_secs: f64,
    reduced_ratio: f64,
    parts: usize,
}

fn main() {
    let args = parse_args();
    let k = 10usize;
    println!(
        "Table 5: extension technique (k = {k}, scale = {})\n",
        args.scale
    );
    println!(
        "{:<8} {:>14} {:>20} {:>8}",
        "dataset", "process time", "reduced graph size", "parts"
    );
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let scale = if ds.is_large() { args.scale } else { 1.0 };
        let g = ds.generate(scale, args.seed);
        let mut secs = 0.0;
        let mut ratio = 0.0;
        let mut parts = 0usize;
        for search in 0..args.searches {
            let kk = k.min(g.num_vertices() / 2).max(2);
            let t = random_terminals(&g, kk, args.seed ^ (search as u64) << 12);
            let (pre, dt) = time(|| preprocess(&g, &t, PreprocessConfig::default()).unwrap());
            secs += dt;
            ratio += pre.stats.reduced_ratio;
            parts = parts.max(pre.stats.num_parts);
        }
        let n = args.searches as f64;
        let (secs, ratio) = (secs / n, ratio / n);
        println!(
            "{:<8} {:>14} {:>20.3} {:>8}",
            ds.to_string(),
            fmt_secs(secs),
            ratio,
            parts
        );
        rows.push(Row {
            dataset: ds.to_string(),
            process_secs: secs,
            reduced_ratio: ratio,
            parts,
        });
    }
    println!(
        "\nExpected shape (paper Table 5): road networks shrink hardest (Tokyo\n\
         0.43, NYC 0.28), dense graphs barely (DBLP1 0.95, Hit-d 0.98), Am-Rv\n\
         collapses (0.12); preprocessing time is negligible vs solving."
    );
    maybe_dump_json(&args, &rows);
}
