//! `netrel-testrunner`: the unified throughput runner.
//!
//! Folds the former `engine_throughput` and `planner_throughput` bins into
//! one entry point that emits a single [`netrel_obs::BenchReport`]
//! (`netrel-bench-report/v1`) per run:
//!
//! * `--suite=engine`  — classic-path cold/warm throughput
//!   (default output `BENCH_engine.json`),
//! * `--suite=planner` — adaptive-planner routing and completion
//!   (default output `BENCH_planner.json`),
//! * `--suite=mutation` — incremental updates vs. full rebuild and
//!   what-if throughput (default output `BENCH_mutation.json`),
//! * `--suite=all`     — every suite merged into one report (the default;
//!   default output `BENCH_testrunner.json`).
//!
//! Row names are disjoint across suites, so the merged report diffs
//! per-row with `bench-diff` exactly like the per-suite ones.

use netrel_bench::throughput::{engine_suite, mutation_suite, planner_suite};
use netrel_bench::{maybe_dump_json, parse_args};
use netrel_obs::BenchReport;

fn main() {
    let mut args = parse_args();
    let suite = args.suite.clone().unwrap_or_else(|| "all".to_string());
    let report: BenchReport = match suite.as_str() {
        "engine" => {
            if args.json.is_none() {
                args.json = Some("BENCH_engine.json".into());
            }
            engine_suite(&args)
        }
        "planner" => {
            if args.json.is_none() {
                args.json = Some("BENCH_planner.json".into());
            }
            planner_suite(&args)
        }
        "mutation" => {
            if args.json.is_none() {
                args.json = Some("BENCH_mutation.json".into());
            }
            mutation_suite(&args)
        }
        "all" => {
            if args.json.is_none() {
                args.json = Some("BENCH_testrunner.json".into());
            }
            let mut merged = engine_suite(&args);
            merged.bench = "netrel-testrunner".to_string();
            merged.rows.extend(planner_suite(&args).rows);
            merged.rows.extend(mutation_suite(&args).rows);
            merged
        }
        other => {
            eprintln!("unknown --suite={other:?}; expected engine, planner, mutation, or all");
            std::process::exit(2);
        }
    };
    maybe_dump_json(&args, &report);
}
