//! Table 2 — dataset statistics: paper-reported values vs. the graphs this
//! reproduction actually instantiates (at the chosen `--scale`).

use netrel_bench::{maybe_dump_json, parse_args};
use netrel_datasets::Dataset;
use netrel_ugraph::GraphStats;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    abbr: &'static str,
    kind: &'static str,
    paper_vertices: usize,
    paper_edges: usize,
    paper_avg_deg: f64,
    paper_avg_prob: f64,
    vertices: usize,
    edges: usize,
    avg_deg: f64,
    avg_prob: f64,
}

fn main() {
    let args = parse_args();
    println!(
        "Table 2: datasets (scale = {}, seed = {})\n",
        args.scale, args.seed
    );
    println!(
        "{:<8} {:<13} | {:>9} {:>9} {:>8} {:>9} | {:>9} {:>9} {:>8} {:>9}",
        "Name", "Type", "paper|V|", "paper|E|", "p.deg", "p.prob", "|V|", "|E|", "deg", "prob"
    );
    println!("{}", "-".repeat(108));
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let spec = ds.spec();
        let scale = if ds.is_large() { args.scale } else { 1.0 };
        let g = ds.generate(scale, args.seed);
        let s = GraphStats::compute(&g);
        println!(
            "{:<8} {:<13} | {:>9} {:>9} {:>8.2} {:>9.3} | {:>9} {:>9} {:>8.2} {:>9.3}",
            spec.abbr,
            spec.kind,
            spec.vertices,
            spec.edges,
            spec.avg_degree,
            spec.avg_prob,
            s.vertices,
            s.edges,
            s.avg_degree,
            s.avg_prob
        );
        rows.push(Row {
            abbr: spec.abbr,
            kind: spec.kind,
            paper_vertices: spec.vertices,
            paper_edges: spec.edges,
            paper_avg_deg: spec.avg_degree,
            paper_avg_prob: spec.avg_prob,
            vertices: s.vertices,
            edges: s.edges,
            avg_deg: s.avg_degree,
            avg_prob: s.avg_prob,
        });
    }
    println!(
        "\nLarge datasets are synthetic stand-ins scaled by {}; run with --full for\n\
         paper-size graphs. Small datasets (Karate, Am-Rv) are full size always.",
        args.scale
    );
    maybe_dump_json(&args, &rows);
}
