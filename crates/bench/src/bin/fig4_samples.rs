//! Figure 4 — effect of the number of samples: (a) Pro(MC) response time as
//! a fraction of Sampling(MC)'s, and (b) the reduced sample count s′ as a
//! fraction of s, for s ∈ {100, 1K, 10K, 100K} (…1M with `--full`; the
//! paper's 100M point exists but only moves the curves further down).

use netrel_bench::{maybe_dump_json, parse_args, random_terminals, time};
use netrel_core::prelude::*;
use netrel_datasets::Dataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    samples: usize,
    time_ratio: f64,
    sample_ratio: f64,
}

fn main() {
    let args = parse_args();
    let k = 10usize;
    // Width scaled with the datasets, as in fig3_efficiency.
    let w = if args.full { 10_000 } else { 1_000 };
    let sample_counts: &[usize] = if args.full {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    println!(
        "Figure 4: effect of sample count (k = {k}, w = {w}, scale = {})\n",
        args.scale
    );
    println!(
        "{:<8} {:>10} {:>18} {:>18}",
        "dataset", "s", "time Pro/Sampling", "samples s'/s"
    );
    let mut rows = Vec::new();
    for ds in Dataset::LARGE {
        let g = ds.generate(args.scale, args.seed);
        for &s in sample_counts {
            let mut time_ratio = 0.0;
            let mut sample_ratio = 0.0;
            for search in 0..args.searches {
                let t = random_terminals(&g, k, args.seed ^ ((search as u64) << 16) ^ s as u64);
                let cfg = ProConfig {
                    s2bdd: S2BddConfig {
                        samples: s,
                        max_width: w,
                        seed: args.seed,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let (pro, pro_t) = time(|| pro_reliability(&g, &t, cfg).unwrap());
                let (_, samp_t) = time(|| {
                    sample_reliability(
                        &g,
                        &t,
                        SamplingConfig {
                            samples: s,
                            seed: args.seed,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                });
                time_ratio += pro_t / samp_t;
                // s'/s aggregated over parts, weighted by their budget.
                let (sp, stot) = pro.parts.iter().fold((0usize, 0usize), |(a, b), p| {
                    (a + p.s_prime_final, b + p.samples_requested)
                });
                sample_ratio += if stot == 0 {
                    0.0
                } else {
                    sp as f64 / stot as f64
                };
            }
            let n = args.searches as f64;
            let (time_ratio, sample_ratio) = (time_ratio / n, sample_ratio / n);
            println!(
                "{:<8} {:>10} {:>18.3} {:>18.3}",
                ds.to_string(),
                s,
                time_ratio,
                sample_ratio
            );
            rows.push(Row {
                dataset: ds.to_string(),
                samples: s,
                time_ratio,
                sample_ratio,
            });
        }
        println!();
    }
    println!(
        "Expected shape (paper Fig. 4): both ratios fall as s grows — the bounds\n\
         cost is amortized, so the reduction pays off more at high accuracy."
    );
    maybe_dump_json(&args, &rows);
}
