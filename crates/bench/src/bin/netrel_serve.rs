//! `netrel-serve` — the newline-delimited JSON reliability query service.
//!
//! Reads one JSON request per line on stdin, writes one JSON response per
//! line on stdout (blank lines are skipped; diagnostics go to stderr). The
//! protocol lives in `netrel_engine::service` and is documented with
//! examples in `docs/protocol.md`; this binary is only the stdin/stdout
//! pump, so the same engine can later sit behind any other transport.
//!
//! ```text
//! $ netrel-serve <<'EOF'
//! {"op":"register","name":"g","vertices":4,"edges":[[0,1,0.9],[1,2,0.8],[2,3,0.9],[3,0,0.7]]}
//! {"op":"query","graph":"g","terminals":[0,2]}
//! {"op":"stats"}
//! EOF
//! ```

use netrel_engine::service::Service;
use netrel_engine::{Engine, EngineConfig, Recorder};
use std::io::{self, BufRead, Write};

fn main() {
    let mut workers = 0usize; // 0 = EngineConfig::default() auto-detection
    let mut cache = usize::MAX;
    let mut metrics = true;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--workers=") {
            workers = v.parse().expect("--workers takes an integer");
        } else if let Some(v) = arg.strip_prefix("--cache=") {
            cache = v.parse().expect("--cache takes an integer (entries)");
        } else if arg == "--no-metrics" {
            metrics = false;
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: netrel-serve [--workers=N] [--cache=ENTRIES] [--no-metrics]");
            eprintln!("NDJSON protocol: register/query/batch/stats/metrics, planner budgets,");
            eprintln!("CI fields, and `trace` — documented in docs/protocol.md (netcat/curl");
            eprintln!("examples included) and the `netrel_engine::service` rustdoc.");
            return;
        } else {
            eprintln!("warning: unknown argument {arg:?} ignored");
        }
    }
    let mut cfg = EngineConfig::default();
    if workers > 0 {
        cfg.workers = workers;
    }
    if cache != usize::MAX {
        cfg.plan_cache_capacity = cache;
    }

    let recorder = if metrics {
        Recorder::enabled()
    } else {
        Recorder::noop()
    };
    let mut service = Service::new(Engine::with_recorder(cfg, recorder));
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.expect("failed to read stdin");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = service.handle_line(trimmed);
        writeln!(out, "{response}").expect("failed to write stdout");
        out.flush().expect("failed to flush stdout");
    }
}
