//! `netrel-serve` — the newline-delimited JSON reliability query service.
//!
//! Reads one JSON request per line on stdin, writes one JSON response per
//! line on stdout (blank lines are skipped; diagnostics go to stderr). The
//! protocol lives in `netrel_engine::service` and is documented with
//! examples in `docs/protocol.md`; this binary is only the stdin/stdout
//! pump, so the same engine can later sit behind any other transport.
//!
//! ```text
//! $ netrel-serve <<'EOF'
//! {"op":"register","name":"g","vertices":4,"edges":[[0,1,0.9],[1,2,0.8],[2,3,0.9],[3,0,0.7]]}
//! {"op":"query","graph":"g","terminals":[0,2]}
//! {"op":"stats"}
//! EOF
//! ```

use netrel_engine::service::Service;
use netrel_engine::{Engine, EngineConfig, Recorder};
use std::io::{self, BufRead, Write};
use std::process::ExitCode;

/// Parse a numeric flag value, or exit with a usage error. A typo on the
/// command line is an operator mistake, not a panic.
fn parse_flag(value: &str, what: &str) -> Result<usize, ExitCode> {
    value.parse().map_err(|_| {
        eprintln!("netrel-serve: {what} takes an integer, got {value:?} (try --help)");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let mut workers = 0usize; // 0 = EngineConfig::default() auto-detection
    let mut cache = usize::MAX;
    let mut metrics = true;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--workers=") {
            workers = match parse_flag(v, "--workers") {
                Ok(n) => n,
                Err(code) => return code,
            };
        } else if let Some(v) = arg.strip_prefix("--cache=") {
            cache = match parse_flag(v, "--cache") {
                Ok(n) => n,
                Err(code) => return code,
            };
        } else if arg == "--no-metrics" {
            metrics = false;
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: netrel-serve [--workers=N] [--cache=ENTRIES] [--no-metrics]");
            eprintln!("NDJSON protocol: register/query/batch/mutate/whatif/maximize/stats/");
            eprintln!("metrics, planner budgets, CI fields, and `trace` — documented in");
            eprintln!("docs/protocol.md (netcat/curl examples included) and the");
            eprintln!("`netrel_engine::service` rustdoc.");
            return ExitCode::SUCCESS;
        } else {
            eprintln!("warning: unknown argument {arg:?} ignored");
        }
    }
    let mut cfg = EngineConfig::default();
    if workers > 0 {
        cfg.workers = workers;
    }
    if cache != usize::MAX {
        cfg.plan_cache_capacity = cache;
    }

    let recorder = if metrics {
        Recorder::enabled()
    } else {
        Recorder::noop()
    };
    let mut service = Service::new(Engine::with_recorder(cfg, recorder));
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("netrel-serve: stdin read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = service.handle_line(trimmed);
        // A closed pipe (client went away) is a normal shutdown, not a crash.
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            return ExitCode::SUCCESS;
        }
    }
    ExitCode::SUCCESS
}
