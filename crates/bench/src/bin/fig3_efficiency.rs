//! Figure 3 — efficiency overview: response time of Pro(MC), Pro(MC) w/o
//! ext, Sampling(MC), and the materialized-BDD baseline on the five large
//! datasets for k ∈ {5, 10, 20} (s = 10 000, w = 10 000, averaged over
//! `--searches` random terminal draws).

use netrel_bdd::{FullBdd, FullBddConfig};
use netrel_bench::{fmt_secs, maybe_dump_json, parse_args, random_terminals, time};
use netrel_core::prelude::*;
use netrel_datasets::Dataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: usize,
    dataset: String,
    pro_mc_secs: f64,
    pro_noext_secs: f64,
    sampling_mc_secs: f64,
    bdd: String,
    speedup_vs_sampling: f64,
}

fn main() {
    let args = parse_args();
    let s = 10_000usize;
    // The paper's w = 10 000 was chosen for ~100k-edge graphs; keep the
    // width-to-graph ratio comparable on scaled-down stand-ins.
    let w = if args.full { 10_000 } else { 1_000 };
    println!(
        "Figure 3: efficiency (s = {s}, w = {w}, scale = {}, {} searches)\n",
        args.scale, args.searches
    );
    let mut rows = Vec::new();
    for k in [5usize, 10, 20] {
        println!("--- k = {k} ---");
        println!(
            "{:<8} {:>12} {:>16} {:>14} {:>10} {:>10}",
            "dataset", "Pro(MC)", "Pro(MC) w/o ext", "Sampling(MC)", "BDD", "speedup"
        );
        for ds in Dataset::LARGE {
            let g = ds.generate(args.scale, args.seed);
            let mut pro_t = 0.0;
            let mut noext_t = 0.0;
            let mut samp_t = 0.0;
            for search in 0..args.searches {
                let t = random_terminals(&g, k, args.seed ^ ((search as u64) << 8) ^ k as u64);
                let pro_cfg = ProConfig {
                    s2bdd: S2BddConfig {
                        samples: s,
                        max_width: w,
                        seed: args.seed,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let (_, dt) = time(|| pro_reliability(&g, &t, pro_cfg).unwrap());
                pro_t += dt;
                let noext_cfg = ProConfig {
                    s2bdd: pro_cfg.s2bdd,
                    preprocess: PreprocessConfig::disabled(),
                    ..Default::default()
                };
                let (_, dt) = time(|| pro_reliability(&g, &t, noext_cfg).unwrap());
                noext_t += dt;
                let (_, dt) = time(|| {
                    sample_reliability(
                        &g,
                        &t,
                        SamplingConfig {
                            samples: s,
                            seed: args.seed,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                });
                samp_t += dt;
            }
            let n = args.searches as f64;
            let (pro_t, noext_t, samp_t) = (pro_t / n, noext_t / n, samp_t / n);

            // BDD baseline: one attempt with a node cap standing in for the
            // paper's 256 GB exhaustion — it DNFs on every large dataset.
            let t = random_terminals(&g, k, args.seed);
            let (bdd_out, bdd_t) = time(|| {
                FullBdd::build(
                    &g,
                    &t,
                    FullBddConfig {
                        node_limit: 4_000_000,
                        ..Default::default()
                    },
                )
            });
            let bdd = match bdd_out {
                Ok(b) => fmt_secs(bdd_t) + &format!(" ({} nodes)", b.node_count),
                Err(_) => "DNF".to_string(),
            };

            println!(
                "{:<8} {:>12} {:>16} {:>14} {:>10} {:>9.1}x",
                ds.to_string(),
                fmt_secs(pro_t),
                fmt_secs(noext_t),
                fmt_secs(samp_t),
                bdd,
                samp_t / pro_t
            );
            rows.push(Row {
                k,
                dataset: ds.to_string(),
                pro_mc_secs: pro_t,
                pro_noext_secs: noext_t,
                sampling_mc_secs: samp_t,
                bdd,
                speedup_vs_sampling: samp_t / pro_t,
            });
        }
        println!();
    }
    println!(
        "Expected shape (paper): Pro(MC) fastest everywhere, largest wins on the\n\
         road networks (Tokyo/NYC), smallest on Hit-d; BDD always DNF."
    );
    maybe_dump_json(&args, &rows);
}
