//! The two throughput suites behind the `netrel-testrunner` bin.
//!
//! * [`engine_suite`] — classic-path cold/warm batch throughput against
//!   independent one-shot `pro_reliability` calls (the former
//!   `engine_throughput` bin; baseline `BENCH_engine.json`).
//! * [`planner_suite`] — adaptive-planner completion and routing on dense
//!   batches the capped exact path cannot finish (the former
//!   `planner_throughput` bin; baseline `BENCH_planner.json`).
//! * [`mutation_suite`] — incremental one-edge updates + re-query against
//!   full rebuild + cold query, plus what-if throughput (baseline
//!   `BENCH_mutation.json`).
//!
//! Both emit rows in the unified [`netrel_obs::BenchReport`] schema so the
//! committed `BENCH_*.json` baselines stay machine-comparable with
//! `bench-diff`.

use crate::{fmt_secs, overlapping_terminal_pairs, time, RunArgs};
use netrel_core::{pro_reliability, ProConfig, SemanticsSpec};
use netrel_datasets::{clique, Dataset};
use netrel_engine::{
    Engine, EngineConfig, Mutation, PlanBudget, PlannedQuery, QueryAnswer, Recorder,
    ReliabilityQuery,
};
use netrel_obs::{BenchReport, BenchRow, CacheCounts, RouteCounts};
use netrel_s2bdd::S2BddConfig;
use netrel_ugraph::UncertainGraph;

const ENGINE_QUERIES: usize = 100;
const ENGINE_DISTINCT_PAIRS: usize = 10;
const ENGINE_BATCH: usize = 10;

/// Classic-path throughput: cold vs. warm batch queries/sec against
/// independent one-shot `pro_reliability` calls, on the Tokyo-like (road,
/// tree-like) and DBLP-like (coauthor, dense-core) generators. Asserts
/// bit-identity between one-shot, cold, and warm answers.
pub fn engine_suite(args: &RunArgs) -> BenchReport {
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            max_width: 32,
            samples: 2_000,
            seed: args.seed,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut report = BenchReport::new("netrel-testrunner/engine", args.scale, args.seed);
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "dataset", "oneshot", "cold", "warm", "cold q/s", "warm q/s", "cold x", "warm x"
    );
    for ds in [Dataset::Tokyo, Dataset::Dblp1] {
        let g = ds.generate(args.scale, args.seed);
        let pairs = overlapping_terminal_pairs(&g, ENGINE_DISTINCT_PAIRS, args.seed);
        let queries: Vec<ReliabilityQuery> = (0..ENGINE_QUERIES)
            .map(|i| ReliabilityQuery::with_config(pairs[i % pairs.len()].clone(), cfg))
            .collect();

        // Independent one-shot calls: full preprocessing per call, no cache.
        let (solo, oneshot_secs) = time(|| {
            queries
                .iter()
                .map(|q| pro_reliability(&g, &q.terminals, q.config).unwrap())
                .collect::<Vec<_>>()
        });

        // Cold engine: index build + batched answering in arrival order.
        // The live recorder demonstrates (and regression-guards) that the
        // instrumented hot path keeps its throughput.
        let mut engine = Engine::with_recorder(EngineConfig::sequential(), Recorder::enabled());
        let id = engine.register(ds.spec().abbr, g.clone());
        let (cold, cold_secs) = time(|| run_chunks(&engine, id, &queries));

        // Warm engine: the same workload against the now-populated cache.
        let (warm, warm_secs) = time(|| run_chunks(&engine, id, &queries));

        for ((s, c), w) in solo.iter().zip(&cold).zip(&warm) {
            assert_eq!(s.estimate.to_bits(), c.estimate.to_bits(), "cold mismatch");
            assert_eq!(s.estimate.to_bits(), w.estimate.to_bits(), "warm mismatch");
        }

        let snapshot = engine.metrics_snapshot().expect("recorder is enabled");
        let cold_qps = ENGINE_QUERIES as f64 / cold_secs;
        let warm_qps = ENGINE_QUERIES as f64 / warm_secs;
        let row = BenchRow {
            name: ds.spec().abbr.to_string(),
            semantics: "k-terminal".to_string(),
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
            queries: ENGINE_QUERIES as u64,
            secs: cold_secs,
            qps: cold_qps,
            // The classic path routes nothing through the planner.
            routes: RouteCounts::default(),
            cache: CacheCounts {
                hits: snapshot.cache_hits,
                misses: snapshot.cache_misses,
                evictions: snapshot.cache_evictions,
                entries: engine.cache_stats().entries as u64,
            },
            extra: vec![
                ("oneshot_secs".to_string(), oneshot_secs),
                ("warm_secs".to_string(), warm_secs),
                (
                    "oneshot_qps".to_string(),
                    ENGINE_QUERIES as f64 / oneshot_secs,
                ),
                ("warm_qps".to_string(), warm_qps),
                ("cold_speedup".to_string(), oneshot_secs / cold_secs),
                ("warm_speedup".to_string(), oneshot_secs / warm_secs),
                ("distinct_pairs".to_string(), ENGINE_DISTINCT_PAIRS as f64),
            ],
        };
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>10.1} {:>10.1} {:>7.1}x {:>7.1}x",
            row.name,
            fmt_secs(oneshot_secs),
            fmt_secs(cold_secs),
            fmt_secs(warm_secs),
            cold_qps,
            warm_qps,
            oneshot_secs / cold_secs,
            oneshot_secs / warm_secs,
        );
        report.rows.push(row);
    }
    report
}

/// Answer the workload in service-sized batches, preserving query order.
fn run_chunks(
    engine: &Engine,
    id: netrel_engine::GraphId,
    queries: &[ReliabilityQuery],
) -> Vec<QueryAnswer> {
    let mut answers = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(ENGINE_BATCH) {
        for a in engine.run_batch(id, chunk).expect("graph registered") {
            answers.push(a.expect("valid query"));
        }
    }
    answers
}

fn informative(exact: bool, ci_width: f64) -> bool {
    exact || ci_width < 0.5
}

/// Adaptive-planner baseline: dense-graph batches the exact path cannot
/// finish under the node cap, completed through the planner with
/// CI-carrying answers, plus the planner's overhead on sparse workloads
/// where it must pick the exact route. An answer counts as **completed**
/// when it is exact or its 95% CI is narrower than 0.5 — the capped
/// exact-only path on a dense graph returns a `[~0, ~1]` envelope and
/// fails that bar.
pub fn planner_suite(args: &RunArgs) -> BenchReport {
    let budget = PlanBudget::default();

    let tokyo = Dataset::Tokyo.generate(args.scale, args.seed);
    let tokyo_pairs = overlapping_terminal_pairs(&tokyo, 10, args.seed);
    // Four-terminal "city block" sets: the generator lays vertices out
    // row-major on a ~√n × √n grid, so `v`, `v+1`, `v+side`, `v+side+1`
    // form a unit square of nearby (hence non-vanishing) terminals.
    let side = (tokyo.num_vertices() as f64).sqrt() as usize;
    let tokyo_quads: Vec<Vec<usize>> = (0..10)
        .map(|i| {
            let v = i * (side + 1);
            vec![v, v + 1, v + side, v + side + 1]
        })
        .collect();
    let dense_pairs: Vec<Vec<usize>> = (0..20).map(|i| vec![i % 20, 30 + (i * 7) % 25]).collect();
    let workloads: Vec<(String, UncertainGraph, SemanticsSpec, Vec<Vec<usize>>)> = vec![
        (
            "clique55-dense".into(),
            clique(55),
            SemanticsSpec::KTerminal,
            dense_pairs.clone(),
        ),
        // Same dense pairs under the hop bound: nothing is prunable at
        // d = 2 on a clique, so every part exceeds the exact-enumeration
        // limit and the planner must route to hop-bounded sampling.
        (
            "clique55-dhop".into(),
            clique(55),
            SemanticsSpec::DHop { d: 2 },
            dense_pairs.clone(),
        ),
        // A wider clique (3160 edges): stresses the packed kernel's
        // per-edge RNG cost, which dominates once the frontier saturates.
        (
            "clique80-dense".into(),
            clique(80),
            SemanticsSpec::KTerminal,
            dense_pairs,
        ),
        (
            "tokyo-sparse".into(),
            tokyo.clone(),
            SemanticsSpec::KTerminal,
            tokyo_pairs,
        ),
        (
            "tokyo-kterminal".into(),
            tokyo,
            SemanticsSpec::KTerminal,
            tokyo_quads,
        ),
    ];

    let mut report = BenchReport::new("netrel-testrunner/planner", args.scale, args.seed);
    println!(
        "{:<16} {:>7} {:>9} {:>9} {:>7} {:>7} {:>9} {:>22}",
        "workload",
        "queries",
        "exact",
        "planner",
        "ex done",
        "pl done",
        "qps",
        "routes (e/b/s/p/n)"
    );
    for (workload, g, spec, terminal_sets) in workloads {
        let n_queries = terminal_sets.len();
        let mut engine = Engine::with_recorder(EngineConfig::sequential(), Recorder::enabled());
        let id = engine.register(workload.clone(), g.clone());

        // Exact-only under the same node cap the planner gets. The classic
        // path bumps no route counters, so the snapshot below isolates the
        // planner run's routing.
        let exact_queries: Vec<ReliabilityQuery> = terminal_sets
            .iter()
            .map(|t| {
                ReliabilityQuery::with_semantics(
                    spec,
                    t.clone(),
                    ProConfig {
                        s2bdd: S2BddConfig {
                            node_cap: budget.node_budget,
                            seed: args.seed,
                            ..S2BddConfig::exact()
                        },
                        ..Default::default()
                    },
                )
            })
            .collect();
        let (exact_answers, exact_only_secs) =
            time(|| engine.run_batch(id, &exact_queries).unwrap());
        let exact_only_completed = exact_answers
            .iter()
            .filter(|a| {
                let a = a.as_ref().unwrap();
                informative(a.exact, a.upper_bound - a.lower_bound)
            })
            .count();

        // The planner, fresh cache, same budget. Cache counters for the row
        // are deltas across the planner run alone, so the exact-only phase
        // cannot skew them.
        engine.clear_cache();
        let before = engine.metrics_snapshot().expect("recorder is enabled");
        let planned: Vec<PlannedQuery> = terminal_sets
            .iter()
            .map(|t| PlannedQuery::with_semantics(spec, t.clone(), ProConfig::default(), budget))
            .collect();
        let (answers, planner_secs) = time(|| engine.run_planned_batch(id, &planned).unwrap());
        let after = engine.metrics_snapshot().expect("recorder is enabled");

        let (mut done, mut ci_sum) = (0usize, 0.0f64);
        for a in &answers {
            let a = a.as_ref().unwrap();
            if informative(a.exact, a.ci.width()) {
                done += 1;
            }
            ci_sum += a.ci.width();
        }
        let routes = RouteCounts {
            exact: after.routes.exact - before.routes.exact,
            bounded: after.routes.bounded - before.routes.bounded,
            sampling: after.routes.sampling - before.routes.sampling,
            bit_sampling: after.routes.bit_sampling - before.routes.bit_sampling,
            enumeration: after.routes.enumeration - before.routes.enumeration,
        };

        let row = BenchRow {
            name: workload.clone(),
            semantics: spec.name().into(),
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
            queries: n_queries as u64,
            secs: planner_secs,
            qps: n_queries as f64 / planner_secs,
            routes,
            cache: CacheCounts {
                hits: after.cache_hits - before.cache_hits,
                misses: after.cache_misses - before.cache_misses,
                evictions: after.cache_evictions - before.cache_evictions,
                entries: engine.cache_stats().entries as u64,
            },
            extra: vec![
                ("exact_only_secs".to_string(), exact_only_secs),
                (
                    "exact_only_completed".to_string(),
                    exact_only_completed as f64,
                ),
                ("planner_completed".to_string(), done as f64),
                ("mean_ci_width".to_string(), ci_sum / n_queries as f64),
            ],
        };
        println!(
            "{:<16} {:>7} {:>9} {:>9} {:>4}/{:<2} {:>4}/{:<2} {:>9.1} {:>6}/{}/{}/{}/{}",
            row.name,
            row.queries,
            fmt_secs(exact_only_secs),
            fmt_secs(planner_secs),
            exact_only_completed,
            row.queries,
            done,
            row.queries,
            row.qps,
            row.routes.exact,
            row.routes.bounded,
            row.routes.sampling,
            row.routes.bit_sampling,
            row.routes.enumeration,
        );
        assert_eq!(done, n_queries, "the planner must complete every query");
        report.rows.push(row);
    }
    report
}

const MUTATION_ROUNDS: usize = 10;
const WHATIF_ROUNDS: usize = 25;

/// Incremental-maintenance baseline (ISSUE 10's acceptance metric): per
/// workload, `MUTATION_ROUNDS` rounds of one-edge `update_edge_prob`
/// (index patch + scoped invalidation) and warm re-query on a live engine
/// are timed against the same mutation sequence replayed as full rebuilds
/// (fresh engine registration + cold query), asserting bit-identical
/// answers every round. The `update_vs_rebuild` extra is the headline
/// ratio — the mutation op alone against a rebuild round — and must stay
/// under 10% on the largest (tokyo) fixture, because the index patch is
/// local and invalidation only touches keys covering the edge. A what-if
/// loop against the warm committed engine rounds out the row.
pub fn mutation_suite(args: &RunArgs) -> BenchReport {
    let budget = PlanBudget::default();
    let tokyo = Dataset::Tokyo.generate(args.scale, args.seed);
    let tokyo_terminals = overlapping_terminal_pairs(&tokyo, 4, args.seed)[0].clone();
    // Tokyo is the largest fixture (sparse, exact route, many independent
    // parts); clique55 pins the same contract on the bit-sampling route,
    // where every update hits the single whole-graph part.
    let workloads: Vec<(String, UncertainGraph, Vec<usize>)> = vec![
        ("mutation-tokyo".into(), tokyo, tokyo_terminals),
        ("mutation-clique55".into(), clique(55), vec![0, 54]),
    ];

    let mut report = BenchReport::new("netrel-testrunner/mutation", args.scale, args.seed);
    println!(
        "{:<18} {:>7} {:>10} {:>10} {:>10} {:>8} {:>11}",
        "workload", "rounds", "update", "requery", "rebuild", "ratio", "whatif q/s"
    );
    for (workload, g, terminals) in workloads {
        let q = PlannedQuery::with_semantics(
            SemanticsSpec::KTerminal,
            terminals,
            ProConfig::default(),
            budget,
        );
        let mut engine = Engine::with_recorder(EngineConfig::sequential(), Recorder::enabled());
        let id = engine.register(workload.clone(), g.clone());
        let (_, cold_secs) = time(|| engine.run_planned(id, &q).unwrap());

        // A deterministic schedule touching spread-out edges with
        // probabilities strictly inside (0, 1).
        let m = g.num_edges();
        let schedule: Vec<(usize, f64)> = (0..MUTATION_ROUNDS)
            .map(|i| ((i * 37) % m, 0.35 + (i % 50) as f64 * 0.01))
            .collect();

        // Incremental path: commit one update (index patch + scoped
        // invalidation — the op the acceptance ratio is about), then
        // re-answer the query against the surviving warm cache.
        let before = engine.metrics_snapshot().expect("recorder is enabled");
        let mut live = Vec::with_capacity(MUTATION_ROUNDS);
        let (mut update_secs, mut requery_secs) = (0.0f64, 0.0f64);
        for &(e, p) in &schedule {
            let (_, t) = time(|| engine.update_edge_prob(id, e, p).unwrap());
            update_secs += t;
            let (a, t) = time(|| engine.run_planned(id, &q).unwrap());
            requery_secs += t;
            live.push(a);
        }
        let after = engine.metrics_snapshot().expect("recorder is enabled");

        // Rebuild path: the identical mutation prefix applied to a copy,
        // answered by a brand-new engine (index build + cold cache) each
        // round — exactly what a client without the mutation layer pays.
        let mut g2 = g.clone();
        let mut rebuilt = Vec::with_capacity(MUTATION_ROUNDS);
        let (_, rebuild_secs) = time(|| {
            for &(e, p) in &schedule {
                g2.update_edge_prob(e, p).unwrap();
                let mut fresh = Engine::new(EngineConfig::sequential());
                let fid = fresh.register("fresh", g2.clone());
                rebuilt.push(fresh.run_planned(fid, &q).unwrap());
            }
        });
        for (i, (a, b)) in live.iter().zip(&rebuilt).enumerate() {
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "{workload} round {i}: mutated engine diverged from rebuild"
            );
        }

        // What-if throughput against the warm committed engine: hypotheses
        // re-key per evaluation and commit nothing.
        let (_, whatif_secs) = time(|| {
            for i in 0..WHATIF_ROUNDS {
                let hypo = Mutation::UpdateProb {
                    edge: (i * 13) % m,
                    p: 0.5,
                };
                engine.evaluate_with(id, &[hypo], &q).unwrap();
            }
        });

        let update_vs_rebuild = update_secs / rebuild_secs;
        let whatif_qps = WHATIF_ROUNDS as f64 / whatif_secs;
        let live_secs = update_secs + requery_secs;
        let row = BenchRow {
            name: workload.clone(),
            semantics: "k-terminal".to_string(),
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
            queries: MUTATION_ROUNDS as u64,
            secs: live_secs,
            qps: MUTATION_ROUNDS as f64 / live_secs,
            routes: RouteCounts {
                exact: after.routes.exact - before.routes.exact,
                bounded: after.routes.bounded - before.routes.bounded,
                sampling: after.routes.sampling - before.routes.sampling,
                bit_sampling: after.routes.bit_sampling - before.routes.bit_sampling,
                enumeration: after.routes.enumeration - before.routes.enumeration,
            },
            cache: CacheCounts {
                hits: after.cache_hits - before.cache_hits,
                misses: after.cache_misses - before.cache_misses,
                evictions: after.cache_evictions - before.cache_evictions,
                entries: engine.cache_stats().entries as u64,
            },
            extra: vec![
                ("cold_secs".to_string(), cold_secs),
                (
                    "update_secs_per_op".to_string(),
                    update_secs / MUTATION_ROUNDS as f64,
                ),
                (
                    "requery_secs_per_op".to_string(),
                    requery_secs / MUTATION_ROUNDS as f64,
                ),
                (
                    "rebuild_secs_per_op".to_string(),
                    rebuild_secs / MUTATION_ROUNDS as f64,
                ),
                ("update_vs_rebuild".to_string(), update_vs_rebuild),
                ("whatif_qps".to_string(), whatif_qps),
                (
                    "index_patched".to_string(),
                    (after.index_patched - before.index_patched) as f64,
                ),
                (
                    "index_rebuilt".to_string(),
                    (after.index_rebuilt - before.index_rebuilt) as f64,
                ),
                (
                    "invalidated_plans".to_string(),
                    (after.invalidated_plans - before.invalidated_plans) as f64,
                ),
                (
                    "invalidated_worlds".to_string(),
                    (after.invalidated_worlds - before.invalidated_worlds) as f64,
                ),
            ],
        };
        println!(
            "{:<18} {:>7} {:>10} {:>10} {:>10} {:>8.4} {:>11.1}",
            row.name,
            row.queries,
            fmt_secs(update_secs / MUTATION_ROUNDS as f64),
            fmt_secs(requery_secs / MUTATION_ROUNDS as f64),
            fmt_secs(rebuild_secs / MUTATION_ROUNDS as f64),
            update_vs_rebuild,
            whatif_qps,
        );
        report.rows.push(row);
    }
    report
}
