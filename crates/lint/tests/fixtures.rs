//! Rule fixtures: every violation class the pass exists to catch, pinned
//! by exact `(rule, line, col)` so a rule that drifts (stops firing, or
//! fires on the wrong token) fails loudly — plus the non-violations each
//! rule must stay silent on, so the false-positive budget is pinned too.

use netrel_lint::config::Config;
use netrel_lint::outline::Outline;
use netrel_lint::rules::RuleId;
use netrel_lint::structural::{self, Parsed};
use netrel_lint::tokens::File;
use netrel_lint::{run_snippet, Report};
use std::collections::BTreeMap;

/// Run one snippet and project its findings to `(rule, line, col)`.
fn findings(src: &str, rules: &[RuleId]) -> Vec<(String, u32, u32)> {
    project(&run_snippet("fixture.rs", src, rules))
}

fn project(report: &Report) -> Vec<(String, u32, u32)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule.to_string(), f.line, f.col))
        .collect()
}

// ── wall-clock ──────────────────────────────────────────────────────────

#[test]
fn wall_clock_flags_instant_now() {
    let src = "fn t() -> u64 {\n    let t0 = std::time::Instant::now();\n    0\n}\n";
    assert_eq!(
        findings(src, &[RuleId::WallClock]),
        vec![("wall-clock".into(), 2, 25)]
    );
}

#[test]
fn wall_clock_flags_system_time() {
    let src = "fn t() {\n    let _ = std::time::SystemTime::now();\n}\n";
    assert_eq!(
        findings(src, &[RuleId::WallClock]),
        vec![("wall-clock".into(), 2, 24)]
    );
}

#[test]
fn wall_clock_allows_instant_arithmetic() {
    // Holding or differencing an `Instant` someone else read is fine; only
    // the `Instant::now()` read itself is the violation.
    let src = "fn t(i: std::time::Instant) -> u128 {\n    i.elapsed().as_nanos()\n}\n";
    assert_eq!(findings(src, &[RuleId::WallClock]), vec![]);
}

// ── thread-count ────────────────────────────────────────────────────────

#[test]
fn thread_count_flags_available_parallelism() {
    let src = "fn t() -> usize {\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n";
    assert_eq!(
        findings(src, &[RuleId::ThreadCount]),
        vec![("thread-count".into(), 2, 18)]
    );
}

#[test]
fn thread_count_suppression_with_reason_is_counted() {
    let src = "fn t() -> usize {\n    // netrel-lint: allow(thread-count, reason = \"seed-stable partition\")\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n";
    let report = run_snippet("fixture.rs", src, &[RuleId::ThreadCount]);
    assert_eq!(project(&report), vec![]);
    assert_eq!(report.suppressions.len(), 1);
    assert_eq!(report.suppressions[0].rule, "thread-count");
    assert_eq!(report.suppressions[0].reason, "seed-stable partition");
}

// ── hash-iteration ──────────────────────────────────────────────────────

#[test]
fn hash_iteration_flags_iter_on_typed_param() {
    let src = "use std::collections::HashMap;\nfn sum(m: &HashMap<u32, u32>) -> u32 {\n    let mut s = 0;\n    for (_, v) in m.iter() {\n        s += v;\n    }\n    s\n}\n";
    assert_eq!(
        findings(src, &[RuleId::HashIteration]),
        vec![("hash-iteration".into(), 4, 19)]
    );
}

#[test]
fn hash_iteration_flags_for_loop_over_set() {
    let src = "use std::collections::HashSet;\nfn count(s: HashSet<u32>) -> u32 {\n    let mut n = 0;\n    for _x in &s {\n        n += 1;\n    }\n    n\n}\n";
    assert_eq!(
        findings(src, &[RuleId::HashIteration]),
        vec![("hash-iteration".into(), 4, 16)]
    );
}

#[test]
fn hash_iteration_tracks_untyped_let_binding() {
    let src = "fn f() -> u32 {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    let mut t = 0;\n    for k in m.keys() {\n        t += k;\n    }\n    t\n}\n";
    assert_eq!(
        findings(src, &[RuleId::HashIteration]),
        vec![("hash-iteration".into(), 4, 14)]
    );
}

#[test]
fn hash_iteration_allows_lookups_and_membership() {
    // The determinism hazard is iteration order, not hashing: point
    // lookups, inserts, and membership tests stay legal in hot paths.
    let src = "use std::collections::HashMap;\nfn f(m: &mut HashMap<u32, u32>) -> bool {\n    m.insert(1, 2);\n    m.contains_key(&1) && m.get(&2).is_some()\n}\n";
    assert_eq!(findings(src, &[RuleId::HashIteration]), vec![]);
}

#[test]
fn hash_iteration_ignores_btree_iteration() {
    let src = "use std::collections::BTreeMap;\nfn sum(m: &BTreeMap<u32, u32>) -> u32 {\n    m.iter().map(|(_, v)| v).sum()\n}\n";
    assert_eq!(findings(src, &[RuleId::HashIteration]), vec![]);
}

// ── panic-path ──────────────────────────────────────────────────────────

#[test]
fn panic_path_flags_unwrap_and_expect() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
    assert_eq!(
        findings(src, &[RuleId::PanicPath]),
        vec![("panic-path".into(), 2, 7), ("panic-path".into(), 5, 7)]
    );
}

#[test]
fn panic_path_flags_panicking_macros() {
    let src =
        "fn f(n: u32) -> u32 {\n    if n > 3 {\n        panic!(\"too big\");\n    }\n    n\n}\n";
    assert_eq!(
        findings(src, &[RuleId::PanicPath]),
        vec![("panic-path".into(), 3, 9)]
    );
}

#[test]
fn panic_path_flags_unguarded_indexing() {
    let src = "fn f(v: &[u32]) -> u32 {\n    v[0]\n}\n";
    assert_eq!(
        findings(src, &[RuleId::PanicPath]),
        vec![("panic-path".into(), 2, 6)]
    );
}

#[test]
fn panic_path_allows_full_range_and_slice_patterns() {
    // `&t[..]` cannot panic, and slice patterns are the sanctioned
    // replacement for index chains — both must stay silent.
    let src = "fn f(t: &[u32]) -> u32 {\n    match &t[..] {\n        [a, b, _] => a + b,\n        _ => 0,\n    }\n}\n";
    assert_eq!(findings(src, &[RuleId::PanicPath]), vec![]);
}

#[test]
fn panic_path_allows_unwrap_or_else() {
    // Only the exact `unwrap`/`expect` methods panic; the `_or`/`_or_else`
    // family is the fix, not a violation.
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 7).max(x.unwrap_or(0))\n}\n";
    assert_eq!(findings(src, &[RuleId::PanicPath]), vec![]);
}

#[test]
fn panic_path_skips_test_code() {
    let src = "#[test]\nfn t() {\n    let x: Option<u32> = None;\n    x.unwrap();\n    assert_eq!(1, 1);\n}\n";
    assert_eq!(findings(src, &[RuleId::PanicPath]), vec![]);
}

#[test]
fn panic_path_skips_cfg_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n    fn helper(v: &[u32]) -> u32 {\n        v[0] + v[1]\n    }\n}\n";
    assert_eq!(findings(src, &[RuleId::PanicPath]), vec![]);
}

// ── unsafe-comment ──────────────────────────────────────────────────────

#[test]
fn unsafe_comment_flags_undocumented_unsafe() {
    let src = "fn f() -> u8 {\n    let b = [1u8, 2];\n    unsafe { *b.as_ptr() }\n}\n";
    assert_eq!(
        findings(src, &[RuleId::UnsafeComment]),
        vec![("unsafe-comment".into(), 3, 5)]
    );
}

#[test]
fn unsafe_comment_accepts_safety_comment() {
    let src = "fn f() -> u8 {\n    let b = [1u8, 2];\n    // SAFETY: the pointer derives from a live local array.\n    unsafe { *b.as_ptr() }\n}\n";
    assert_eq!(findings(src, &[RuleId::UnsafeComment]), vec![]);
}

#[test]
fn unsafe_comment_applies_in_test_code_too() {
    // Unlike the other rules, the unsafe audit has no test-code exemption.
    let src = "#[test]\nfn t() {\n    unsafe { std::hint::unreachable_unchecked() }\n}\n";
    assert_eq!(
        findings(src, &[RuleId::UnsafeComment]),
        vec![("unsafe-comment".into(), 3, 5)]
    );
}

// ── suppression hygiene ─────────────────────────────────────────────────

#[test]
fn trailing_suppression_silences_own_line() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // netrel-lint: allow(panic-path, reason = \"fixture\")\n}\n";
    let report = run_snippet("fixture.rs", src, &[RuleId::PanicPath]);
    assert_eq!(project(&report), vec![]);
    assert_eq!(report.suppressions.len(), 1);
}

#[test]
fn reasonless_suppression_is_a_finding() {
    let src =
        "fn f(x: Option<u32>) -> u32 {\n    // netrel-lint: allow(panic-path)\n    x.unwrap()\n}\n";
    assert_eq!(
        findings(src, &[RuleId::PanicPath]),
        vec![("bad-suppression".into(), 2, 5)]
    );
}

#[test]
fn unused_suppression_is_a_finding() {
    let src =
        "fn f() -> u32 {\n    // netrel-lint: allow(panic-path, reason = \"stale\")\n    1\n}\n";
    assert_eq!(
        findings(src, &[RuleId::PanicPath]),
        vec![("unused-suppression".into(), 2, 5)]
    );
}

#[test]
fn suppression_only_matches_its_rule() {
    // A panic-path allow must not silence a wall-clock finding on the
    // same line.
    let src = "fn f() -> u64 {\n    // netrel-lint: allow(panic-path, reason = \"wrong rule\")\n    let _ = std::time::Instant::now();\n    0\n}\n";
    let got = findings(src, &[RuleId::WallClock, RuleId::PanicPath]);
    assert_eq!(
        got,
        vec![
            ("unused-suppression".into(), 2, 5),
            ("wall-clock".into(), 3, 24),
        ]
    );
}

// ── cache-key (structural) ──────────────────────────────────────────────

fn parsed(path: &str, src: &str) -> Parsed {
    let file = File::parse(path, src);
    let outline = Outline::parse(&file);
    Parsed { file, outline }
}

fn structural_findings(cfg_src: &str, files: &[(&str, &str)]) -> Vec<(String, String, u32, u32)> {
    let cfg = Config::parse(cfg_src).expect("fixture config must parse");
    let map: BTreeMap<String, Parsed> = files
        .iter()
        .map(|(p, s)| (p.to_string(), parsed(p, s)))
        .collect();
    structural::check(&map, &cfg)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.file, f.line, f.col))
        .collect()
}

const EMBED_CFG: &str = "schema = \"netrel-lint/v1\"\n\n[[rules.cache-key.embed]]\nfile = \"src/cache.rs\"\ncontainer = \"PlanKey\"\nmember = \"PartSolver\"\n";

#[test]
fn cache_key_embed_accepts_complete_key() {
    let src = "pub struct PartSolver;\npub struct PlanKey {\n    edges: u64,\n    solver: PartSolver,\n}\n";
    assert_eq!(
        structural_findings(EMBED_CFG, &[("src/cache.rs", src)]),
        vec![]
    );
}

#[test]
fn cache_key_embed_catches_field_projection() {
    // The classic aliasing bug: the key projects scalar fields instead of
    // embedding the whole solver config, so a future config field silently
    // stops being part of the cache identity.
    let src = "pub struct PartSolver;\npub struct PlanKey {\n    edges: u64,\n    samples: u64,\n    seed: u64,\n}\n";
    assert_eq!(
        structural_findings(EMBED_CFG, &[("src/cache.rs", src)]),
        vec![("cache-key".into(), "src/cache.rs".into(), 2, 5)]
    );
}

const CONSULT_CFG: &str = "schema = \"netrel-lint/v1\"\n\n[[rules.cache-key.consult]]\ntype = \"PlanBudget\"\ndefined_in = \"src/planner.rs\"\nconsulted_in = [\"src/planner.rs\"]\n";

#[test]
fn cache_key_consult_accepts_routed_fields() {
    let src = "pub struct PlanBudget {\n    node_budget: u64,\n}\nfn plan(b: &PlanBudget) -> u64 {\n    b.node_budget\n}\n";
    assert_eq!(
        structural_findings(CONSULT_CFG, &[("src/planner.rs", src)]),
        vec![]
    );
}

#[test]
fn cache_key_consult_catches_dead_knob() {
    // `confidence` exists and is defaulted but never read outside the
    // struct's own definition and Default impl — the knob does nothing.
    let src = "pub struct PlanBudget {\n    node_budget: u64,\n    confidence: f64,\n}\nimpl Default for PlanBudget {\n    fn default() -> Self {\n        PlanBudget { node_budget: 1, confidence: 0.95 }\n    }\n}\nfn plan(b: &PlanBudget) -> u64 {\n    b.node_budget\n}\n";
    assert_eq!(
        structural_findings(CONSULT_CFG, &[("src/planner.rs", src)]),
        vec![("cache-key".into(), "src/planner.rs".into(), 1, 5)]
    );
}

const VARIANT_CFG: &str = "schema = \"netrel-lint/v1\"\n\n[[rules.cache-key.variants]]\ntype = \"SemanticsSpec\"\ndefined_in = \"src/semantics.rs\"\nmatched_in = \"src/semantics.rs\"\n";

#[test]
fn cache_key_variants_accepts_full_match() {
    let src = "pub enum SemanticsSpec {\n    TwoTerminal,\n    AllTerminal,\n}\nfn part(s: &SemanticsSpec) -> u32 {\n    match s {\n        SemanticsSpec::TwoTerminal => 1,\n        SemanticsSpec::AllTerminal => 2,\n    }\n}\n";
    assert_eq!(
        structural_findings(VARIANT_CFG, &[("src/semantics.rs", src)]),
        vec![]
    );
}

#[test]
fn cache_key_variants_catches_unhandled_variant() {
    let src = "pub enum SemanticsSpec {\n    TwoTerminal,\n    AllTerminal,\n}\nfn part(s: &SemanticsSpec) -> u32 {\n    match s {\n        SemanticsSpec::TwoTerminal => 1,\n        _ => 0,\n    }\n}\n";
    assert_eq!(
        structural_findings(VARIANT_CFG, &[("src/semantics.rs", src)]),
        vec![("cache-key".into(), "src/semantics.rs".into(), 1, 5)]
    );
}

#[test]
fn cache_key_reports_missing_definition() {
    // If the watched type moves files without lint.toml being updated, the
    // rule must fail closed, not silently pass.
    let src = "pub struct SomethingElse;\n";
    let got = structural_findings(EMBED_CFG, &[("src/cache.rs", src)]);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, "cache-key");
}
