//! The workspace self-check: the real pass, over the real tree, under the
//! checked-in `lint.toml`, must be clean. This is the test-suite twin of
//! the CI `cargo run -p netrel-lint -- --deny-warnings` gate — if either a
//! rule regresses into a false positive or a real violation lands, this
//! fails with the full human report in the message.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg_src = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml is checked in");
    let cfg = netrel_lint::Config::parse(&cfg_src).expect("lint.toml parses");
    let report = netrel_lint::run(&root, &cfg).expect("pass runs");

    assert!(
        report.is_clean(),
        "netrel-lint found violations in the workspace:\n{}",
        report.to_human()
    );
    // The walk must actually be covering the tree — a silently-empty scan
    // would also be "clean".
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — the workspace walk is broken",
        report.files_scanned
    );
    // Every suppression in the tree must carry its audit trail. (Count
    // changes are fine; a reasonless allow is not.)
    for s in &report.suppressions {
        assert!(
            !s.reason.is_empty(),
            "suppression of `{}` at {}:{} has no reason",
            s.rule,
            s.file,
            s.line
        );
    }
    // The JSON rendering stays on the stable schema CI archives.
    assert!(report
        .to_json()
        .contains("\"schema\": \"netrel-lint-report/v1\""));
}
