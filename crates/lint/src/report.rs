//! Findings, suppressions, and the dual human / JSON report.
//!
//! The JSON shape is a stable schema (`netrel-lint-report/v1`) so CI can
//! archive reports and tooling can diff them across commits; the human
//! rendering is the familiar `file:line:col: rule: message` format every
//! editor can jump from. Serialization is hand-rolled (string escaping and
//! all) because this crate is dependency-free by design.

use std::fmt::Write as _;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`wall-clock`, `panic-path`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation of what was matched and why it is forbidden.
    pub message: String,
}

/// One counted (used) suppression.
#[derive(Clone, Debug)]
pub struct UsedSuppression {
    /// Rule the suppression silenced.
    pub rule: String,
    /// File the suppression lives in.
    pub file: String,
    /// Line of the suppression comment.
    pub line: u32,
    /// The recorded justification.
    pub reason: String,
}

/// The complete result of one workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Suppressions that actually silenced a finding.
    pub suppressions: Vec<UsedSuppression>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the pass is clean (no findings; suppressions are fine).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        self.suppressions
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// The `file:line:col: rule: message` rendering plus a summary line.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
        }
        for s in &self.suppressions {
            let _ = writeln!(
                out,
                "{}:{}: note: allowed({}) — {}",
                s.file,
                s.line,
                s.rule,
                if s.reason.is_empty() {
                    "(no reason)"
                } else {
                    &s.reason
                }
            );
        }
        let _ = writeln!(
            out,
            "netrel-lint: {} finding{} across {} file{}, {} suppression{} in use",
            self.findings.len(),
            plural(self.findings.len()),
            self.files_scanned,
            plural(self.files_scanned),
            self.suppressions.len(),
            plural(self.suppressions.len()),
        );
        out
    }

    /// The `netrel-lint-report/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"netrel-lint-report/v1\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message)
            );
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"suppressions\": [");
        for (i, s) in self.suppressions.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                json_str(&s.reason)
            );
        }
        out.push_str(if self.suppressions.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_sorts() {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "panic-path",
                    file: "b.rs".into(),
                    line: 2,
                    col: 5,
                    message: "said \"no\"".into(),
                },
                Finding {
                    rule: "wall-clock",
                    file: "a.rs".into(),
                    line: 9,
                    col: 1,
                    message: "clock".into(),
                },
            ],
            suppressions: vec![],
            files_scanned: 2,
        };
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        let json = r.to_json();
        assert!(json.contains("\"netrel-lint-report/v1\""));
        assert!(json.contains("\\\"no\\\""));
        let human = r.to_human();
        assert!(human.contains("b.rs:2:5: [panic-path]"));
        assert!(human.contains("2 findings across 2 files"));
    }
}
