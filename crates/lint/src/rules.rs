//! The per-file rules.
//!
//! Every rule here consumes one tokenized file plus its outline and emits
//! [`Finding`]s. Which rules run on which file is decided by the profiles
//! in `lint.toml` (see [`crate::config`]); the rules themselves are
//! region-agnostic. All of them skip test-only code (`#[cfg(test)]`
//! modules, `#[test]` functions) except `unsafe-comment`, which applies
//! everywhere — an undocumented `unsafe` block is a liability in tests too.
//!
//! These are token-level heuristics, not type-checked analyses: they are
//! deliberately tuned so that a miss is possible but a false positive is
//! rare, and every deliberate exception is spelled out with a
//! `// netrel-lint: allow(rule, reason = "…")` that the report counts.

use crate::outline::Outline;
use crate::report::Finding;
use crate::tokens::{File, TokKind};

/// Identifier of one per-file rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `Instant::now` / `SystemTime` reads: answers must be a pure
    /// function of `(input, seed)`, never of the clock.
    WallClock,
    /// No thread-count probes (`available_parallelism`, `num_cpus`,
    /// `rayon`): parallelism may only enter via seed-stable partitions.
    ThreadCount,
    /// No iteration over `HashMap`/`HashSet` (Fx variants included):
    /// iteration order is allocation-dependent, so any fold over it can
    /// change answers run to run. Lookups and membership tests are fine.
    HashIteration,
    /// No `unwrap`/`expect`/panicking macros/unguarded indexing in the
    /// service request path: malformed client input must come back as a
    /// protocol error, never a crash.
    PanicPath,
    /// Every `unsafe` token carries a `// SAFETY:` comment immediately
    /// above it.
    UnsafeComment,
}

impl RuleId {
    /// The stable string name used in reports, suppressions, and config.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::WallClock => "wall-clock",
            RuleId::ThreadCount => "thread-count",
            RuleId::HashIteration => "hash-iteration",
            RuleId::PanicPath => "panic-path",
            RuleId::UnsafeComment => "unsafe-comment",
        }
    }

    /// Parse a rule name from config.
    pub fn from_name(name: &str) -> Option<RuleId> {
        Some(match name {
            "wall-clock" => RuleId::WallClock,
            "thread-count" => RuleId::ThreadCount,
            "hash-iteration" => RuleId::HashIteration,
            "panic-path" => RuleId::PanicPath,
            "unsafe-comment" => RuleId::UnsafeComment,
            _ => return None,
        })
    }
}

/// Run `rules` over one file.
pub fn check_file(file: &File, outline: &Outline, rules: &[RuleId]) -> Vec<Finding> {
    let mut out = Vec::new();
    for &rule in rules {
        match rule {
            RuleId::WallClock => wall_clock(file, outline, &mut out),
            RuleId::ThreadCount => thread_count(file, outline, &mut out),
            RuleId::HashIteration => hash_iteration(file, outline, &mut out),
            RuleId::PanicPath => panic_path(file, outline, &mut out),
            RuleId::UnsafeComment => unsafe_comment(file, &mut out),
        }
    }
    out
}

fn finding(file: &File, i: usize, rule: RuleId, message: String) -> Finding {
    Finding {
        rule: rule.name(),
        file: file.path.clone(),
        line: file.toks[i].line,
        col: file.toks[i].col,
        message,
    }
}

/// Live (non-test) identifier tokens, by index.
fn live_idents<'a>(file: &'a File, outline: &'a Outline) -> impl Iterator<Item = usize> + 'a {
    (0..file.toks.len())
        .filter(|&i| file.toks[i].kind == TokKind::Ident && !outline.in_test_code(i))
}

fn wall_clock(file: &File, outline: &Outline, out: &mut Vec<Finding>) {
    for i in live_idents(file, outline) {
        match file.text(i) {
            "SystemTime" => out.push(finding(
                file,
                i,
                RuleId::WallClock,
                "`SystemTime` in an answer-affecting region: answers must not depend on \
                 wall-clock time"
                    .into(),
            )),
            "Instant"
                if file.is_punct(i + 1, ":")
                    && file.is_punct(i + 2, ":")
                    && file.is_ident(i + 3, "now") =>
            {
                out.push(finding(
                    file,
                    i,
                    RuleId::WallClock,
                    "`Instant::now()` in an answer-affecting region: timing reads \
                     belong in gated observability code, not on the answer path"
                        .into(),
                ));
            }
            _ => {}
        }
    }
}

fn thread_count(file: &File, outline: &Outline, out: &mut Vec<Finding>) {
    for i in live_idents(file, outline) {
        let text = file.text(i);
        if matches!(text, "available_parallelism" | "num_cpus" | "rayon") {
            out.push(finding(
                file,
                i,
                RuleId::ThreadCount,
                format!(
                    "`{text}` in an answer-affecting region: worker count must never \
                     influence an answer — use a seed-stable partition and suppress \
                     with a reason if this site is one"
                ),
            ));
        }
    }
}

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

fn hash_iteration(file: &File, outline: &Outline, out: &mut Vec<Finding>) {
    let bound = hash_bound_names(file);
    for i in live_idents(file, outline) {
        let name = file.text(i);
        // `name.iter()` and friends, where `name` was bound to a hash type.
        if bound.iter().any(|b| b == name)
            && file.is_punct(i + 1, ".")
            && file
                .toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident)
            && ITER_METHODS.contains(&file.text(i + 2))
            && file.is_punct(i + 3, "(")
        {
            out.push(finding(
                file,
                i,
                RuleId::HashIteration,
                format!(
                    "`{name}.{}()` iterates a hash container bound in this file: \
                     iteration order is allocation-dependent and can change answers — \
                     collect into a sorted Vec or key off a deterministic order",
                    file.text(i + 2)
                ),
            ));
        }
        // `for x in name` / `for x in &name` / `for x in &mut name`.
        if name == "in" {
            let mut j = i + 1;
            while file.is_punct(j, "&") || file.is_ident(j, "mut") {
                j += 1;
            }
            if file.toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && bound.iter().any(|b| b == file.text(j))
                && file.is_punct(j + 1, "{")
            {
                out.push(finding(
                    file,
                    j,
                    RuleId::HashIteration,
                    format!(
                        "`for … in {}` iterates a hash container bound in this file: \
                         iteration order is allocation-dependent and can change answers",
                        file.text(j)
                    ),
                ));
            }
        }
    }
}

/// Names bound to hash-container types anywhere in the file: typed
/// bindings, struct fields, and parameters (`name: …HashMap…`), plus
/// untyped lets whose initializer mentions a hash type
/// (`let m = FxHashMap::default()`).
fn hash_bound_names(file: &File) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let toks = &file.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // Typed position: `name :` (not `::`) followed by a type whose
        // top-level tokens include a hash type.
        if file.is_punct(i + 1, ":") && !file.is_punct(i + 2, ":") {
            if type_tokens_mention_hash(file, i + 2) {
                names.push(file.text(i).to_string());
            }
            continue;
        }
        // `let [mut] name = <expr…>;` with a hash constructor on the right.
        if file.text(i) == "let" {
            let mut j = i + 1;
            if file.is_ident(j, "mut") {
                j += 1;
            }
            if toks.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
                continue;
            }
            let name = file.text(j).to_string();
            if !file.is_punct(j + 1, "=") {
                continue;
            }
            let mut k = j + 2;
            let mut depth = 0i32;
            let mut steps = 0;
            while k < toks.len() && steps < 200 {
                let t = file.text(k);
                if toks[k].kind == TokKind::Punct {
                    match t {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                if toks[k].kind == TokKind::Ident && HASH_TYPES.contains(&t) {
                    names.push(name.clone());
                    break;
                }
                k += 1;
                steps += 1;
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Whether the type starting at token `start` mentions a hash container
/// before the enclosing field/binding ends (`,`, `;`, `=`, `)`, `{`, `}` at
/// angle-depth 0).
fn type_tokens_mention_hash(file: &File, start: usize) -> bool {
    let toks = &file.toks;
    let mut angle = 0i32;
    let mut k = start;
    let mut steps = 0;
    while k < toks.len() && steps < 80 {
        let t = file.text(k);
        match toks[k].kind {
            TokKind::Ident if HASH_TYPES.contains(&t) => return true,
            TokKind::Punct => match t {
                "<" => angle += 1,
                // `->` return arrows: the `>` does not close an angle pair.
                ">" if k > 0 && file.is_punct(k - 1, "-") && toks[k - 1].end == toks[k].start => {}
                ">" => angle -= 1,
                "," | ";" | "=" | ")" | "{" | "}" if angle <= 0 => return false,
                _ => {}
            },
            _ => {}
        }
        k += 1;
        steps += 1;
    }
    false
}

const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that can legally precede `[` without it being an index
/// expression (slice patterns, array types, `in [..]`, …).
const NON_INDEX_PRECEDERS: [&str; 18] = [
    "in", "return", "if", "else", "match", "let", "mut", "ref", "move", "as", "break", "loop",
    "while", "for", "where", "impl", "dyn", "const",
];

fn panic_path(file: &File, outline: &Outline, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if outline.in_test_code(i) {
            continue;
        }
        match toks[i].kind {
            TokKind::Ident => {
                let text = file.text(i);
                if (text == "unwrap" || text == "expect")
                    && i > 0
                    && file.is_punct(i - 1, ".")
                    && file.is_punct(i + 1, "(")
                {
                    out.push(finding(
                        file,
                        i,
                        RuleId::PanicPath,
                        format!(
                            "`.{text}()` in the service request path: malformed or \
                             hostile input must produce a protocol error response, \
                             not a panic"
                        ),
                    ));
                } else if PANIC_MACROS.contains(&text) && file.is_punct(i + 1, "!") {
                    out.push(finding(
                        file,
                        i,
                        RuleId::PanicPath,
                        format!(
                            "`{text}!` in the service request path: the server must \
                             stay up under any input — return an error instead"
                        ),
                    ));
                }
            }
            TokKind::Punct if file.text(i) == "[" && i > 0 => {
                let prev = &toks[i - 1];
                let prev_text = file.text(i - 1);
                let indexable = match prev.kind {
                    TokKind::Ident => !NON_INDEX_PRECEDERS.contains(&prev_text),
                    TokKind::Punct => prev_text == ")" || prev_text == "]",
                    _ => false,
                };
                // `x[..]` (full-range) cannot panic; skip it.
                let full_range = file.is_punct(i + 1, ".")
                    && file.is_punct(i + 2, ".")
                    && file.is_punct(i + 3, "]");
                if indexable && !full_range {
                    out.push(finding(
                        file,
                        i,
                        RuleId::PanicPath,
                        format!(
                            "indexing `{prev_text}[…]` in the service request path can \
                             panic out of bounds: destructure with a slice pattern or \
                             use `.get(…)`"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

fn unsafe_comment(file: &File, out: &mut Vec<Finding>) {
    for i in 0..file.toks.len() {
        if file.toks[i].kind != TokKind::Ident || file.text(i) != "unsafe" {
            continue;
        }
        // Walk the contiguous comment run immediately before the token
        // (attributes and modifiers in between are allowed).
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            match file.toks[j].kind {
                TokKind::LineComment | TokKind::BlockComment
                    if file.text(j).contains("SAFETY:") =>
                {
                    documented = true;
                    break;
                }
                // Skip backwards over attribute/modifier tokens on the same
                // construct; stop at statement boundaries.
                TokKind::Punct if matches!(file.text(j), ";" | "{" | "}") => break,
                _ => {}
            }
        }
        if !documented {
            out.push(finding(
                file,
                i,
                RuleId::UnsafeComment,
                "`unsafe` without a `// SAFETY:` comment: every unsafe site must state \
                 the invariant that makes it sound"
                    .into(),
            ));
        }
    }
}
