//! A TOML-subset reader for `lint.toml`.
//!
//! Supports exactly what the checked-in config needs: comments, `[a.b]`
//! tables, `[[a.b]]` arrays of tables, and `key = value` where value is a
//! basic string, integer, boolean, or a (possibly multi-line) array of
//! basic strings. Anything fancier (dates, floats, inline tables, dotted
//! keys) is a parse error — the config should stay boring.
//!
//! Tables are `BTreeMap`s throughout: the lint's own output order must be
//! deterministic, so its config representation is too.

use std::collections::BTreeMap;

/// One parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Basic string.
    Str(String),
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Array (of any values; the config only uses string arrays).
    Array(Vec<Value>),
    /// Table (from `[header]` sections or nested assignment).
    Table(Table),
    /// Array of tables (from `[[header]]` sections).
    TableArray(Vec<Table>),
}

/// A TOML table: ordered key → value map.
pub type Table = BTreeMap<String, Value>;

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements as strings, if this is an array of strings.
    pub fn as_str_array(&self) -> Option<Vec<&str>> {
        match self {
            Value::Array(items) => items.iter().map(Value::as_str).collect(),
            _ => None,
        }
    }
}

/// Parse a TOML-subset document into its root table.
pub fn parse(src: &str) -> Result<Table, String> {
    let mut root = Table::new();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    let mut lines = src.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("lint.toml:{}: {}", lineno + 1, msg);
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let path = split_path(header);
            push_table_array(&mut root, &path).map_err(|e| err(&e))?;
            current = path;
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let path = split_path(header);
            ensure_table(&mut root, &path).map_err(|e| err(&e))?;
            current = path;
        } else if let Some((key, rest)) = line.split_once('=') {
            let key = key.trim().to_string();
            let mut buf = rest.trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets close.
            while buf.starts_with('[') && !balanced(&buf) {
                let (_, next) = lines.next().ok_or_else(|| err("unterminated array"))?;
                buf.push(' ');
                buf.push_str(strip_comment(next).trim());
            }
            let value = parse_value(buf.trim()).map_err(|e| err(&e))?;
            let table = navigate(&mut root, &current).map_err(|e| err(&e))?;
            if table.insert(key.clone(), value).is_some() {
                return Err(err(&format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err("expected `[table]`, `[[table]]`, or `key = value`"));
        }
    }
    Ok(root)
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a basic string is content, not a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(buf: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in buf.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn split_path(header: &str) -> Vec<String> {
    header.split('.').map(|s| s.trim().to_string()).collect()
}

fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: {text}"))?;
        return Ok(Value::Str(unescape(inner)));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array: {text}"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(Value::Array(items));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value: {text}"))
}

/// Split an array body on commas outside strings.
fn split_top_level(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut buf = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                buf.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut buf));
            }
            _ => buf.push(c),
        }
    }
    parts.push(buf);
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Walk to (and create) the table at `path`, entering the last element of
/// any table-array on the way.
fn navigate<'a>(root: &'a mut Table, path: &[String]) -> Result<&'a mut Table, String> {
    let mut table = root;
    for seg in path {
        let entry = table
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        table = match entry {
            Value::Table(t) => t,
            Value::TableArray(items) => items.last_mut().ok_or("empty table array")?,
            _ => return Err(format!("`{seg}` is not a table")),
        };
    }
    Ok(table)
}

fn ensure_table(root: &mut Table, path: &[String]) -> Result<(), String> {
    navigate(root, path).map(|_| ())
}

fn push_table_array(root: &mut Table, path: &[String]) -> Result<(), String> {
    let (last, prefix) = path.split_last().ok_or("empty table path")?;
    let parent = navigate(root, prefix)?;
    match parent
        .entry(last.clone())
        .or_insert_with(|| Value::TableArray(Vec::new()))
    {
        Value::TableArray(items) => {
            items.push(Table::new());
            Ok(())
        }
        _ => Err(format!("`{last}` is not an array of tables")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_and_scalars_round_trip() {
        let doc = r#"
schema = "netrel-lint/v1"  # trailing comment
[profiles.default]
paths = ["crates", "src"]
rules = [
  "unsafe-comment",
  "bad-suppression",
]
strict = true
max = 3
[[rules.cache-key.embed]]
file = "a.rs"
[[rules.cache-key.embed]]
file = "b.rs"
"#;
        let t = parse(doc).unwrap();
        assert_eq!(t["schema"].as_str(), Some("netrel-lint/v1"));
        let Value::Table(profiles) = &t["profiles"] else {
            panic!()
        };
        let Value::Table(default) = &profiles["default"] else {
            panic!()
        };
        assert_eq!(default["paths"].as_str_array().unwrap(), ["crates", "src"]);
        assert_eq!(
            default["rules"].as_str_array().unwrap(),
            ["unsafe-comment", "bad-suppression"]
        );
        assert_eq!(default["strict"], Value::Bool(true));
        assert_eq!(default["max"], Value::Int(3));
        let Value::Table(rules) = &t["rules"] else {
            panic!()
        };
        let Value::Table(ck) = &rules["cache-key"] else {
            panic!()
        };
        let Value::TableArray(embeds) = &ck["embed"] else {
            panic!()
        };
        assert_eq!(embeds.len(), 2);
        assert_eq!(embeds[1]["file"].as_str(), Some("b.rs"));
    }

    #[test]
    fn hash_inside_string_is_content() {
        let t = parse("key = \"a#b\"\n").unwrap();
        assert_eq!(t["key"].as_str(), Some("a#b"));
    }

    #[test]
    fn bad_lines_report_their_line_number() {
        let e = parse("ok = true\nnot a line\n").unwrap_err();
        assert!(e.contains("lint.toml:2"), "{e}");
    }
}
