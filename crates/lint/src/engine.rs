//! The workspace pass: walk, tokenize, apply profiles, suppress, report.
//!
//! Determinism discipline applies to the lint itself: the directory walk is
//! sorted, every map is a `BTreeMap`, and findings are canonically ordered,
//! so two runs over the same tree produce byte-identical reports.

use crate::config::Config;
use crate::outline::Outline;
use crate::report::{Finding, Report, UsedSuppression};
use crate::rules::{check_file, RuleId};
use crate::structural::{self, Parsed};
use crate::suppress::{suppressions, Suppression};
use crate::tokens::File;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "node_modules"];

/// Run the full pass over the workspace rooted at `root` under `config`.
pub fn run(root: &Path, config: &Config) -> Result<Report, String> {
    let mut files: BTreeMap<String, Parsed> = BTreeMap::new();
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    for rel in paths {
        if !config.covers(&rel) && !referenced_by_cache_key(config, &rel) {
            continue;
        }
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        let file = File::parse(rel.clone(), src);
        let outline = Outline::parse(&file);
        files.insert(rel, Parsed { file, outline });
    }

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut raw: Vec<Finding> = Vec::new();
    let mut supps: Vec<(String, Vec<Suppression>)> = Vec::new();
    for (path, parsed) in &files {
        let rules = config.rules_for(path);
        if !rules.is_empty() {
            raw.extend(check_file(&parsed.file, &parsed.outline, &rules));
        }
        let file_supps = suppressions(&parsed.file);
        if !file_supps.is_empty() {
            supps.push((path.clone(), file_supps));
        }
    }
    raw.extend(structural::check(&files, config));
    apply_suppressions(raw, supps, &mut report);
    report.sort();
    Ok(report)
}

/// Lint one in-memory source snippet under an explicit rule set — the
/// fixture-test entry point. Suppressions in the snippet are honored;
/// structural rules do not apply (they are cross-file).
pub fn run_snippet(path: &str, src: &str, rules: &[RuleId]) -> Report {
    let file = File::parse(path, src);
    let outline = Outline::parse(&file);
    let raw = check_file(&file, &outline, rules);
    let supps = vec![(path.to_string(), suppressions(&file))];
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    apply_suppressions(raw, supps, &mut report);
    report.sort();
    report
}

/// Match findings against suppressions: a finding on a suppression's
/// target line with the same rule is silenced (and the suppression
/// counted); a reasonless or unused suppression is itself a finding.
fn apply_suppressions(
    raw: Vec<Finding>,
    supps: Vec<(String, Vec<Suppression>)>,
    report: &mut Report,
) {
    let mut used: BTreeMap<(String, u32), UsedSuppression> = BTreeMap::new();
    'findings: for f in raw {
        for (path, file_supps) in &supps {
            if *path != f.file {
                continue;
            }
            for s in file_supps {
                if s.rule == f.rule && s.target_line == f.line {
                    used.entry((path.clone(), s.comment_line))
                        .or_insert_with(|| UsedSuppression {
                            rule: s.rule.clone(),
                            file: path.clone(),
                            line: s.comment_line,
                            reason: s.reason.clone(),
                        });
                    continue 'findings;
                }
            }
        }
        report.findings.push(f);
    }
    for (path, file_supps) in &supps {
        for s in file_supps {
            if s.reason.is_empty() {
                report.findings.push(Finding {
                    rule: "bad-suppression",
                    file: path.clone(),
                    line: s.comment_line,
                    col: s.col,
                    message: format!(
                        "suppression of `{}` has no reason: write \
                         `netrel-lint: allow({}, reason = \"…\")` — the reason is the \
                         audit trail",
                        s.rule, s.rule
                    ),
                });
            }
            if !used.contains_key(&(path.clone(), s.comment_line)) {
                report.findings.push(Finding {
                    rule: "unused-suppression",
                    file: path.clone(),
                    line: s.comment_line,
                    col: s.col,
                    message: format!(
                        "suppression of `{}` matches no finding: the violation it \
                         excused is gone — remove the comment so the allowlist stays \
                         honest",
                        s.rule
                    ),
                });
            }
        }
    }
    report.suppressions.extend(used.into_values());
}

/// Whether the cache-key declarations reference `rel` (such files are
/// loaded even when no profile covers them, so the structural rule can see
/// consulting regions anywhere in the tree).
fn referenced_by_cache_key(config: &Config, rel: &str) -> bool {
    config.embeds.iter().any(|e| e.file == rel)
        || config
            .consults
            .iter()
            .any(|c| c.defined_in == rel || c.consulted_in.iter().any(|p| p == rel))
        || config
            .variants
            .iter()
            .any(|v| v.defined_in == rel || v.matched_in == rel)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Some(rel) = relative_slash(root, &path) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (the config's path syntax on
/// every platform).
fn relative_slash(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Locate the workspace root: the nearest ancestor of `start` (inclusive)
/// holding a `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
