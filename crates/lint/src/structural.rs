//! The cross-file `cache-key` rule.
//!
//! The plan cache's soundness rests on one structural property: *every
//! answer-affecting knob is part of the cache key*. The key achieves this
//! by embedding whole config types (`PlanKey` holds a `PartSolver`, which
//! holds the complete `S2BddConfig`) so derived `Eq`/`Hash` cover every
//! field automatically — but that chain is invisible to the compiler as a
//! *policy*: nothing stops a refactor from projecting three fields out of
//! the config "for efficiency" and silently dropping the fourth.
//!
//! This rule makes the chain checkable from `lint.toml` declarations:
//!
//! * **embed** — a container's definition must textually mention the
//!   embedded type (`PlanKey` → `PartSolver` → `S2BddConfig`).
//! * **consult** — every field of a watched struct must be read somewhere
//!   in its consulting region (catches a `PlanBudget` knob that is added
//!   and defaulted but never routed).
//! * **variants** — every variant of a watched enum must be matched as
//!   `Type::Variant` outside its definition (catches a `SemanticsSpec`
//!   variant that never reaches a part computation).

use crate::config::{Config, ConsultCheck, EmbedLink, VariantCheck};
use crate::outline::{Item, ItemKind, Outline};
use crate::report::Finding;
use crate::tokens::{File, TokKind};
use std::collections::BTreeMap;

/// One parsed file with its outline, as the engine holds them.
pub struct Parsed {
    /// The tokenized file.
    pub file: File,
    /// Its item outline.
    pub outline: Outline,
}

const RULE: &str = "cache-key";

/// Run every cache-key declaration over the parsed workspace.
pub fn check(files: &BTreeMap<String, Parsed>, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for embed in &cfg.embeds {
        check_embed(files, embed, &mut out);
    }
    for consult in &cfg.consults {
        check_consult(files, consult, &mut out);
    }
    for variants in &cfg.variants {
        check_variants(files, variants, &mut out);
    }
    out
}

fn missing_file(path: &str, what: &str) -> Finding {
    Finding {
        rule: RULE,
        file: path.to_string(),
        line: 1,
        col: 1,
        message: format!("cache-key declaration references {what}, but the file was not scanned"),
    }
}

/// Find a struct-or-enum definition by name.
fn find_type<'a>(parsed: &'a Parsed, name: &str) -> Option<&'a Item> {
    parsed
        .outline
        .find(ItemKind::Struct, name)
        .or_else(|| parsed.outline.find(ItemKind::Enum, name))
}

fn check_embed(files: &BTreeMap<String, Parsed>, embed: &EmbedLink, out: &mut Vec<Finding>) {
    let Some(parsed) = files.get(&embed.file) else {
        out.push(missing_file(&embed.file, &format!("`{}`", embed.container)));
        return;
    };
    let Some(item) = find_type(parsed, &embed.container) else {
        out.push(Finding {
            rule: RULE,
            file: embed.file.clone(),
            line: 1,
            col: 1,
            message: format!(
                "expected a `{}` definition here (cache-key embed chain); \
                 if it moved, update lint.toml",
                embed.container
            ),
        });
        return;
    };
    let (Some(open), Some(close)) = (item.body_open, item.body_close) else {
        return;
    };
    let embedded = (open..=close).any(|i| parsed.file.is_ident(i, &embed.member));
    if !embedded {
        let kw = &parsed.file.toks[item.kw];
        out.push(Finding {
            rule: RULE,
            file: embed.file.clone(),
            line: kw.line,
            col: kw.col,
            message: format!(
                "`{}` no longer embeds `{}`: the cache key must carry the complete \
                 type so every present and future field stays part of the key's \
                 identity (DESIGN.md §9.5)",
                embed.container, embed.member
            ),
        });
    }
}

fn check_consult(files: &BTreeMap<String, Parsed>, consult: &ConsultCheck, out: &mut Vec<Finding>) {
    let Some(def) = files.get(&consult.defined_in) else {
        out.push(missing_file(
            &consult.defined_in,
            &format!("`{}`", consult.type_name),
        ));
        return;
    };
    let Some(item) = def.outline.find(ItemKind::Struct, &consult.type_name) else {
        out.push(missing_file(
            &consult.defined_in,
            &format!("struct `{}`", consult.type_name),
        ));
        return;
    };
    let fields = struct_fields(&def.file, item);
    for field in &fields {
        let mut consulted = false;
        for path in &consult.consulted_in {
            let Some(parsed) = files.get(path) else {
                continue;
            };
            if mentions_ident_outside(parsed, field, &consult.type_name) {
                consulted = true;
                break;
            }
        }
        if !consulted {
            let kw = &def.file.toks[item.kw];
            out.push(Finding {
                rule: RULE,
                file: consult.defined_in.clone(),
                line: kw.line,
                col: kw.col,
                message: format!(
                    "field `{}.{}` is never consulted in {:?}: a knob that does not \
                     reach the plan key or the routing decision can silently alias \
                     cached results — wire it through or remove it",
                    consult.type_name, field, consult.consulted_in
                ),
            });
        }
    }
}

fn check_variants(files: &BTreeMap<String, Parsed>, vc: &VariantCheck, out: &mut Vec<Finding>) {
    let Some(def) = files.get(&vc.defined_in) else {
        out.push(missing_file(&vc.defined_in, &format!("`{}`", vc.type_name)));
        return;
    };
    let Some(item) = def.outline.find(ItemKind::Enum, &vc.type_name) else {
        out.push(missing_file(
            &vc.defined_in,
            &format!("enum `{}`", vc.type_name),
        ));
        return;
    };
    let variants = enum_variants(&def.file, item);
    let Some(matched) = files.get(&vc.matched_in) else {
        out.push(missing_file(&vc.matched_in, "the variant-handling region"));
        return;
    };
    for variant in &variants {
        if !matches_variant(matched, &vc.type_name, variant) {
            let kw = &def.file.toks[item.kw];
            out.push(Finding {
                rule: RULE,
                file: vc.defined_in.clone(),
                line: kw.line,
                col: kw.col,
                message: format!(
                    "variant `{}::{}` is never matched in {}: every semantics variant \
                     must map to a part computation, or cached parts can alias across \
                     semantics",
                    vc.type_name, variant, vc.matched_in
                ),
            });
        }
    }
}

/// Field names of a struct: identifiers at body depth 1 directly followed
/// by a single `:`.
fn struct_fields(file: &File, item: &Item) -> Vec<String> {
    let (Some(open), Some(close)) = (item.body_open, item.body_close) else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    let mut depth = 0i32;
    for i in open..=close {
        if file.toks[i].kind == TokKind::Punct {
            match file.text(i) {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            continue;
        }
        if depth == 1
            && file.toks[i].kind == TokKind::Ident
            && file.is_punct(i + 1, ":")
            && !file.is_punct(i + 2, ":")
        {
            fields.push(file.text(i).to_string());
        }
    }
    fields
}

/// Variant names of an enum: identifiers at body depth 1 whose preceding
/// non-comment token is `{`, `,`, or `]` (attribute close).
fn enum_variants(file: &File, item: &Item) -> Vec<String> {
    let (Some(open), Some(close)) = (item.body_open, item.body_close) else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 0i32;
    for i in open..=close {
        if file.toks[i].kind == TokKind::Punct {
            match file.text(i) {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            continue;
        }
        if depth != 1 || file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let prev = (open..i)
            .rev()
            .find(|&j| {
                !matches!(
                    file.toks[j].kind,
                    TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|j| file.text(j));
        if matches!(prev, Some("{") | Some(",") | Some("]")) {
            variants.push(file.text(i).to_string());
        }
    }
    variants
}

/// Whether `ident` appears in live (non-test) code outside `type_name`'s
/// own definition and its `impl Default` block.
fn mentions_ident_outside(parsed: &Parsed, ident: &str, type_name: &str) -> bool {
    let excluded: Vec<&Item> = parsed
        .outline
        .items
        .iter()
        .filter(|it| {
            (it.name == type_name && matches!(it.kind, ItemKind::Struct | ItemKind::Enum))
                || (it.kind == ItemKind::Impl && it.name == type_name && it.trait_name == "Default")
        })
        .collect();
    (0..parsed.file.toks.len()).any(|i| {
        parsed.file.is_ident(i, ident)
            && !parsed.outline.in_test_code(i)
            && !excluded.iter().any(|it| it.contains(i))
    })
}

/// Whether `Type::Variant` appears in live code outside the enum's own
/// definition.
fn matches_variant(parsed: &Parsed, type_name: &str, variant: &str) -> bool {
    let def = parsed.outline.find(ItemKind::Enum, type_name);
    (0..parsed.file.toks.len()).any(|i| {
        parsed.file.is_ident(i, type_name)
            && parsed.file.is_punct(i + 1, ":")
            && parsed.file.is_punct(i + 2, ":")
            && parsed.file.is_ident(i + 3, variant)
            && !parsed.outline.in_test_code(i)
            && def.map_or(true, |d| !d.contains(i))
    })
}
